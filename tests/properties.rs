//! Property-based tests over the core invariants, spanning crates.

#![allow(clippy::needless_range_loop)]

use genomedsm_core::heuristic::{heuristic_align, HeuristicParams};
use genomedsm_core::hirschberg::hirschberg_align;
use genomedsm_core::linear::{nw_last_row, sw_score_linear};
use genomedsm_core::matrix::{nw_align, sw_matrix};
use genomedsm_core::reverse::reverse_align_best;
use genomedsm_core::Scoring;
use genomedsm_dsm::{DsmConfig, DsmSystem, NetworkModel};
use genomedsm_strategies::{heuristic_block_align, BlockedConfig};
use proptest::prelude::*;

const SC: Scoring = Scoring::paper();

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The best local score is symmetric: sim(s, t) == sim(t, s).
    #[test]
    fn sw_score_is_symmetric(s in dna(60), t in dna(60)) {
        let a = sw_score_linear(&s, &t, &SC, i32::MAX).best_score;
        let b = sw_score_linear(&t, &s, &SC, i32::MAX).best_score;
        prop_assert_eq!(a, b);
    }

    /// Linear-space SW reproduces the full matrix: best score, end point,
    /// and threshold hit counts.
    #[test]
    fn linear_sw_equals_full_matrix(s in dna(48), t in dna(48), threshold in 1i32..8) {
        let full = sw_matrix(&s, &t, &SC);
        let (i, j, best) = full.maximum();
        let lin = sw_score_linear(&s, &t, &SC, threshold);
        prop_assert_eq!(lin.best_score, best);
        if best > 0 {
            prop_assert_eq!(lin.best_end, (i, j));
        }
        prop_assert_eq!(lin.hits, full.cells_at_least(threshold).len() as u64);
    }

    /// The last row of the NW array computed in linear space matches the
    /// full matrix.
    #[test]
    fn nw_last_row_matches_matrix(s in dna(40), t in dna(40)) {
        let full = genomedsm_core::matrix::nw_matrix(&s, &t, &SC);
        let row = nw_last_row(&s, &t, &SC);
        for j in 0..=t.len() {
            prop_assert_eq!(row[j], full.get(s.len(), j));
        }
    }

    /// Hirschberg's linear-space global alignment scores exactly like the
    /// full-matrix NW, and its rendered rows are consistent.
    #[test]
    fn hirschberg_equals_nw(s in dna(48), t in dna(48)) {
        let h = hirschberg_align(&s, &t, &SC);
        let f = nw_align(&s, &t, &SC);
        prop_assert_eq!(h.score, f.score);
        prop_assert_eq!(h.score, h.recompute_score(&SC));
        let ps: Vec<u8> = h.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = h.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        prop_assert_eq!(ps, s);
        prop_assert_eq!(pt, t);
    }

    /// Algorithm 1 (reverse recovery) reproduces the best SW score, and
    /// the rebuilt alignment over the recovered window scores the same.
    #[test]
    fn reverse_recovery_is_exact(s in dna(50), t in dna(50)) {
        let best = sw_score_linear(&s, &t, &SC, i32::MAX).best_score;
        match reverse_align_best(&s, &t, &SC) {
            Some(rec) => {
                prop_assert_eq!(rec.region.score, best);
                prop_assert_eq!(rec.alignment.score, best);
            }
            None => prop_assert_eq!(best, 0),
        }
    }

    /// The parallel blocked strategy equals the serial reference for
    /// arbitrary inputs and grid shapes.
    #[test]
    fn blocked_strategy_equals_serial(
        s in dna(40),
        t in dna(40),
        nprocs in 1usize..4,
        bands in 1usize..6,
        blocks in 1usize..6,
    ) {
        let params = HeuristicParams {
            open_threshold: 3,
            close_threshold: 3,
            min_score: 4,
        };
        let serial = heuristic_align(&s, &t, &SC, &params);
        let out = heuristic_block_align(
            &s, &t, &SC, &params, &BlockedConfig::new(nprocs, bands, blocks));
        prop_assert_eq!(out.regions, serial);
    }

    /// DSM: barrier-separated writes are visible to every node regardless
    /// of page size and cache capacity (including eviction churn).
    #[test]
    fn dsm_barrier_visibility(
        page_size_log in 6u32..10,
        cache in 2usize..8,
        len in 1usize..200,
    ) {
        let config = DsmConfig::new(2)
            .page_size(1 << page_size_log)
            .cache_pages(cache)
            .network(NetworkModel::zero());
        let run = DsmSystem::run(config, move |node| {
            let v = node.alloc_vec::<i32>(len);
            node.barrier();
            if node.id() == 0 {
                for i in 0..len {
                    node.vec_set(&v, i, i as i32 + 1);
                }
            }
            node.barrier();
            (0..len).map(|i| node.vec_get(&v, i) as i64).sum::<i64>()
        });
        let expect: i64 = (1..=len as i64).sum();
        prop_assert_eq!(run.results, vec![expect, expect]);
    }

    /// DSM: a lock-guarded accumulator behaves sequentially consistently
    /// for any number of nodes and iterations.
    #[test]
    fn dsm_lock_atomicity(nprocs in 1usize..5, iters in 1i64..20) {
        let run = DsmSystem::run(DsmConfig::new(nprocs), move |node| {
            let c = node.alloc_vec::<i64>(1);
            node.barrier();
            for _ in 0..iters {
                node.lock(1);
                let v = node.vec_get(&c, 0);
                node.vec_set(&c, 0, v + 1);
                node.unlock(1);
            }
            node.barrier();
            node.vec_get(&c, 0)
        });
        for r in run.results {
            prop_assert_eq!(r, nprocs as i64 * iters);
        }
    }

    /// Mutated copies keep enough k-mer overlap for the BlastN baseline to
    /// re-find them (detectability of the workload generator).
    #[test]
    fn blast_finds_long_exact_copies(seed in 0u64..500) {
        let src = genomedsm_seq::random_dna(80, seed);
        let mut s = genomedsm_seq::random_dna(300, seed.wrapping_add(1)).into_bytes();
        let mut t = genomedsm_seq::random_dna(300, seed.wrapping_add(2)).into_bytes();
        s[100..180].copy_from_slice(src.as_bytes());
        t[40..120].copy_from_slice(src.as_bytes());
        let hits = genomedsm_blast::BlastN::default().search(&s, &t).unwrap();
        prop_assert!(hits.iter().any(|h| h.score >= 40));
    }
}
