//! Cross-crate integration tests: the full two-phase pipeline on every
//! strategy, at every cluster size the paper evaluates (1, 2, 4, 8).

use genomedsm::prelude::*;
use genomedsm_core::heuristic_align;
use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::nw::nw_score;
use genomedsm_dotplot::{ascii_plot, svg_plot, PlotSpec};
use genomedsm_strategies::{heuristic_block_align_shm, BandScheme, ChunkPlan, HeuristicDsmConfig};

const SC: Scoring = Scoring::paper();

fn params() -> HeuristicParams {
    HeuristicParams {
        open_threshold: 10,
        close_threshold: 10,
        min_score: 25,
    }
}

fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>, usize) {
    let plan = HomologyPlan {
        region_count: (len / 400).max(2),
        region_len_mean: 200,
        region_len_jitter: 50,
        profile: genomedsm_seq::MutationProfile::similar(),
    };
    let (s, t, truth) = genomedsm_seq::planted_pair(len, len, &plan, seed);
    (s.into_bytes(), t.into_bytes(), truth.len())
}

#[test]
fn all_strategies_agree_on_all_cluster_sizes() {
    let (s, t, _) = workload(900, 71);
    let serial = heuristic_align(&s, &t, &SC, &params());
    assert!(!serial.is_empty(), "workload must produce regions");
    for nprocs in [1, 2, 4, 8] {
        let s1 = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(nprocs));
        assert_eq!(s1.regions, serial, "strategy 1, P={nprocs}");
        let s2 = heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &BlockedConfig::new(nprocs, 2 * nprocs, 2 * nprocs),
        );
        assert_eq!(s2.regions, serial, "strategy 2, P={nprocs}");
        let shm = heuristic_block_align_shm(&s, &t, &SC, &params(), nprocs, 8, 8);
        assert_eq!(shm.regions, serial, "shm port, P={nprocs}");
    }
}

#[test]
fn phase1_finds_the_planted_homology() {
    let (s, t, planted) = workload(2_000, 72);
    let out = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(4, 8, 8));
    // Every strong planted region should be covered; allow a small miss
    // margin for regions weakened by mutation.
    assert!(
        out.regions.len() + 1 >= planted,
        "found {} of {planted}",
        out.regions.len()
    );
}

#[test]
fn full_pipeline_phase1_phase2_dotplot() {
    let (s, t, _) = workload(1_200, 73);
    for nprocs in [1, 2, 4, 8] {
        let phase1 =
            heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 8, 8));
        let phase2 = phase2_scattered(&s, &t, &phase1.regions, &SC, nprocs).unwrap();
        assert_eq!(phase2.alignments.len(), phase1.regions.len());
        for ra in &phase2.alignments {
            let r = &ra.region;
            let expect = nw_score(&s[r.s_begin..r.s_end], &t[r.t_begin..r.t_end], &SC);
            assert_eq!(ra.alignment.score, expect);
            assert_eq!(ra.alignment.score, ra.alignment.recompute_score(&SC));
        }
        let spec = PlotSpec::new(s.len(), t.len());
        let ascii = ascii_plot(&phase1.regions, &spec, 40, 20);
        assert!(ascii.contains('*'));
        let svg = svg_plot(&phase1.regions, &spec, 640, 640);
        assert!(svg.contains("<line"));
    }
}

#[test]
fn preprocess_exactness_across_cluster_sizes() {
    let (s, t, _) = workload(700, 74);
    let oracle = sw_score_linear(&s, &t, &SC, 20);
    for nprocs in [1, 2, 4, 8] {
        let mut config = PreprocessConfig::new(nprocs);
        config.band = BandScheme::Fixed(97);
        config.chunk = ChunkPlan::Fixed(128);
        config.threshold = 20;
        config.result_interleave = 64;
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        assert_eq!(out.total_hits(), oracle.hits as i64, "P={nprocs}");
        assert_eq!(out.best_score, oracle.best_score, "P={nprocs}");
    }
}

#[test]
fn preprocess_band_schemes_agree() {
    let (s, t, _) = workload(600, 75);
    let mut totals = Vec::new();
    for band in [
        BandScheme::Fixed(64),
        BandScheme::Equal,
        BandScheme::Balanced(100),
    ] {
        let mut config = PreprocessConfig::new(3);
        config.band = band;
        config.chunk = ChunkPlan::Arithmetic {
            start: 32,
            step: 32,
        };
        config.threshold = 18;
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        totals.push((out.total_hits(), out.best_score));
    }
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[1], totals[2]);
}

#[test]
fn reverse_exact_agrees_with_phase1_peak() {
    let (s, t, _) = workload(800, 76);
    let exact = genomedsm_core::reverse::reverse_align_best(&s, &t, &SC).expect("has alignment");
    let oracle = sw_score_linear(&s, &t, &SC, i32::MAX);
    assert_eq!(exact.region.score, oracle.best_score);
    // The heuristic queue's best region should overlap the exact best.
    let phase1 = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(2, 4, 4));
    let best_heur = phase1.regions.iter().max_by_key(|r| r.score).expect("some");
    assert!(
        best_heur.overlaps(&exact.region),
        "heuristic best {best_heur:?} misses exact best {:?}",
        exact.region
    );
}

#[test]
fn blast_and_genomedsm_find_the_same_top_region() {
    let (s, t, _) = workload(1_500, 77);
    let dsm = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(2, 6, 6));
    let blast = genomedsm_blast::BlastN::default()
        .search(&s, &t)
        .expect("clean DNA input");
    let top_dsm = dsm.regions.iter().max_by_key(|r| r.score).expect("regions");
    assert!(
        blast.iter().any(|h| h.overlaps(top_dsm)),
        "no BlastN HSP overlaps the top GenomeDSM region"
    );
}

#[test]
fn fasta_round_trip_preserves_pipeline_results() {
    let (s, t, _) = workload(500, 78);
    let dir = std::env::temp_dir().join("genomedsm_pipeline_fasta");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pair.fa");
    let records = vec![
        genomedsm_seq::fasta::FastaRecord {
            id: "s".into(),
            seq: DnaSeq::from_bases(s.clone()),
        },
        genomedsm_seq::fasta::FastaRecord {
            id: "t".into(),
            seq: DnaSeq::from_bases(t.clone()),
        },
    ];
    genomedsm_seq::fasta::write_fasta_file(&path, &records).unwrap();
    let back = genomedsm_seq::fasta::read_fasta_file(&path).unwrap();
    let before = heuristic_align(&s, &t, &SC, &params());
    let after = heuristic_align(
        back[0].seq.as_bytes(),
        back[1].seq.as_bytes(),
        &SC,
        &params(),
    );
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}
