//! Second property-test battery: queue canonicalization, encodings,
//! banded alignment, partition plans, and the remaining strategies.

#![allow(clippy::needless_range_loop)]

use genomedsm_core::affine::{nw_affine_score, sw_affine_score, AffineScoring};
use genomedsm_core::heuristic::{heuristic_align, HCell, HeuristicParams};
use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::matrix::nw_align;
use genomedsm_core::nw::nw_banded;
use genomedsm_core::{finalize_queue, LocalRegion, Scoring};
use genomedsm_dotplot::{svg_plot, PlotSpec};
use genomedsm_strategies::{
    heuristic_align_dsm, preprocess_align, BandScheme, ChunkPlan, GridPlan, HeuristicDsmConfig,
    PreprocessConfig,
};
use proptest::prelude::*;

const SC: Scoring = Scoring::paper();

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max_len,
    )
}

fn region() -> impl Strategy<Value = LocalRegion> {
    (0usize..100, 1usize..80, 0usize..100, 1usize..80, 1i32..90).prop_map(
        |(sb, sl, tb, tl, score)| LocalRegion {
            s_begin: sb,
            s_end: sb + sl,
            t_begin: tb,
            t_end: tb + tl,
            score,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// finalize_queue is order-independent: any permutation of the input
    /// yields the same canonical queue (serial and parallel runs assemble
    /// queues in different orders and must agree).
    #[test]
    fn finalize_queue_is_order_independent(
        mut regions in proptest::collection::vec(region(), 0..40),
        seed in 0u64..1000,
    ) {
        let a = finalize_queue(regions.clone());
        // Deterministic shuffle.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15) | 1;
        for i in (1..regions.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            regions.swap(i, (x as usize) % (i + 1));
        }
        let b = finalize_queue(regions);
        prop_assert_eq!(a, b);
    }

    /// finalize_queue is idempotent.
    #[test]
    fn finalize_queue_is_idempotent(regions in proptest::collection::vec(region(), 0..30)) {
        let once = finalize_queue(regions);
        let twice = finalize_queue(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// HCell's DSM byte encoding is lossless for arbitrary field values.
    #[test]
    fn hcell_encoding_round_trips(
        score in i32::MIN..i32::MAX,
        max in i32::MIN..i32::MAX,
        min in i32::MIN..i32::MAX,
        beg_i in 0u32..u32::MAX,
        beg_j in 0u32..u32::MAX,
        gaps in 0u32..u32::MAX,
        matches in 0u32..u32::MAX,
        mismatches in 0u32..u32::MAX,
        open in proptest::bool::ANY,
    ) {
        let cell = HCell { score, max, min, beg_i, beg_j, gaps, matches, mismatches, open };
        let mut buf = [0u8; HCell::ENCODED_LEN];
        cell.encode(&mut buf);
        prop_assert_eq!(HCell::decode(&buf), cell);
    }

    /// A sufficiently wide band makes banded NW identical to the full
    /// matrix.
    #[test]
    fn banded_nw_equals_full_when_band_covers(s in dna(36), t in dna(36)) {
        let band = s.len().max(t.len()).max(1);
        let banded = nw_banded(&s, &t, &SC, band).expect("band covers everything");
        let full = nw_align(&s, &t, &SC);
        prop_assert_eq!(banded.score, full.score);
    }

    /// Grid plans partition the axis exactly, whatever the parameters.
    #[test]
    fn grid_plans_partition(total in 0usize..500, parts in 1usize..20, splits in 0usize..6) {
        for plan in [GridPlan::Uniform, GridPlan::Ramped { edge_splits: splits }] {
            let bounds = plan.bounds(total, parts);
            let mut expected_lo = 1;
            let mut covered = 0;
            for &(lo, hi) in &bounds {
                if hi >= lo {
                    prop_assert_eq!(lo, expected_lo);
                    covered += hi + 1 - lo;
                    expected_lo = hi + 1;
                }
            }
            prop_assert_eq!(covered, total);
        }
    }

    /// Band schemes partition the rows exactly.
    #[test]
    fn band_schemes_partition(rows in 1usize..2000, nprocs in 1usize..9, h in 1usize..300) {
        for scheme in [BandScheme::Fixed(h), BandScheme::Equal, BandScheme::Balanced(h)] {
            let bands = scheme.bands(rows, nprocs);
            prop_assert_eq!(bands[0].0, 1);
            prop_assert_eq!(bands.last().unwrap().1, rows);
            for w in bands.windows(2) {
                prop_assert_eq!(w[0].1 + 1, w[1].0);
            }
        }
    }

    /// Chunk plans partition the columns exactly.
    #[test]
    fn chunk_plans_partition(cols in 1usize..2000, start in 1usize..200, step in 0usize..100) {
        for plan in [
            ChunkPlan::Fixed(start),
            ChunkPlan::Arithmetic { start, step },
            ChunkPlan::Geometric { start, factor: 2 },
        ] {
            let chunks = plan.chunks(cols);
            prop_assert_eq!(chunks[0].0, 1);
            prop_assert_eq!(chunks.last().unwrap().1, cols);
            for w in chunks.windows(2) {
                prop_assert_eq!(w[0].1 + 1, w[1].0);
            }
        }
    }

    /// Strategy 1 (per-cell border handoff) equals the serial reference
    /// for arbitrary inputs and cluster sizes.
    #[test]
    fn strategy1_equals_serial(s in dna(36), t in dna(36), nprocs in 1usize..5) {
        let params = HeuristicParams {
            open_threshold: 3,
            close_threshold: 3,
            min_score: 4,
        };
        let serial = heuristic_align(&s, &t, &SC, &params);
        let out = heuristic_align_dsm(&s, &t, &SC, &params, &HeuristicDsmConfig::new(nprocs));
        prop_assert_eq!(out.regions, serial);
    }

    /// The pre-process strategy's hit count and best score match the
    /// linear-space oracle for arbitrary geometry.
    #[test]
    fn preprocess_matches_oracle(
        s in dna(80),
        t in dna(80),
        nprocs in 1usize..4,
        band_h in 1usize..40,
        chunk_w in 1usize..40,
        threshold in 1i32..6,
    ) {
        let mut config = PreprocessConfig::new(nprocs);
        config.band = BandScheme::Fixed(band_h);
        config.chunk = ChunkPlan::Fixed(chunk_w);
        config.threshold = threshold;
        config.result_interleave = chunk_w;
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let oracle = sw_score_linear(&s, &t, &SC, threshold);
        prop_assert_eq!(out.total_hits(), oracle.hits as i64);
        prop_assert_eq!(out.best_score, oracle.best_score);
    }

    /// The SVG renderer is insensitive to region order (same line count)
    /// and never panics on arbitrary regions.
    #[test]
    fn svg_plot_region_order_irrelevant(
        mut regions in proptest::collection::vec(region(), 0..20),
    ) {
        let spec = PlotSpec::new(200, 200);
        let a = svg_plot(&regions, &spec, 300, 300).matches("<line").count();
        regions.reverse();
        let b = svg_plot(&regions, &spec, 300, 300).matches("<line").count();
        prop_assert_eq!(a, b);
    }

    /// With open == extend, Gotoh's affine algorithms reduce exactly to
    /// the paper's linear-gap recurrences.
    #[test]
    fn affine_degenerates_to_linear(s in dna(40), t in dna(40)) {
        let aff = AffineScoring::linear(SC);
        let lin = sw_score_linear(&s, &t, &SC, i32::MAX);
        let (best, _) = sw_affine_score(&s, &t, &aff);
        prop_assert_eq!(best, lin.best_score);
        let nw_lin = nw_align(&s, &t, &SC).score;
        prop_assert_eq!(nw_affine_score(&s, &t, &aff), nw_lin);
    }

    /// Affine gaps never score higher than linear gaps when the affine
    /// penalties dominate the linear one (open <= gap <= extend).
    #[test]
    fn affine_global_bounded_by_linear(s in dna(32), t in dna(32)) {
        let aff = AffineScoring {
            matches: 1,
            mismatch: -1,
            gap_open: -3, // worse than the linear -2 for every run length
            gap_extend: -2,
        };
        let linear = nw_align(&s, &t, &SC).score;
        prop_assert!(nw_affine_score(&s, &t, &aff) <= linear);
    }

    /// Affine traceback alignments re-score to their reported score.
    #[test]
    fn affine_traceback_consistent(s in dna(28), t in dna(28)) {
        let aff = AffineScoring::dna();
        let g = genomedsm_core::affine::nw_affine_align(&s, &t, &aff);
        // Recompute: columns with affine gap-run accounting.
        let mut score = 0;
        let mut in_gap_s = false;
        let mut in_gap_t = false;
        for (&a, &b) in g.aligned_s.iter().zip(&g.aligned_t) {
            if a == b'-' {
                score += if in_gap_s { aff.gap_extend } else { aff.gap_open };
                in_gap_s = true;
                in_gap_t = false;
            } else if b == b'-' {
                score += if in_gap_t { aff.gap_extend } else { aff.gap_open };
                in_gap_t = true;
                in_gap_s = false;
            } else {
                score += if a == b { aff.matches } else { aff.mismatch };
                in_gap_s = false;
                in_gap_t = false;
            }
        }
        prop_assert_eq!(score, g.score);
    }

    /// Identical sequences score their full length and the heuristic
    /// reports a region covering almost everything.
    #[test]
    fn self_alignment_is_perfect(s in dna(120)) {
        prop_assume!(s.len() >= 30);
        let lin = sw_score_linear(&s, &s, &SC, i32::MAX);
        prop_assert_eq!(lin.best_score, s.len() as i32);
        let params = HeuristicParams {
            open_threshold: 5,
            close_threshold: 5,
            min_score: 10,
        };
        let regions = heuristic_align(&s, &s, &SC, &params);
        prop_assert!(!regions.is_empty());
        let best = regions.iter().max_by_key(|r| r.score).expect("non-empty");
        prop_assert!(best.score >= s.len() as i32 - 10);
    }
}
