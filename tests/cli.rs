//! End-to-end tests of the `genomedsm` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genomedsm"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genomedsm_cli_{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn generate_align_exact_round_trip() {
    let dir = temp_dir("roundtrip");
    let fa = dir.join("pair.fa");
    let svg = dir.join("plot.svg");

    let out = bin()
        .args(["generate", "--len", "3000", "--seed", "7", "--out"])
        .arg(&fa)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(fa.exists());

    let out = bin()
        .arg("align")
        .arg(&fa)
        .args(["--procs", "2", "--alignments", "1", "--svg"])
        .arg(&svg)
        .output()
        .expect("run align");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("candidate similar regions"), "{stdout}");
    assert!(stdout.contains("similarity:"), "{stdout}");
    assert!(svg.exists());
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.contains("<line"), "dot plot must contain regions");

    let out = bin()
        .arg("exact")
        .arg(&fa)
        .args(["--min-score", "80", "--threads", "2"])
        .output()
        .expect("run exact");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exact local alignments"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_preprocess_strategy_reports_scoreboard() {
    let dir = temp_dir("preprocess");
    let fa = dir.join("pair.fa");
    assert!(bin()
        .args(["generate", "--len", "2000", "--out"])
        .arg(&fa)
        .status()
        .expect("generate")
        .success());
    let out = bin()
        .arg("align")
        .arg(&fa)
        .args(["--strategy", "preprocess", "--procs", "2"])
        .output()
        .expect("run align");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("best score"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn missing_input_file_is_a_clean_error() {
    let out = bin()
        .args(["align", "/nonexistent/definitely_missing.fa"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
