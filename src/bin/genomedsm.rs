//! The `genomedsm` command-line tool: end-to-end local alignment of two
//! FASTA sequences with any of the paper's strategies.
//!
//! ```text
//! genomedsm generate --len 50000 --out pair.fa [--seed 42]
//! genomedsm generate --mode protein --records N --len L --out db.fa
//! genomedsm align s.fa t.fa [options]
//! genomedsm exact s.fa t.fa [--min-score N]
//! genomedsm score s.fa t.fa [--threshold N] [--kernel scalar|simd|auto]
//! genomedsm chaos s.fa t.fa [--plan SPEC] [--strategy S] [--procs N]
//! genomedsm batch --db db.fa --queries q.fa [--top-k N] [--kernel K]
//!                 [--workers N] [--check] [--mode dna|protein]
//!                 [--matrix M] [--gap-open N] [--gap-extend N]
//!                 [--prefilter]
//! genomedsm serve --db db.fa --socket PATH [--queue N] [--cache N]
//!                 [--service-workers N] [--workers N] [--kernel K]
//!                 [--mode dna|protein] [--matrix M] [--gap-open N]
//!                 [--gap-extend N]
//! genomedsm client --socket PATH [--name NAME] [--weight W]
//!                  (--queries q.fa [--top-k N] [--mode protein
//!                   [--matrix M] [--gap-open N] [--gap-extend N]] |
//!                   --reload db.fa | --stats | --shutdown)
//! genomedsm node --rank R --cluster FILE [--session N] [--len N]
//!                [--seed N] [--procs N] [--plan SPEC]
//! genomedsm launch [--ranks N] [--cluster loopback] [--len N]
//!                  [--seed N] [--session N] [--plan SPEC]
//!
//! align options:
//!   --strategy heuristic|blocked|preprocess   (default blocked)
//!   --procs N          simulated cluster nodes (default 8)
//!   --bands N --blocks N                      (default 40x40)
//!   --min-score N      report alignments scoring at least N (default 50)
//!   --open N --close N heuristic thresholds   (default 15/15)
//!   --kernel K         score kernel for the preprocess strategy:
//!                      scalar | simd | auto   (default auto)
//!   --svg FILE         write a dot plot of the similar regions
//!   --alignments N     print the N best phase-2 alignments (default 3)
//!   --tolerate-failures  enable the cluster supervision layer
//!                      (heartbeats, lock-lease recovery, work takeover)
//!   --kill NODE:UNITS  fail-stop NODE after UNITS work units
//!                      (repeatable; implies --tolerate-failures)
//!   --rejoin NODE:UNITS  readmit a --kill'ed NODE after UNITS work
//!                      units of downtime, at the next workload boundary
//!                      (repeatable; the boundary must fall inside the
//!                      run — see DESIGN.md §5.13)
//!
//! node: one rank of a real multi-process cluster. Binds the UDP socket
//! the manifest assigns to --rank, runs all three phase-1 strategies and
//! phase 2 over the deterministic (--len, --seed) workload, and prints a
//! report built only from gathered results — bit-identical on every rank
//! and to the in-process simulation. Per-rank timings and transport
//! counters go to stderr as `#metric` lines. The manifest comes from
//! --cluster FILE (TOML) or the GENOMEDSM_CLUSTER environment variable.
//!
//! launch: spawns --ranks copies of this binary as `node` processes on a
//! fresh loopback manifest, waits for them, and verifies every rank's
//! report is bit-identical to the in-process run (with --plan, the chaos
//! happens on real datagrams and must be invisible in the results).
//!
//! score: exact SW best score + threshold-hit count on the host (no DSM
//! simulation), timed, using the selected vectorized kernel.
//!
//! batch: multi-query database search — every query of --queries against
//! every record of --db, lane-packed (a different query per SIMD lane)
//! and work-stolen across --workers threads, reporting the --top-k hits
//! per query and aggregate GCUPS. --check re-runs the search with
//! sequential per-pair kernel calls and verifies the hits are identical.
//! --mode protein scores with the affine-gap Gotoh recurrence under a
//! substitution matrix (--matrix: blosum62|blosum50|pam250 or an
//! NCBI-format file; --gap-open/--gap-extend, defaults -11/-1), parsing
//! both FASTA files with the amino-acid alphabet. --prefilter (protein
//! only) consults the ALAE-style composition index before every DP
//! launch and reports the pruning rate — the answer is provably
//! bit-identical to the unfiltered scan.
//!
//! serve: the always-on alignment service. Loads --db once, listens on
//! the --socket Unix socket, and answers `client` searches with a
//! bounded admission queue (--queue, refused-not-hung overload), a
//! result cache keyed by (query digest, db epoch) (--cache answers),
//! per-client weighted fair scheduling across --service-workers request
//! workers, and hot-reloadable databases (client --reload). Runs until a
//! client sends --shutdown.
//!
//! client: one interaction with a running server — a search streamed
//! answer by answer (each query's final top-k arrives as soon as it is
//! ready), a database hot-reload, a statistics snapshot, or shutdown.
//!
//! chaos: runs the selected strategy twice — fault-free and under the
//! fault plan — verifies the results are bit-identical, and reports the
//! reliability layer's work (retransmits, duplicates dropped, corrupt
//! frames, crash recoveries) plus the virtual-time overhead.
//!   --plan SPEC   "none", "paper", or key=value list:
//!                 seed=N drop=P corrupt=P dup=P reorder=P delay_us=N
//!                 crash=NODE@UNIT          (default "paper")
//!   --strategy heuristic|blocked|preprocess  (default preprocess)
//! ```

use genomedsm::prelude::*;
use genomedsm_core::nw::render_region_alignment;
use genomedsm_dotplot::{svg_plot, PlotSpec};
use genomedsm_seq::fasta::{read_fasta_file, write_fasta_file, FastaRecord};
use genomedsm_strategies::{reverse_align_all_parallel, BandScheme, ChunkPlan};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("align") => align(&args[1..]),
        Some("exact") => exact(&args[1..]),
        Some("score") => score(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("batch") => batch(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("node") => node(&args[1..]),
        Some("launch") => launch(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str = "usage: genomedsm <generate|align|exact|score|chaos|batch|serve|client\
     |node|launch> [options]  (--help for details)";

fn opt_kernel(args: &[String]) -> KernelChoice {
    match opt(args, "--kernel") {
        Some(v) => KernelChoice::parse(&v).unwrap_or_else(|| {
            eprintln!("invalid --kernel '{v}' (scalar|simd|auto)");
            exit(2);
        }),
        None => KernelChoice::Auto,
    }
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses the shared protein-scoring flags: `--matrix` names a baked-in
/// matrix (blosum62, blosum50, pam250) or an NCBI-format matrix file,
/// `--gap-open`/`--gap-extend` set the affine penalties (negative;
/// defaults −11/−1).
fn opt_matrix_scoring(args: &[String]) -> genomedsm::core::submat::MatrixScoring {
    use genomedsm::core::submat::{MatrixScoring, SubstMatrix};
    let matrix = match opt(args, "--matrix") {
        None => SubstMatrix::blosum62(),
        Some(spec) => SubstMatrix::by_name(&spec).unwrap_or_else(|| {
            let text = std::fs::read_to_string(&spec).unwrap_or_else(|e| {
                eprintln!("--matrix '{spec}': not a built-in name (blosum62|blosum50|pam250) and not a readable file: {e}");
                exit(2);
            });
            SubstMatrix::parse_ncbi(&text).unwrap_or_else(|e| {
                eprintln!("--matrix {spec}: {e}");
                exit(2);
            })
        }),
    };
    let ms = MatrixScoring::new(
        matrix,
        opt_num(args, "--gap-open", -11),
        opt_num(args, "--gap-extend", -1),
    );
    if ms.gap_open > 0 || ms.gap_extend > 0 {
        eprintln!("--gap-open/--gap-extend are penalties: they must be <= 0");
        exit(2);
    }
    ms
}

/// Parses `--mode dna|protein` (default dna); protein mode picks up the
/// `--matrix`/`--gap-open`/`--gap-extend` flags.
fn opt_mode(args: &[String]) -> genomedsm::batch::ScoreMode {
    use genomedsm::batch::ScoreMode;
    match opt(args, "--mode").as_deref() {
        None | Some("dna") => ScoreMode::Dna,
        Some("protein") => ScoreMode::Protein(opt_matrix_scoring(args)),
        Some(other) => {
            eprintln!("invalid --mode '{other}' (dna|protein)");
            exit(2);
        }
    }
}

/// Option flags that take no value (everything else is `--flag VALUE`).
const BOOL_FLAGS: &[&str] = &[
    "--tolerate-failures",
    "--check",
    "--stats",
    "--shutdown",
    "--prefilter",
];

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_all(args: &[String], name: &str) -> Vec<String> {
    let mut values = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == name {
            values.push(args[i + 1].clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    values
}

/// Parses one `NODE:UNITS` spec.
fn node_units(spec: &str) -> Option<(usize, u64)> {
    spec.split_once(':')
        .and_then(|(n, u)| Some((n.parse::<usize>().ok()?, u.parse::<u64>().ok()?)))
}

/// Parses the repeatable `--kill NODE:UNITS` and `--rejoin NODE:UNITS`
/// specs into a fault injector.
fn kill_plan(args: &[String]) -> Option<std::sync::Arc<genomedsm_strategies::KillPlan>> {
    let kills = opt_all(args, "--kill");
    let rejoins = opt_all(args, "--rejoin");
    if kills.is_empty() {
        if !rejoins.is_empty() {
            eprintln!("--rejoin needs a matching --kill (nothing to rejoin)");
            exit(2);
        }
        return None;
    }
    let mut plan = genomedsm_strategies::KillPlan::new();
    for spec in &kills {
        match node_units(spec) {
            Some((node, units)) => plan = plan.kill(node, units),
            None => {
                eprintln!("invalid --kill '{spec}' (expected NODE:UNITS)");
                exit(2);
            }
        }
    }
    for spec in &rejoins {
        match node_units(spec) {
            Some((node, units)) => {
                if !plan.victims().contains(&node) {
                    eprintln!("--rejoin {spec}: node {node} has no scheduled --kill");
                    exit(2);
                }
                plan = plan.rejoin(node, units);
            }
            None => {
                eprintln!("invalid --rejoin '{spec}' (expected NODE:UNITS)");
                exit(2);
            }
        }
    }
    Some(std::sync::Arc::new(plan))
}

/// Reports what the supervision layer did during a tolerant run.
fn print_supervision(per_node: &[genomedsm::dsm::NodeStats]) {
    let mut agg = genomedsm::dsm::NodeStats::default();
    for st in per_node {
        agg.merge(st);
    }
    println!(
        "supervision: {} obituaries, {} lease(s) broken, {} role takeover(s), \
         {} waiter(s) woken, {} heartbeats",
        agg.obituaries, agg.leases_broken, agg.takeovers, agg.waiters_woken, agg.heartbeats
    );
}

fn opt_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match opt(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {name}: {v}");
            exit(2);
        }),
        None => default,
    }
}

fn generate(args: &[String]) {
    if opt(args, "--mode").as_deref() == Some("protein") {
        return generate_protein(args);
    }
    let len: usize = opt_num(args, "--len", 50_000);
    let seed: u64 = opt_num(args, "--seed", 42);
    let out = opt(args, "--out").unwrap_or_else(|| "pair.fa".into());
    let (s, t, truth) = planted_pair(len, len, &HomologyPlan::paper_density(len), seed);
    let records = vec![
        FastaRecord {
            id: format!("s len={len} seed={seed}"),
            seq: s,
        },
        FastaRecord {
            id: format!("t len={len} seed={seed} planted={}", truth.len()),
            seq: t,
        },
    ];
    write_fasta_file(&out, &records).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {out}: two {len} bp sequences, {} planted similar regions",
        truth.len()
    );
}

/// `generate --mode protein`: a multi-record random protein FASTA
/// (uniform over the 20 standard residues), ready for `batch`/`serve`.
fn generate_protein(args: &[String]) {
    use genomedsm::seq::fasta::{write_protein_fasta_file, ProteinRecord};
    use genomedsm::seq::random_protein;
    let n: usize = opt_num(args, "--records", 8);
    let len: usize = opt_num(args, "--len", 300);
    let seed: u64 = opt_num(args, "--seed", 42);
    let out = opt(args, "--out").unwrap_or_else(|| "proteins.fa".into());
    let records: Vec<ProteinRecord> = (0..n)
        .map(|i| ProteinRecord {
            id: format!("p{i} len={} seed={seed}", len / 2 + (i * 31) % len.max(1)),
            seq: random_protein(len / 2 + (i * 31) % len.max(1), seed + i as u64),
        })
        .collect();
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    write_protein_fasta_file(&out, &records).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote {out}: {n} protein records, {total} residues total");
}

fn load_pair(args: &[String]) -> (Vec<u8>, Vec<u8>) {
    // Positional arguments: everything that is neither an option flag nor
    // the value that follows one.
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if BOOL_FLAGS.contains(&args[i].as_str()) {
            i += 1; // bare flag, no value
        } else if args[i].starts_with("--") {
            i += 2; // skip the flag and its value
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    files.truncate(2);
    let mut seqs: Vec<Vec<u8>> = Vec::new();
    for f in &files {
        match read_fasta_file(f) {
            Ok(records) => {
                for r in records {
                    seqs.push(r.seq.into_bytes());
                }
            }
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                exit(1);
            }
        }
    }
    if seqs.len() < 2 {
        eprintln!("need two sequences (one file with two records, or two files)");
        exit(2);
    }
    seqs.truncate(2);
    let t = seqs.pop().expect("two");
    let s = seqs.pop().expect("one");
    (s, t)
}

fn align(args: &[String]) {
    let (s, t) = load_pair(args);
    let strategy = opt(args, "--strategy").unwrap_or_else(|| "blocked".into());
    let procs: usize = opt_num(args, "--procs", 8);
    let bands: usize = opt_num(args, "--bands", 40);
    let blocks: usize = opt_num(args, "--blocks", 40);
    let scoring = Scoring::paper();
    let params = HeuristicParams {
        open_threshold: opt_num(args, "--open", 15),
        close_threshold: opt_num(args, "--close", 15),
        min_score: opt_num(args, "--min-score", 50),
    };

    let kills = kill_plan(args);
    let tolerate = has_flag(args, "--tolerate-failures") || kills.is_some();
    let fortify = |mut dsm: genomedsm::dsm::DsmConfig| {
        if tolerate {
            dsm = dsm.tolerate_failures();
        }
        if let Some(plan) = &kills {
            dsm = dsm.faults(std::sync::Arc::clone(plan) as _);
        }
        dsm
    };

    eprintln!(
        "aligning {} bp x {} bp with strategy '{strategy}' on {procs} simulated nodes...",
        s.len(),
        t.len()
    );
    let (regions, cluster_time) = match strategy.as_str() {
        "heuristic" => {
            let mut config = HeuristicDsmConfig::new(procs);
            config.dsm = fortify(config.dsm);
            let out = heuristic_align_dsm(&s, &t, &scoring, &params, &config);
            if tolerate {
                print_supervision(&out.per_node);
            }
            (out.regions, out.wall)
        }
        "blocked" => {
            let mut config = BlockedConfig::new(procs, bands, blocks);
            config.dsm = fortify(config.dsm);
            let out = heuristic_block_align(&s, &t, &scoring, &params, &config);
            if tolerate {
                print_supervision(&out.per_node);
            }
            (out.regions, out.wall)
        }
        "preprocess" => {
            let mut config = PreprocessConfig::new(procs);
            config.band = BandScheme::Balanced(1024.min(s.len().max(1)));
            config.chunk = ChunkPlan::Fixed(1024.min(t.len().max(1)));
            config.threshold = params.min_score;
            config.kernel = opt_kernel(args);
            config.dsm = fortify(config.dsm);
            let out = preprocess_align(&s, &t, &scoring, &config).unwrap_or_else(|e| {
                eprintln!("preprocess failed: {e}");
                exit(1);
            });
            println!(
                "pre-process: best score {}, {} threshold hits, simulated core time {:.2?}",
                out.best_score,
                out.total_hits(),
                out.core_time()
            );
            if tolerate {
                print_supervision(&out.per_node);
            }
            println!("(exact strategy keeps a hit scoreboard; use `exact` to retrieve alignments)");
            return;
        }
        other => {
            eprintln!("unknown strategy '{other}' (heuristic|blocked|preprocess)");
            exit(2);
        }
    };

    println!(
        "phase 1: {} candidate similar regions (simulated cluster time {:.2?})",
        regions.len(),
        cluster_time
    );
    for r in regions.iter().take(10) {
        println!("  {r}");
    }
    if regions.len() > 10 {
        println!("  ... {} more", regions.len() - 10);
    }

    if let Some(svg_path) = opt(args, "--svg") {
        let spec = PlotSpec::new(s.len(), t.len());
        std::fs::write(&svg_path, svg_plot(&regions, &spec, 800, 800)).unwrap_or_else(|e| {
            eprintln!("cannot write {svg_path}: {e}");
            exit(1);
        });
        println!("dot plot written to {svg_path}");
    }

    let show: usize = opt_num(args, "--alignments", 3);
    if show > 0 && !regions.is_empty() {
        let p2_config = fortify(
            genomedsm::dsm::DsmConfig::new(procs)
                .network(genomedsm::dsm::NetworkModel::paper_cluster()),
        );
        let phase2 =
            genomedsm_strategies::phase2_scattered_with(&s, &t, &regions, &scoring, &p2_config)
                .unwrap_or_else(|e| {
                    eprintln!("phase 2 failed: {e}");
                    exit(1);
                });
        if tolerate {
            print_supervision(&phase2.per_node);
        }
        println!("\nphase 2: best alignments");
        let mut ranked: Vec<_> = phase2.alignments.iter().collect();
        ranked.sort_by_key(|ra| -ra.alignment.score);
        for ra in ranked.into_iter().take(show) {
            println!("{}", render_region_alignment(ra));
        }
    }
}

fn score(args: &[String]) {
    let (s, t) = load_pair(args);
    let threshold: i32 = opt_num(args, "--threshold", 50);
    let choice = opt_kernel(args);
    let kernel = kernel_for(choice);
    eprintln!(
        "exact SW score of {} bp x {} bp on the '{}' kernel (threshold {threshold})...",
        s.len(),
        t.len(),
        kernel.name()
    );
    let t0 = std::time::Instant::now();
    let result = kernel.score(&s, &t, &Scoring::paper(), threshold);
    let elapsed = t0.elapsed();
    let cells = s.len() as f64 * t.len() as f64;
    println!(
        "best score {} at (s={}, t={}), {} cells >= {threshold}",
        result.best_score, result.best_end.0, result.best_end.1, result.hits
    );
    println!(
        "{} cells in {elapsed:.2?} on '{}' ({:.3} GCUPS)",
        cells as u64,
        kernel.name(),
        cells / elapsed.as_secs_f64().max(1e-9) / 1e9
    );
}

fn chaos(args: &[String]) {
    let (s, t) = load_pair(args);
    let spec = opt(args, "--plan").unwrap_or_else(|| "paper".into());
    let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| {
        eprintln!("invalid --plan '{spec}': {e}");
        exit(2);
    });
    let strategy = opt(args, "--strategy").unwrap_or_else(|| "preprocess".into());
    let procs: usize = opt_num(args, "--procs", 4);
    let scoring = Scoring::paper();
    let params = HeuristicParams {
        open_threshold: opt_num(args, "--open", 15),
        close_threshold: opt_num(args, "--close", 15),
        min_score: opt_num(args, "--min-score", 50),
    };
    let injector = std::sync::Arc::new(SeededFaults::new(plan.clone(), procs));
    eprintln!(
        "chaos run: {} bp x {} bp, strategy '{strategy}', {procs} nodes, plan '{spec}'",
        s.len(),
        t.len()
    );

    // (identical?, clean stats, faulty stats, clean wall, faulty wall)
    let (identical, clean_stats, faulty_stats, clean_wall, faulty_wall) = match strategy.as_str() {
        "heuristic" => {
            let clean =
                heuristic_align_dsm(&s, &t, &scoring, &params, &HeuristicDsmConfig::new(procs));
            let mut config = HeuristicDsmConfig::new(procs);
            config.dsm = config.dsm.faults(injector);
            let faulty = heuristic_align_dsm(&s, &t, &scoring, &params, &config);
            (
                clean.regions == faulty.regions,
                clean.aggregate(),
                faulty.aggregate(),
                clean.wall,
                faulty.wall,
            )
        }
        "blocked" => {
            let bands: usize = opt_num(args, "--bands", 40);
            let blocks: usize = opt_num(args, "--blocks", 40);
            let clean = heuristic_block_align(
                &s,
                &t,
                &scoring,
                &params,
                &BlockedConfig::new(procs, bands, blocks),
            );
            let mut config = BlockedConfig::new(procs, bands, blocks);
            config.dsm = config.dsm.faults(injector);
            let faulty = heuristic_block_align(&s, &t, &scoring, &params, &config);
            (
                clean.regions == faulty.regions,
                clean.aggregate(),
                faulty.aggregate(),
                clean.wall,
                faulty.wall,
            )
        }
        "preprocess" => {
            let base = || {
                let mut config = PreprocessConfig::new(procs);
                config.band = BandScheme::Balanced(1024.min(s.len().max(1)));
                config.chunk = ChunkPlan::Fixed(1024.min(t.len().max(1)));
                config.threshold = params.min_score;
                config.kernel = opt_kernel(args);
                config
            };
            let clean = preprocess_align(&s, &t, &scoring, &base()).unwrap();
            let mut config = base();
            // Crash recovery needs checkpoints; they are also what a
            // production deployment would run with, so the chaos report
            // includes their cost.
            config.checkpoint = true;
            config.dsm = config.dsm.faults(injector);
            let faulty = preprocess_align(&s, &t, &scoring, &config).unwrap();
            let agg = |per_node: &[genomedsm::dsm::NodeStats]| {
                let mut a = genomedsm::dsm::NodeStats::default();
                for st in per_node {
                    a.merge(st);
                }
                a
            };
            (
                clean.result == faulty.result && clean.best_score == faulty.best_score,
                agg(&clean.per_node),
                agg(&faulty.per_node),
                clean.wall,
                faulty.wall,
            )
        }
        other => {
            eprintln!("unknown strategy '{other}' (heuristic|blocked|preprocess)");
            exit(2);
        }
    };

    println!(
        "results: {}",
        if identical {
            "BIT-IDENTICAL to fault-free run"
        } else {
            "DIVERGED from fault-free run"
        }
    );
    println!(
        "reliability: {} retransmits, {} duplicates dropped, {} corrupt frames dropped",
        faulty_stats.retransmits, faulty_stats.dups_dropped, faulty_stats.corrupt_dropped
    );
    println!(
        "traffic: {} msgs / {} KiB fault-free vs {} msgs / {} KiB under faults",
        clean_stats.msgs_sent,
        clean_stats.bytes_sent / 1024,
        faulty_stats.msgs_sent,
        faulty_stats.bytes_sent / 1024
    );
    if faulty_stats.recoveries > 0 {
        println!(
            "recovery: {} node crash(es) recovered, {:.2?} total downtime",
            faulty_stats.recoveries, faulty_stats.recovery_time
        );
    }
    let overhead = faulty_wall.as_secs_f64() / clean_wall.as_secs_f64().max(1e-12) - 1.0;
    println!(
        "virtual time: {clean_wall:.2?} fault-free vs {faulty_wall:.2?} under faults \
         ({:+.1}% overhead)",
        overhead * 100.0
    );
    if !identical {
        exit(1);
    }
}

/// Parses the engine knobs shared by `batch` and `serve`.
fn batch_config(args: &[String], default_top_k: usize) -> BatchConfig {
    BatchConfig {
        kernel: opt_kernel(args),
        top_k: opt_num(args, "--top-k", default_top_k),
        mode: opt_mode(args),
        scheduler: genomedsm::batch::SchedulerConfig {
            workers: opt_num(args, "--workers", 0),
            window: 0,
        },
        ..BatchConfig::default()
    }
}

fn batch(args: &[String]) {
    let db_path = opt(args, "--db").unwrap_or_else(|| {
        eprintln!("batch needs --db FILE (multi-record FASTA database)\n{USAGE}");
        exit(2);
    });
    let q_path = opt(args, "--queries").unwrap_or_else(|| {
        eprintln!("batch needs --queries FILE (multi-record FASTA queries)\n{USAGE}");
        exit(2);
    });
    let config = batch_config(args, 5);
    // The shared engine-core path: the same load + execute + oracle steps
    // the server and the bench harness run. Protein mode parses the
    // amino-acid alphabet (no DNA ambiguity folding).
    let inputs = match config.mode {
        genomedsm::batch::ScoreMode::Protein(_) => {
            genomedsm::batch::load_protein_inputs(&db_path, &q_path)
        }
        genomedsm::batch::ScoreMode::Dna => genomedsm::batch::load_inputs(&db_path, &q_path),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot load inputs: {e}");
        exit(1);
    });
    let (db, refs) = (&inputs.db, inputs.query_refs());
    eprintln!(
        "batch search ({}): {} queries ({} bp) x {} records ({} bp), kernel '{}', \
         {} lanes...",
        match config.mode {
            genomedsm::batch::ScoreMode::Dna => "dna",
            genomedsm::batch::ScoreMode::Protein(_) => "protein",
        },
        refs.len(),
        refs.iter().map(|q| q.len()).sum::<usize>(),
        db.len(),
        db.total_bases(),
        config.kernel,
        genomedsm::kernels::effective_lanes(config.kernel),
    );
    if has_flag(args, "--prefilter") {
        prefiltered_batch(args, &config, db, &refs);
        return;
    }
    let engine = BatchEngine::new(config);
    let t0 = std::time::Instant::now();
    // Streaming: each query prints the moment its top-k is final.
    let out = genomedsm::batch::execute(&engine, db, &refs, |q, hits| {
        println!("query {q} ({} bp): {} hit(s)", refs[q].len(), hits.len());
        for h in hits {
            println!(
                "  score {:>6}  {}  end (q={}, t={})",
                h.score,
                db.meta(h.target).id,
                h.end.0,
                h.end.1
            );
        }
    });
    let elapsed = t0.elapsed();
    println!(
        "\n{} cells in {elapsed:.2?}: {:.3} aggregate GCUPS \
         ({} lane groups, {} scalar spill, {} jobs)",
        out.stats.cells,
        out.stats.cells as f64 / elapsed.as_secs_f64().max(1e-9) / 1e9,
        out.stats.lane_groups,
        out.stats.scalar_queries,
        out.stats.jobs
    );
    if has_flag(args, "--check") {
        let t0 = std::time::Instant::now();
        let verdict = genomedsm::batch::verify_against_oracle(&engine, db, &refs, &out.hits);
        let seq_elapsed = t0.elapsed();
        let oracle_name = match engine.config.mode {
            genomedsm::batch::ScoreMode::Dna => "sequential per-pair scoring",
            genomedsm::batch::ScoreMode::Protein(_) => "the sequential scalar Gotoh oracle",
        };
        match verdict {
            Ok(()) => println!(
                "check: IDENTICAL to {oracle_name} \
                 ({seq_elapsed:.2?} sequential, {:.1}x speedup)",
                seq_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
            ),
            Err(q) => {
                eprintln!("check: batch hits DIVERGE from {oracle_name} (first at query {q})");
                exit(1);
            }
        }
    }
}

/// The `batch --prefilter` path: composition-bound pruning before every
/// DP launch (protein mode only), bit-identical to the full scan.
fn prefiltered_batch(args: &[String], config: &BatchConfig, db: &SeqDatabase, refs: &[&[u8]]) {
    use genomedsm::batch::{build_index, oracle_search_mode, prefiltered_search, ScoreMode};
    let ScoreMode::Protein(ms) = config.mode else {
        eprintln!(
            "--prefilter requires --mode protein (the bound is a substitution-matrix property)"
        );
        exit(2);
    };
    let t_index = std::time::Instant::now();
    let index = build_index(db);
    let index_elapsed = t_index.elapsed();
    let t0 = std::time::Instant::now();
    let (hits, stats) = prefiltered_search(db, &index, refs, &ms, config.kernel, config.top_k);
    let elapsed = t0.elapsed();
    for (q, hs) in hits.iter().enumerate() {
        println!("query {q} ({} bp): {} hit(s)", refs[q].len(), hs.len());
        for h in hs {
            println!(
                "  score {:>6}  {}  end (q={}, t={})",
                h.score,
                db.meta(h.target).id,
                h.end.0,
                h.end.1
            );
        }
    }
    println!(
        "\nprefilter: {} of {} record visits pruned ({:.1}%), {} scored, \
         index built in {index_elapsed:.2?}, search {elapsed:.2?}",
        stats.pruned,
        stats.evaluated,
        stats.pruning_rate() * 100.0,
        stats.scored
    );
    if has_flag(args, "--check") {
        let t0 = std::time::Instant::now();
        let want = oracle_search_mode(db, refs, &config.mode, &config.scoring, config.top_k);
        let seq_elapsed = t0.elapsed();
        if hits == want {
            println!(
                "check: IDENTICAL to the unfiltered scalar Gotoh scan \
                 ({seq_elapsed:.2?} sequential)"
            );
        } else {
            let q = hits.iter().zip(&want).position(|(g, w)| g != w);
            eprintln!(
                "check: prefiltered hits DIVERGE from the unfiltered scan \
                 (first at query {q:?})"
            );
            exit(1);
        }
    }
}

fn serve(args: &[String]) {
    let db_path = opt(args, "--db").unwrap_or_else(|| {
        eprintln!("serve needs --db FILE (multi-record FASTA database)\n{USAGE}");
        exit(2);
    });
    let socket = opt(args, "--socket").unwrap_or_else(|| {
        eprintln!("serve needs --socket PATH (Unix socket to listen on)\n{USAGE}");
        exit(2);
    });
    let mut config = genomedsm::serve::ServerConfig::new(&socket, &db_path);
    config.queue_capacity = opt_num(args, "--queue", 16);
    config.cache_capacity = opt_num(args, "--cache", 1024);
    config.workers = opt_num(args, "--service-workers", 2);
    config.engine = batch_config(args, 5);
    let server = genomedsm::serve::Server::start(config).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1);
    });
    let stats = server.stats();
    eprintln!(
        "serving {} records (epoch {}) on {socket} — queue {}, cache enabled, \
         awaiting clients (send --shutdown to stop)",
        stats.records, stats.epoch, stats.capacity
    );
    let end = server.wait();
    println!(
        "served {} request(s) ({} rejected, {} protocol error(s)), \
         cache {} hit(s) / {} miss(es), final epoch {}",
        end.dispatched,
        end.rejected,
        end.protocol_errors,
        end.cache_hits,
        end.cache_misses,
        end.epoch
    );
}

fn client(args: &[String]) {
    let socket = opt(args, "--socket").unwrap_or_else(|| {
        eprintln!("client needs --socket PATH (a running `genomedsm serve`)\n{USAGE}");
        exit(2);
    });
    let mut client = genomedsm::serve::ServeClient::connect(&socket).unwrap_or_else(|e| {
        eprintln!("cannot connect: {e}");
        exit(1);
    });
    let name = opt(args, "--name").unwrap_or_else(|| format!("cli-{}", std::process::id()));
    let weight: u32 = opt_num(args, "--weight", 1);
    let (epoch, records) = client.hello(&name, weight).unwrap_or_else(|e| {
        eprintln!("handshake failed: {e}");
        exit(1);
    });
    eprintln!("connected to {socket}: {records} records, epoch {epoch}");

    if let Some(q_path) = opt(args, "--queries") {
        // Protein mode sends the full scoring scheme with the request
        // (matrix + gaps); the server caches under its fingerprint.
        let scoring = match opt_mode(args) {
            genomedsm::batch::ScoreMode::Protein(ms) => Some(ms),
            genomedsm::batch::ScoreMode::Dna => None,
        };
        let queries = if scoring.is_some() {
            genomedsm::batch::load_protein_query_file(&q_path)
        } else {
            genomedsm::batch::load_query_file(&q_path)
        }
        .unwrap_or_else(|e| {
            eprintln!("cannot load queries: {e}");
            exit(1);
        });
        let top_k: usize = opt_num(args, "--top-k", 5);
        let t0 = std::time::Instant::now();
        let result = client.search_scored(&queries, top_k, scoring, |qh| {
            println!(
                "query {} ({}): {} hit(s){}",
                qh.query,
                if qh.cached { "cached" } else { "computed" },
                qh.hits.len(),
                if qh.epoch != epoch {
                    format!(" [epoch {}]", qh.epoch)
                } else {
                    String::new()
                }
            );
            for h in &qh.hits {
                println!(
                    "  score {:>6}  target {}  end (q={}, t={})",
                    h.score, h.target, h.end.0, h.end.1
                );
            }
        });
        match result {
            Ok(summary) => {
                let cached = summary.answers.iter().filter(|a| a.cached).count();
                println!(
                    "\n{} answer(s) in {:.2?} ({cached} from cache)",
                    summary.answers.len(),
                    t0.elapsed()
                );
            }
            Err(genomedsm::serve::ServeError::Overloaded { depth, limit }) => {
                eprintln!("server overloaded (queue {depth}/{limit}); retry later");
                exit(3);
            }
            Err(e) => {
                eprintln!("search failed: {e}");
                exit(1);
            }
        }
    } else if let Some(path) = opt(args, "--reload") {
        match client.reload(&path) {
            Ok((epoch, records, purged)) => println!(
                "reloaded: epoch {epoch}, {records} records, {purged} stale cache entr(ies) purged"
            ),
            Err(e) => {
                eprintln!("reload failed: {e}");
                exit(1);
            }
        }
    } else if has_flag(args, "--stats") {
        match client.stats() {
            Ok(s) => {
                println!(
                    "epoch {} | {} records | queue {}/{} (high water {}) | \
                     {} submitted, {} rejected, {} dispatched | cache {} hit(s), \
                     {} miss(es), {} resident-insert(s), {} evicted, {} stale purged | \
                     {} protocol error(s)",
                    s.epoch,
                    s.records,
                    s.depth,
                    s.capacity,
                    s.high_water,
                    s.submitted,
                    s.rejected,
                    s.dispatched,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_inserts,
                    s.cache_evicted,
                    s.cache_stale_purged,
                    s.protocol_errors
                );
                for c in &s.clients {
                    println!(
                        "  client {:<16} weight {} | {} submitted, {} rejected, \
                         {} dispatched, {} unit(s) served",
                        c.client, c.weight, c.submitted, c.rejected, c.dispatched, c.served_units
                    );
                }
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                exit(1);
            }
        }
    } else if has_flag(args, "--shutdown") {
        match client.shutdown() {
            Ok(()) => println!("server acknowledged shutdown"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                exit(1);
            }
        }
    } else {
        eprintln!("client needs one of --queries, --reload, --stats, --shutdown\n{USAGE}");
        exit(2);
    }
}

/// Shared workload flags of `node` and `launch`.
fn workload_spec(args: &[String], procs: usize) -> genomedsm::cluster::WorkloadSpec {
    let mut spec = genomedsm::cluster::WorkloadSpec::quick(procs);
    spec.len = opt_num(args, "--len", spec.len);
    spec.seed = opt_num(args, "--seed", spec.seed);
    spec.plan = opt(args, "--plan");
    spec
}

fn node(args: &[String]) {
    let rank: usize = match opt(args, "--rank") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid --rank '{v}'");
            exit(2);
        }),
        None => {
            eprintln!("node needs --rank R\n{USAGE}");
            exit(2);
        }
    };
    // `load` prefers the GENOMEDSM_CLUSTER environment variable, so the
    // flag is optional when the launcher exports the manifest instead.
    let cluster_file = opt(args, "--cluster").unwrap_or_default();
    if cluster_file.is_empty() && std::env::var(genomedsm::dsm::CLUSTER_ENV).is_err() {
        eprintln!(
            "node needs --cluster FILE (or ${})\n{USAGE}",
            genomedsm::dsm::CLUSTER_ENV
        );
        exit(2);
    }
    let manifest = genomedsm::dsm::ClusterManifest::load(&cluster_file).unwrap_or_else(|e| {
        eprintln!("cannot load cluster manifest '{cluster_file}': {e}");
        exit(1);
    });
    let session: u64 = opt_num(args, "--session", 0);
    let spec = workload_spec(args, opt_num(args, "--procs", manifest.len()));
    if let Err(e) = manifest.expect_ranks(spec.procs) {
        eprintln!("{e}");
        exit(2);
    }
    let t0 = std::time::Instant::now();
    let outcome = genomedsm::cluster::run_workload(&spec, Some((&manifest, rank, session)))
        .unwrap_or_else(|e| {
            eprintln!("rank {rank} failed: {e}");
            exit(1);
        });
    print!("{}", outcome.report);
    eprint!(
        "{}",
        genomedsm::cluster::render_metrics(rank, &outcome.metrics)
    );
    eprintln!("rank {rank} finished in {:.2?}", t0.elapsed());
}

fn launch(args: &[String]) {
    let ranks: usize = opt_num(args, "--ranks", 4);
    let cluster = opt(args, "--cluster").unwrap_or_else(|| "loopback".into());
    if cluster != "loopback" {
        eprintln!("launch only supports --cluster loopback (ephemeral local ports)");
        exit(2);
    }
    let session: u64 = opt_num(args, "--session", 100);
    let spec = workload_spec(args, ranks);
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own executable: {e}");
        exit(1);
    });
    eprintln!(
        "launching {ranks} `genomedsm node` processes over loopback UDP \
         ({} bp workload{})...",
        spec.len,
        spec.plan
            .as_deref()
            .map(|p| format!(", chaos plan '{p}'"))
            .unwrap_or_default()
    );
    let t0 = std::time::Instant::now();
    match genomedsm::cluster::launch(&exe, &spec, session) {
        Ok(out) => {
            print!("{}", out.report);
            println!(
                "launch: {ranks} processes, reports BIT-IDENTICAL to the in-process run \
                 ({} datagrams, {} retransmits, {:.2?})",
                out.datagrams_sent,
                out.retransmits,
                t0.elapsed()
            );
        }
        Err(e) => {
            eprintln!("launch failed: {e}");
            exit(1);
        }
    }
}

fn exact(args: &[String]) {
    let (s, t) = load_pair(args);
    let min_score: i32 = opt_num(args, "--min-score", 50);
    let threads: usize = opt_num(args, "--threads", 4);
    eprintln!(
        "exact Section-6 recovery over {} bp x {} bp (min score {min_score})...",
        s.len(),
        t.len()
    );
    let recs = reverse_align_all_parallel(&s, &t, &Scoring::paper(), min_score, threads);
    println!("{} exact local alignments:", recs.len());
    for rec in recs.iter().take(5) {
        println!(
            "\n{} (evaluated {:.0}% of the n'^2 window)",
            rec.region,
            rec.stats.evaluated_fraction() * 100.0
        );
        print!("{}", rec.alignment.pretty(64));
    }
    if recs.len() > 5 {
        println!("... {} more", recs.len() - 5);
    }
}
