//! # GenomeDSM-RS
//!
//! A reproduction of *"Parallel Strategies for the Local Biological
//! Sequence Alignment in a Cluster of Workstations"* (Boukerche, de Melo,
//! Ayala-Rincón, Walter): three parallel strategies for running the
//! Smith–Waterman local-alignment algorithm over a JIAJIA-like software
//! Distributed Shared Memory system, simulated in-process on threads.
//!
//! This facade crate re-exports the public API of every workspace member:
//!
//! * [`core`] — alignment kernels (SW, NW, Hirschberg, the Martins
//!   candidate heuristic, the Section-6 reverse space reduction).
//! * [`dsm`] — the page-based software DSM substrate (scope consistency,
//!   home-based write-invalidate multiple-writer protocol, locks,
//!   condition variables, barriers).
//! * [`kernels`] — vectorized Smith–Waterman score kernels: Farrar
//!   striped layout, SSE2/AVX2 with runtime ISA dispatch, scalar oracle.
//! * [`seq`] — DNA sequence generation with planted homologous regions,
//!   mutation models, and FASTA I/O.
//! * [`blast`] — a BlastN-like seed-and-extend baseline.
//! * [`chaos`] — deterministic fault injection for the DSM transport:
//!   seeded per-link drop/corrupt/duplicate/reorder plans and scheduled
//!   fail-stop node crashes.
//! * [`batch`] — the multi-query batch alignment engine: database search
//!   with inter-sequence lane packing (a different query per SIMD lane),
//!   a work-stealing scheduler with bounded in-flight batches, and
//!   deterministic per-query top-k merging. Scores DNA (linear gaps) or
//!   protein (affine Gotoh under a substitution matrix), optionally
//!   through the composition prefilter.
//! * [`index`] — the ALAE-style protein prefilter: per-record
//!   composition profiles and an exact score upper bound that prunes DP
//!   launches without ever changing the top-k.
//! * [`strategies`] — the paper's three parallel strategies plus the
//!   phase-2 scattered-mapping global aligner and shared-memory ports.
//! * [`serve`] — the always-on alignment service: the batch engine
//!   behind a checksummed line protocol on a Unix socket, with bounded
//!   admission control, per-client weighted fair scheduling, an
//!   epoch-keyed result cache, and hot-reloadable databases.
//! * [`dotplot`] — dot-plot visualization of similar regions.
//!
//! ## Quickstart
//!
//! ```
//! use genomedsm::prelude::*;
//!
//! // Two tiny sequences with a planted similar region.
//! let (s, t, _truth) = planted_pair(600, 600, &HomologyPlan::paper_density(6_000), 42);
//!
//! // Phase 1: find similar regions with the blocked heuristic strategy
//! // on a 4-node simulated DSM cluster.
//! let config = BlockedConfig::new(4, 4, 4);
//! let outcome = heuristic_block_align(
//!     &s, &t, &Scoring::paper(), &HeuristicParams::default_for_dna(), &config);
//! // Phase 2: retrieve actual alignments for the regions found.
//! let phase2 = phase2_scattered(&s, &t, &outcome.regions, &Scoring::paper(), 4).unwrap();
//! assert_eq!(phase2.alignments.len(), outcome.regions.len());
//! ```

#![warn(missing_docs)]

pub mod cluster;

pub use genomedsm_batch as batch;
pub use genomedsm_blast as blast;
pub use genomedsm_chaos as chaos;
pub use genomedsm_core as core;
pub use genomedsm_dotplot as dotplot;
pub use genomedsm_dsm as dsm;
pub use genomedsm_index as index;
pub use genomedsm_kernels as kernels;
pub use genomedsm_seq as seq;
pub use genomedsm_serve as serve;
pub use genomedsm_strategies as strategies;

/// Everything needed for the common pipeline in one import.
pub mod prelude {
    pub use genomedsm_batch::{BatchConfig, BatchEngine, SeqDatabase};
    pub use genomedsm_chaos::{FaultPlan, LinkFaults, SeededFaults};
    pub use genomedsm_core::{
        finalize_queue, heuristic_align, GlobalAlignment, HeuristicParams, LocalRegion, Scoring,
    };
    pub use genomedsm_kernels::{kernel_for, KernelChoice, ScoreKernel};
    pub use genomedsm_seq::{planted_pair, random_dna, DnaSeq, HomologyPlan};
    pub use genomedsm_strategies::{
        heuristic_align_dsm, heuristic_block_align, phase2_scattered, preprocess_align,
        BlockedConfig, HeuristicDsmConfig, PreprocessConfig,
    };
}
