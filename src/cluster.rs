//! Multi-process cluster driver: the fixed workload a `genomedsm node`
//! process runs, and the launcher that spawns one OS process per rank
//! and checks the results bit-for-bit against the in-process run.
//!
//! The workload is deterministic end to end: the sequence pair is
//! regenerated from `(len, seed)` in every process, all three phase-1
//! strategies and phase 2 run over it, and the report is built only
//! from *gathered* results (identical on every rank by construction of
//! [`genomedsm_dsm::DsmSystem::run_wire`]'s all-gather) — so every
//! process prints the same bytes, and those bytes equal what a plain
//! in-process simulation prints. Timings and transport counters differ
//! per rank and therefore go to the metrics channel (stderr), never the
//! report.

use genomedsm_chaos::{FaultPlan, SeededFaults};
use genomedsm_core::{HeuristicParams, Scoring};
use genomedsm_dsm::{ClusterCtx, ClusterManifest, DsmConfig, NetworkModel, NodeStats};
use genomedsm_seq::{planted_pair, HomologyPlan};
use genomedsm_strategies::{
    heuristic_align_dsm, heuristic_block_align, phase2_scattered_with, preprocess_align,
    BandScheme, BlockedConfig, ChunkPlan, HeuristicDsmConfig, PreprocessConfig,
};
use std::fmt::Write as _;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

/// What a `node` process computes: the sequence pair and cluster shape.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Length of each generated sequence (bp).
    pub len: usize,
    /// Seed for the planted-homology generator.
    pub seed: u64,
    /// Number of DSM nodes (= OS processes in a multi-process run).
    pub procs: usize,
    /// Optional chaos plan spec (see [`FaultPlan::parse`]) injected into
    /// the transport (link faults).
    pub plan: Option<String>,
}

impl WorkloadSpec {
    /// The default quick-run shape: big enough that every strategy finds
    /// regions, small enough for CI.
    pub fn quick(procs: usize) -> Self {
        WorkloadSpec {
            len: 1500,
            seed: 42,
            procs,
            plan: None,
        }
    }
}

/// One strategy's per-rank measurement, for the metrics channel.
#[derive(Debug, Clone)]
pub struct StrategyMetric {
    /// Strategy name (`heuristic`, `blocked`, `preprocess`, `phase2`).
    pub strategy: String,
    /// Cluster wall time (max node total).
    pub wall: Duration,
    /// This rank's own stats entry (transport counters live here in a
    /// multi-process run).
    pub local: NodeStats,
}

/// Everything a node run produces: the deterministic report (stdout)
/// plus per-strategy metrics (stderr / CSV).
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Bit-identical across ranks and vs the in-process run.
    pub report: String,
    /// Per-strategy measurements for this rank only.
    pub metrics: Vec<StrategyMetric>,
}

/// Renders the metrics as `#metric` stderr lines the launcher can strip
/// back out of a child's stderr.
pub fn render_metrics(rank: usize, metrics: &[StrategyMetric]) -> String {
    let mut out = String::new();
    for m in metrics {
        let _ = writeln!(
            out,
            "#metric strategy={} rank={rank} wall_us={} datagrams_sent={} \
             datagrams_received={} retransmits={} dups_dropped={} \
             measured_network_us={}",
            m.strategy,
            m.wall.as_micros(),
            m.local.datagrams_sent,
            m.local.datagrams_received,
            m.local.retransmits,
            m.local.dups_dropped,
            m.local.measured_network.as_micros(),
        );
    }
    out
}

/// Parses one `#metric` line back into `(key, value)` pairs.
pub fn parse_metric_line(line: &str) -> Option<Vec<(String, String)>> {
    let rest = line.strip_prefix("#metric ")?;
    Some(
        rest.split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

/// Session-number offsets for the four DSM runs inside one workload.
/// Distinct sessions fence the runs from each other's retransmitted
/// stragglers on the shared manifest.
const SESSIONS: [u64; 4] = [1, 2, 3, 4];

fn dsm_for(
    spec: &WorkloadSpec,
    cluster: Option<(&ClusterManifest, usize, u64)>,
    which: usize,
) -> Result<DsmConfig, String> {
    let mut config = DsmConfig::new(spec.procs);
    if let Some(text) = &spec.plan {
        let plan =
            FaultPlan::parse(text).map_err(|e| format!("invalid fault plan '{text}': {e}"))?;
        config = config.faults(Arc::new(SeededFaults::new(plan, spec.procs)) as _);
    }
    if let Some((manifest, rank, base)) = cluster {
        manifest
            .expect_ranks(spec.procs)
            .map_err(|e| e.to_string())?;
        let ctx = ClusterCtx::new(rank, manifest.clone(), base + SESSIONS[which])
            .map_err(|e| format!("invalid cluster context: {e}"))?;
        config = config.cluster(ctx);
    }
    Ok(config)
}

/// Runs the full workload — all three phase-1 strategies and phase 2 —
/// either in-process (`cluster` = `None`) or as one rank of a socket
/// cluster (`cluster` = manifest, own rank, session base).
///
/// # Errors
///
/// Returns a message if the cluster context is invalid or a strategy
/// fails (I/O, unaligned region).
pub fn run_workload(
    spec: &WorkloadSpec,
    cluster: Option<(&ClusterManifest, usize, u64)>,
) -> Result<NodeOutcome, String> {
    let scoring = Scoring::paper();
    let params = HeuristicParams {
        open_threshold: 8,
        close_threshold: 8,
        min_score: 15,
    };
    let (s, t, _) = planted_pair(
        spec.len,
        spec.len,
        &HomologyPlan::paper_density(spec.len * 8),
        spec.seed,
    );
    let (s, t) = (s.into_bytes(), t.into_bytes());
    let rank = cluster.map_or(0, |(_, r, _)| r);
    let mut report = String::new();
    let mut metrics = Vec::new();

    // Strategy 1: per-cell heuristic.
    let mut config = HeuristicDsmConfig::new(spec.procs);
    config.dsm = dsm_for(spec, cluster, 0)?;
    let h = heuristic_align_dsm(&s, &t, &scoring, &params, &config);
    let _ = writeln!(report, "heuristic: {} regions", h.regions.len());
    for r in h.regions.iter().take(5) {
        let _ = writeln!(report, "  {r}");
    }
    metrics.push(StrategyMetric {
        strategy: "heuristic".into(),
        wall: h.wall,
        local: h.per_node[rank].clone(),
    });

    // Strategy 2: blocked heuristic.
    let mut config = BlockedConfig::new(spec.procs, 8, 8);
    config.dsm = dsm_for(spec, cluster, 1)?;
    let b = heuristic_block_align(&s, &t, &scoring, &params, &config);
    let _ = writeln!(report, "blocked: {} regions", b.regions.len());
    for r in b.regions.iter().take(5) {
        let _ = writeln!(report, "  {r}");
    }
    metrics.push(StrategyMetric {
        strategy: "blocked".into(),
        wall: b.wall,
        local: b.per_node[rank].clone(),
    });

    // Strategy 3: exact pre-process (no I/O in the fixed workload).
    let mut config = PreprocessConfig::new(spec.procs);
    config.band = BandScheme::Balanced(256.min(spec.len.max(1)));
    config.chunk = ChunkPlan::Fixed(256.min(spec.len.max(1)));
    config.threshold = params.min_score;
    config.dsm = dsm_for(spec, cluster, 2)?;
    let p = preprocess_align(&s, &t, &scoring, &config).map_err(|e| format!("preprocess: {e}"))?;
    let _ = writeln!(
        report,
        "preprocess: best score {}, {} threshold hits",
        p.best_score,
        p.total_hits()
    );
    metrics.push(StrategyMetric {
        strategy: "preprocess".into(),
        wall: p.wall,
        local: p.per_node[rank].clone(),
    });

    // Phase 2: global alignment of the blocked strategy's regions.
    let p2_config = dsm_for(spec, cluster, 3)?.network(NetworkModel::paper_cluster());
    let p2 = phase2_scattered_with(&s, &t, &b.regions, &scoring, &p2_config)
        .map_err(|e| format!("phase 2: {e}"))?;
    let total: i64 = p2
        .alignments
        .iter()
        .map(|ra| ra.alignment.score as i64)
        .sum();
    let best = p2
        .alignments
        .iter()
        .map(|ra| ra.alignment.score)
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        report,
        "phase2: {} alignments, total score {total}, best {best}",
        p2.alignments.len()
    );
    metrics.push(StrategyMetric {
        strategy: "phase2".into(),
        wall: p2.wall,
        local: p2.per_node[rank].clone(),
    });

    Ok(NodeOutcome { report, metrics })
}

/// What [`launch`] observed across the whole process fleet.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// The (identical) report every process printed.
    pub report: String,
    /// `#metric` lines collected from every child's stderr.
    pub metric_lines: Vec<String>,
    /// Summed transport datagrams sent across ranks and strategies.
    pub datagrams_sent: u64,
    /// Summed retransmissions across ranks and strategies.
    pub retransmits: u64,
}

/// Reserves `n` loopback ports by binding ephemeral sockets, then frees
/// them for the child processes to rebind.
///
/// # Errors
///
/// Returns a message when the loopback interface refuses a bind.
pub fn ephemeral_manifest(n: usize) -> Result<ClusterManifest, String> {
    let mut holds = Vec::with_capacity(n);
    for _ in 0..n {
        holds.push(
            std::net::UdpSocket::bind("127.0.0.1:0")
                .map_err(|e| format!("cannot bind loopback socket: {e}"))?,
        );
    }
    let mut nodes = Vec::with_capacity(n);
    for s in &holds {
        nodes.push(s.local_addr().map_err(|e| format!("local addr: {e}"))?);
    }
    Ok(ClusterManifest::new(nodes))
}

/// Spawns `spec.procs` copies of `exe` (`genomedsm node --rank R ...`)
/// on a fresh loopback manifest, waits for them, and asserts that every
/// process printed bit-identical output equal to the in-process run of
/// the same workload **without** faults (chaos must be invisible in the
/// results).
///
/// # Errors
///
/// Returns a message if a child fails to spawn, exits non-zero, or any
/// output diverges.
pub fn launch(exe: &Path, spec: &WorkloadSpec, session_base: u64) -> Result<LaunchOutcome, String> {
    let manifest = ephemeral_manifest(spec.procs)?;
    let dir = std::env::temp_dir();
    let manifest_path = dir.join(format!(
        "genomedsm-cluster-{}-{session_base}.toml",
        std::process::id()
    ));
    std::fs::write(&manifest_path, manifest.to_toml())
        .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;

    let mut children = Vec::new();
    for rank in 0..spec.procs {
        let mut cmd = Command::new(exe);
        cmd.arg("node")
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--cluster")
            .arg(&manifest_path)
            .arg("--session")
            .arg(session_base.to_string())
            .arg("--len")
            .arg(spec.len.to_string())
            .arg("--seed")
            .arg(spec.seed.to_string())
            .arg("--procs")
            .arg(spec.procs.to_string())
            // The manifest env var must not leak into children.
            .env_remove(genomedsm_dsm::CLUSTER_ENV)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(plan) = &spec.plan {
            cmd.arg("--plan").arg(plan);
        }
        children.push(
            cmd.spawn()
                .map_err(|e| format!("cannot spawn rank {rank}: {e}"))?,
        );
    }

    let mut outputs = Vec::new();
    let mut failures = Vec::new();
    for (rank, child) in children.into_iter().enumerate() {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("rank {rank} did not finish: {e}"))?;
        if !out.status.success() {
            failures.push(format!(
                "rank {rank} exited with {}: {}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        outputs.push(out);
    }
    let _ = std::fs::remove_file(&manifest_path);
    if let Some(first) = failures.first() {
        return Err(first.clone());
    }

    let stdouts: Vec<String> = outputs
        .iter()
        .map(|o| String::from_utf8_lossy(&o.stdout).into_owned())
        .collect();
    for (rank, s) in stdouts.iter().enumerate().skip(1) {
        if s != &stdouts[0] {
            return Err(format!(
                "rank {rank}'s report diverges from rank 0's:\n--- rank 0\n{}\n--- rank {rank}\n{s}",
                stdouts[0]
            ));
        }
    }

    // The clean in-process simulation is the reference: the socket runs
    // (chaotic or not) must reproduce it bit for bit.
    let reference = run_workload(
        &WorkloadSpec {
            plan: None,
            ..spec.clone()
        },
        None,
    )?;
    if stdouts[0] != reference.report {
        return Err(format!(
            "multi-process report diverges from the in-process run:\n--- in-process\n{}\n--- sockets\n{}",
            reference.report, stdouts[0]
        ));
    }

    let mut metric_lines = Vec::new();
    let mut datagrams_sent = 0u64;
    let mut retransmits = 0u64;
    for out in &outputs {
        for line in String::from_utf8_lossy(&out.stderr).lines() {
            if let Some(kvs) = parse_metric_line(line) {
                for (k, v) in &kvs {
                    let add = v.parse::<u64>().unwrap_or(0);
                    match k.as_str() {
                        "datagrams_sent" => datagrams_sent += add,
                        "retransmits" => retransmits += add,
                        _ => {}
                    }
                }
                metric_lines.push(line.to_string());
            }
        }
    }

    Ok(LaunchOutcome {
        report: stdouts[0].clone(),
        metric_lines,
        datagrams_sent,
        retransmits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_lines_roundtrip() {
        let metrics = vec![StrategyMetric {
            strategy: "blocked".into(),
            wall: Duration::from_micros(1234),
            local: NodeStats {
                datagrams_sent: 7,
                retransmits: 2,
                ..NodeStats::default()
            },
        }];
        let text = render_metrics(3, &metrics);
        let kvs = parse_metric_line(text.trim()).expect("metric line");
        let get = |k: &str| kvs.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        assert_eq!(get("strategy"), Some("blocked"));
        assert_eq!(get("rank"), Some("3"));
        assert_eq!(get("wall_us"), Some("1234"));
        assert_eq!(get("datagrams_sent"), Some("7"));
        assert_eq!(get("retransmits"), Some("2"));
    }

    #[test]
    fn non_metric_lines_are_ignored() {
        assert!(parse_metric_line("plain stderr noise").is_none());
        assert!(parse_metric_line("#metrical but wrong prefix").is_none());
    }
}
