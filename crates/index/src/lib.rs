//! ALAE-style exact-upper-bound prefilter for protein database search.
//!
//! Before running any dynamic programming, a database scan can discard
//! records that provably cannot reach a score of interest. This crate
//! computes, from per-record *composition counts* alone (no positional
//! information), an upper bound on the best local affine-gap alignment
//! score between a query and a record. The bound is **exact** in the
//! soundness direction: it is never below the true Smith–Waterman/Gotoh
//! score, so pruning on it can never drop a record that belongs in the
//! final result set. That is the property the batch driver's top-k search
//! relies on and the property the tests here pin.
//!
//! # The bound
//!
//! A local alignment's score is a sum over its aligned residue pairs
//! `(a, b)` of `s(a, b)`, plus gap penalties. Gap penalties are negative
//! (admission requires it), so dropping them only raises the value. The
//! alignment uses each query residue at most once and each target residue
//! at most once, hence at most `min(m, L)` pairs. Two relaxations follow:
//!
//! * **Query side.** Pair `(a, b)` contributes at most
//!   `cap_q(a) = max(0, max_b s(a, b))`. Flooring at zero lets us ignore
//!   how many pairs the alignment actually uses: taking the `min(m, L)`
//!   largest caps over the query's residues (a sorted prefix sum,
//!   precomputed once per query) bounds every alignment.
//! * **Target side.** Symmetrically, `(a, b)` contributes at most
//!   `cap_t(b) = max(0, max_{a ∈ query} s(a, b))` — the max ranges only
//!   over residues the query actually contains. With the record's
//!   composition counts, the greedy assignment (take target residues in
//!   decreasing `cap_t` order, up to `min(m, L)` of them) dominates every
//!   real alignment's target-residue usage.
//!
//! Both are upper bounds on the true score (each dominates the pair sum,
//! and the pair sum dominates the score once the non-positive gap terms
//! are dropped); the prefilter uses their minimum. Records whose bound
//! falls below the current requirement — a fixed threshold, or the k-th
//! best score so far in a top-k scan — are pruned without touching the DP
//! kernels.
//!
//! The index stores `24 × u32` counts plus a length per record
//! (~100 bytes), and evaluating the bound is a 24-step loop — orders of
//! magnitude cheaper than the `O(m·L)` DP it replaces, which is the point
//! of the ALAE-style filter cascade this reproduces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use genomedsm_core::submat::{aa_index, MatrixScoring, AA_N};

/// Composition summary of one database record: how many of each alphabet
/// letter it contains, and its total length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordProfile {
    /// Residue counts in [`genomedsm_core::submat::AA_ALPHABET`] order.
    /// Bytes outside the alphabet fold to `X`, matching how the scoring
    /// kernels index the matrix — profile and DP always see the same
    /// residue classes.
    pub counts: [u32; AA_N],
    /// Record length in residues (the sum of `counts`).
    pub len: usize,
}

impl RecordProfile {
    /// Profiles one record's residue bytes.
    pub fn of(seq: &[u8]) -> Self {
        let mut counts = [0u32; AA_N];
        for &b in seq {
            counts[aa_index(b)] += 1;
        }
        Self {
            counts,
            len: seq.len(),
        }
    }
}

/// Composition profiles for a whole database, in record order.
///
/// Building the index is a single pass over the database and is
/// independent of any query or scoring scheme; one index serves every
/// search against the database.
#[derive(Debug, Clone, Default)]
pub struct ProteinIndex {
    profiles: Vec<RecordProfile>,
}

impl ProteinIndex {
    /// Builds an index over a database given as residue byte slices.
    pub fn build<'a>(records: impl IntoIterator<Item = &'a [u8]>) -> Self {
        Self {
            profiles: records.into_iter().map(RecordProfile::of).collect(),
        }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The composition profile of record `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn profile(&self, i: usize) -> &RecordProfile {
        &self.profiles[i]
    }

    /// All profiles, in record order.
    pub fn profiles(&self) -> &[RecordProfile] {
        &self.profiles
    }

    /// Upper bounds for every record under `qb`, in record order.
    pub fn bounds(&self, qb: &QueryBound) -> Vec<i64> {
        self.profiles.iter().map(|p| qb.bound(p)).collect()
    }

    /// Record indices in the scan order the top-k driver wants: bound
    /// descending, ties by ascending record index. Scanning high-bound
    /// records first fills the top-k with large scores early, which makes
    /// the `bound < k-th score` prune fire as soon as possible.
    pub fn scan_order(&self, qb: &QueryBound) -> Vec<(usize, i64)> {
        let mut order: Vec<(usize, i64)> = self
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (i, qb.bound(p)))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        order
    }
}

/// Per-query precomputation for the composition bound: the sorted-cap
/// prefix sums for the query side and the per-letter caps for the target
/// side. Build once per `(query, scoring)` pair, then evaluate against any
/// number of record profiles.
#[derive(Debug, Clone)]
pub struct QueryBound {
    /// `prefix[k]` = sum of the `k` largest query-residue caps; length
    /// `m + 1` with `prefix[0] = 0`.
    prefix: Vec<i64>,
    /// `cap_t[bi]` = best score any *query* residue attains against
    /// alphabet letter `bi`, floored at zero.
    cap_t: [i64; AA_N],
    /// Query length in residues.
    m: usize,
}

impl QueryBound {
    /// Precomputes the bound machinery for `query` under `scoring`.
    pub fn new(query: &[u8], scoring: &MatrixScoring) -> Self {
        let matrix = &scoring.matrix;
        // Which alphabet letters the query contains, and each query
        // residue's own cap.
        let mut present = [false; AA_N];
        let mut caps: Vec<i64> = Vec::with_capacity(query.len());
        for &a in query {
            let ai = aa_index(a);
            present[ai] = true;
            let mut best = 0i64;
            for bi in 0..AA_N {
                best = best.max(i64::from(matrix.score_at(ai, bi)));
            }
            caps.push(best);
        }
        caps.sort_unstable_by(|a, b| b.cmp(a));
        let mut prefix = Vec::with_capacity(caps.len() + 1);
        prefix.push(0i64);
        let mut acc = 0i64;
        for &c in &caps {
            acc += c;
            prefix.push(acc);
        }
        let mut cap_t = [0i64; AA_N];
        for (bi, cap) in cap_t.iter_mut().enumerate() {
            for (ai, _) in present.iter().enumerate().filter(|(_, &p)| p) {
                *cap = (*cap).max(i64::from(matrix.score_at(ai, bi)));
            }
        }
        Self {
            prefix,
            cap_t,
            m: query.len(),
        }
    }

    /// Query length this bound was built for.
    pub fn query_len(&self) -> usize {
        self.m
    }

    /// Exact upper bound on the Gotoh local-alignment score between the
    /// query and any record with composition `profile`. Never below the
    /// true score; `0` means the record cannot produce any positive-scoring
    /// alignment at all.
    pub fn bound(&self, profile: &RecordProfile) -> i64 {
        let pairs = self.m.min(profile.len);
        let query_side = self.prefix[pairs];
        // Greedy target side: spend the pair budget on the letters with the
        // largest caps first. Letters are visited in decreasing cap order
        // via a tiny selection over the 24 fixed slots.
        let mut order: [usize; AA_N] = [0; AA_N];
        for (i, o) in order.iter_mut().enumerate() {
            *o = i;
        }
        order.sort_unstable_by(|&a, &b| self.cap_t[b].cmp(&self.cap_t[a]));
        let mut budget = pairs as i64;
        let mut target_side = 0i64;
        for &bi in &order {
            if budget == 0 || self.cap_t[bi] <= 0 {
                break; // remaining caps are non-positive: using them never helps
            }
            let take = i64::from(profile.counts[bi]).min(budget);
            target_side += take * self.cap_t[bi];
            budget -= take;
        }
        query_side.min(target_side)
    }
}

/// Counters a prefilter-driven scan accumulates, for reporting pruning
/// effectiveness in benchmarks and stats lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Records whose bound was evaluated.
    pub evaluated: usize,
    /// Records discarded without any DP.
    pub pruned: usize,
    /// Records that went through the full scoring path.
    pub scored: usize,
}

impl PrefilterStats {
    /// Fraction of evaluated records that were pruned (0 when none were
    /// evaluated).
    pub fn pruning_rate(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.pruned as f64 / self.evaluated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::submat::SubstMatrix;
    use genomedsm_core::sw_score_profile;
    use genomedsm_seq::random_protein;
    use proptest::prelude::*;

    fn aa_seq(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(genomedsm_core::AA_ALPHABET.to_vec()),
            0..max,
        )
    }

    /// A random symmetric matrix (positive diagonal) and valid penalties,
    /// mirroring the kernels' property-suite generator.
    fn random_scheme(seed: u64) -> MatrixScoring {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut scores = [[0i16; AA_N]; AA_N];
        #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
        for a in 0..AA_N {
            for b in a..AA_N {
                let v = if a == b {
                    1 + (next() % 10) as i16
                } else {
                    -6 + (next() % 13) as i16
                };
                scores[a][b] = v;
                scores[b][a] = v;
            }
        }
        let ge = -(1 + (next() % 4) as i32);
        let go = ge - (next() % 12) as i32;
        MatrixScoring::new(SubstMatrix::from_scores(scores), go, ge)
    }

    fn check_sound(q: &[u8], t: &[u8], ms: &MatrixScoring) {
        let qb = QueryBound::new(q, ms);
        let bound = qb.bound(&RecordProfile::of(t));
        let truth = i64::from(sw_score_profile(q, t, ms, 0).best_score);
        assert!(
            bound >= truth,
            "bound {bound} < true score {truth} (|q|={} |t|={})",
            q.len(),
            t.len()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bound_is_never_below_the_true_score_blosum62(q in aa_seq(60), t in aa_seq(60)) {
            check_sound(&q, &t, &MatrixScoring::blosum62());
        }

        #[test]
        fn bound_is_never_below_the_true_score_pam250(q in aa_seq(50), t in aa_seq(50)) {
            check_sound(&q, &t, &MatrixScoring::new(SubstMatrix::pam250(), -10, -2));
        }

        #[test]
        fn bound_is_never_below_the_true_score_random_matrix(
            q in aa_seq(40), t in aa_seq(40), seed in 0u64..u64::MAX
        ) {
            check_sound(&q, &t, &random_scheme(seed));
        }
    }

    #[test]
    fn identical_sequences_bound_tightly_from_the_query_side() {
        // Against itself, every residue can pair with itself, so the
        // query-side bound equals the sum of per-residue maxima — at most
        // a constant factor above the true self-score, never below it.
        let ms = MatrixScoring::blosum62();
        let q = random_protein(200, 3);
        let qb = QueryBound::new(&q, &ms);
        let bound = qb.bound(&RecordProfile::of(&q));
        let truth = i64::from(sw_score_profile(&q, &q, &ms, 0).best_score);
        assert!(bound >= truth);
        assert!(bound <= truth * 3, "bound {bound} vs truth {truth}");
    }

    #[test]
    fn disjoint_composition_bounds_to_zero() {
        // A poly-W query against a poly-P record: W/P scores -4 in
        // BLOSUM62, so no positive pair exists and the target side must
        // collapse the bound to 0.
        let ms = MatrixScoring::blosum62();
        let qb = QueryBound::new(&[b'W'; 30], &ms);
        assert_eq!(qb.bound(&RecordProfile::of(&[b'P'; 30])), 0);
        // The true score agrees.
        let truth = sw_score_profile(&[b'W'; 30], &[b'P'; 30], &ms, 0).best_score;
        assert_eq!(truth, 0);
    }

    #[test]
    fn short_record_limits_the_pair_budget() {
        // min(m, L) caps the bound: a 3-residue record can contribute at
        // most 3 pairs no matter how long the query is.
        let ms = MatrixScoring::blosum62();
        let q = vec![b'W'; 100];
        let qb = QueryBound::new(&q, &ms);
        let b3 = qb.bound(&RecordProfile::of(b"WWW"));
        assert_eq!(b3, 3 * 11); // W/W = 11, three pairs max
    }

    #[test]
    fn empty_query_or_record_bounds_to_zero() {
        let ms = MatrixScoring::blosum62();
        let qb = QueryBound::new(b"", &ms);
        assert_eq!(qb.bound(&RecordProfile::of(b"WCEW")), 0);
        let qb = QueryBound::new(b"WCEW", &ms);
        assert_eq!(qb.bound(&RecordProfile::of(b"")), 0);
    }

    #[test]
    fn scan_order_is_bound_desc_then_index_asc() {
        let ms = MatrixScoring::blosum62();
        let q = random_protein(50, 7);
        let db: Vec<Vec<u8>> = vec![
            random_protein(40, 1).into_bytes(),
            q.as_bytes().to_vec(), // exact copy: highest bound
            random_protein(40, 2).into_bytes(),
            q.as_bytes().to_vec(), // duplicate copy: same bound, later index
            vec![b'P'; 10],
        ];
        let index = ProteinIndex::build(db.iter().map(Vec::as_slice));
        let qb = QueryBound::new(&q, &ms);
        let order = index.scan_order(&qb);
        assert_eq!(order.len(), 5);
        // The two copies lead, in index order.
        assert_eq!(order[0].0, 1);
        assert_eq!(order[1].0, 3);
        assert_eq!(order[0].1, order[1].1);
        // Bounds are non-increasing down the scan.
        for w in order.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn index_profiles_fold_unknown_bytes_like_the_kernels() {
        let p = RecordProfile::of(b"W?w");
        // '?' folds to X (index 22); 'w' folds to W.
        assert_eq!(p.counts[aa_index(b'W')], 2);
        assert_eq!(p.counts[22], 1);
        assert_eq!(p.len, 3);
    }

    #[test]
    fn pruning_rate_math() {
        let s = PrefilterStats {
            evaluated: 10,
            pruned: 4,
            scored: 6,
        };
        assert!((s.pruning_rate() - 0.4).abs() < 1e-12);
        assert_eq!(PrefilterStats::default().pruning_rate(), 0.0);
    }
}
