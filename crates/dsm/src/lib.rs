//! A JIAJIA-like page-based software Distributed Shared Memory system,
//! simulated in-process (§3 of the paper).
//!
//! The paper runs its three strategies on JIAJIA v2.1: a page-based DSM
//! implementing the *Scope Consistency* memory model with a *home-based
//! write-invalidate multiple-writer* protocol. This crate reimplements
//! that protocol faithfully at the message level:
//!
//! * the global address space is split into fixed-size **pages**, each with
//!   a **home node** (NUMA-style distribution, §3.1);
//! * a page is always present at its home and copied to remote nodes on an
//!   access fault; remote copies are cached with a capacity limit and a
//!   replacement algorithm;
//! * writers make a **twin** of a page before modifying it; on a release
//!   access (unlock / barrier / condition-variable signal) the writer
//!   diffs the page against the twin and sends the **DIFF** to the home,
//!   which applies it and acknowledges (**DIFFGRANT**) — multiple writers
//!   of disjoint parts of a page merge cleanly;
//! * **write notices** (page numbers modified in the interval) ride on the
//!   lock-release / cv-signal / barrier messages to the manager; the next
//!   acquirer **invalidates** the noticed pages (Fig. 6's flow);
//! * locks and condition variables are distributed across **manager**
//!   nodes (`id mod nprocs`); the barrier manager is node 0.
//!
//! ## Substitutions vs. the real JIAJIA (documented in DESIGN.md)
//!
//! * Cluster nodes are OS **threads**; messages travel over channels, with
//!   a configurable [`NetworkModel`] accounting (and optionally really
//!   sleeping) per-message latency + bandwidth cost.
//! * SIGSEGV-driven page faults are replaced by an explicit access API
//!   ([`Node::read`]/[`Node::write`] and [`GlobalVec`]); the page state
//!   machine and the protocol messages are the same.
//! * The home node accesses its own pages through the same cache path
//!   (diffs to self cost zero network) — uniform code, identical message
//!   semantics.
//!
//! ## Example
//!
//! ```
//! use genomedsm_dsm::{DsmConfig, DsmSystem};
//!
//! let run = DsmSystem::run(DsmConfig::new(4), |node| {
//!     // SPMD: every node executes this closure; allocations are
//!     // collective and must happen in the same order on every node.
//!     let counter = node.alloc_vec::<i64>(1);
//!     node.barrier();
//!     node.lock(0);
//!     let v = node.vec_get(&counter, 0);
//!     node.vec_set(&counter, 0, v + 1);
//!     node.unlock(0);
//!     node.barrier();
//!     node.vec_get(&counter, 0)
//! });
//! assert!(run.results.iter().all(|&v| v == 4));
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod daemon;
pub mod error;
pub mod lock_order;
pub mod msg;
pub mod net;
pub mod node;
pub mod page;
pub mod stats;
pub mod system;
pub mod transport;
pub mod vec;

pub use codec::{FrameReader, FrameWriter};
pub use config::{DsmConfig, SupervisionConfig};
pub use error::DsmError;
pub use lock_order::{
    LockOrderEdge, LockOrderGraph, LockOrderMode, LockOrderViolation, LOCK_ORDER_ENABLED,
};
pub use net::{
    FaultInjector, LinkMsg, NetworkModel, RetransmitPolicy, ScheduleOnly, TransmitFate,
    CHAN_DAEMON, CHAN_REPLY, CHAN_REQ,
};
pub use node::Node;
pub use stats::{breakdown_many, DaemonStats, NodeStats, StatsBreakdown};
pub use system::{DsmRun, DsmSystem};
pub use transport::clock::Clock;
pub use transport::manifest::{ClusterCtx, ClusterManifest, CLUSTER_ENV};
pub use transport::udp::UdpTransport;
pub use transport::wire::{decode_frame, encode_frame, Wire};
pub use transport::{ChannelTransport, RankWiring, Transport, TransportStats};
pub use vec::{DsmData, GlobalVec};
