//! Typed views over the global address space.
//!
//! DSM pages are raw bytes; [`DsmData`] defines a fixed-size, portable
//! little-endian encoding so typed values can be stored in shared memory
//! without `unsafe` transmutes. [`GlobalVec`] is a typed array handle —
//! the moral equivalent of a pointer returned by `jia_alloc`.

use std::marker::PhantomData;

/// A fixed-size, byte-encodable value that can live in DSM pages.
///
/// Implementations must be self-consistent: `load(store(x)) == x`.
pub trait DsmData: Sized {
    /// Encoded length in bytes.
    const LEN: usize;

    /// Writes the value into `buf[..Self::LEN]`.
    fn store(&self, buf: &mut [u8]);

    /// Reads a value from `buf[..Self::LEN]`.
    fn load(buf: &[u8]) -> Self;
}

macro_rules! impl_dsm_data_int {
    ($($ty:ty),*) => {
        $(
            impl DsmData for $ty {
                const LEN: usize = std::mem::size_of::<$ty>();
                fn store(&self, buf: &mut [u8]) {
                    buf[..Self::LEN].copy_from_slice(&self.to_le_bytes());
                }
                fn load(buf: &[u8]) -> Self {
                    let mut b = [0u8; std::mem::size_of::<$ty>()];
                    b.copy_from_slice(&buf[..Self::LEN]);
                    <$ty>::from_le_bytes(b)
                }
            }
        )*
    };
}

impl_dsm_data_int!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl DsmData for bool {
    const LEN: usize = 1;
    fn store(&self, buf: &mut [u8]) {
        buf[0] = *self as u8;
    }
    fn load(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

/// A byte address in the global shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// Byte offset arithmetic.
    pub fn offset(self, bytes: u64) -> Self {
        GlobalAddr(self.0 + bytes)
    }
}

/// A typed array living in the global shared address space. Handles are
/// plain values: clone/copy them freely and share them across nodes (all
/// SPMD nodes compute identical handles from their identical allocation
/// sequences).
#[derive(Debug)]
pub struct GlobalVec<T: DsmData> {
    /// Base address of element 0.
    pub base: GlobalAddr,
    /// Number of elements.
    pub len: usize,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would needlessly require `T: Clone`.
impl<T: DsmData> Clone for GlobalVec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: DsmData> Copy for GlobalVec<T> {}

impl<T: DsmData> GlobalVec<T> {
    /// Wraps a base address as a typed array of `len` elements.
    pub fn new(base: GlobalAddr, len: usize) -> Self {
        Self {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `i`.
    pub fn addr_of(&self, i: usize) -> GlobalAddr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base.offset((i * T::LEN) as u64)
    }

    /// Total byte footprint.
    pub fn byte_len(&self) -> usize {
        self.len * T::LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trips() {
        let mut buf = [0u8; 8];
        (-123456789i64).store(&mut buf);
        assert_eq!(i64::load(&buf), -123456789);
        let mut buf4 = [0u8; 4];
        0xDEADBEEFu32.store(&mut buf4);
        assert_eq!(u32::load(&buf4), 0xDEADBEEF);
    }

    #[test]
    fn float_round_trips() {
        let mut buf = [0u8; 8];
        std::f64::consts::PI.store(&mut buf);
        assert_eq!(f64::load(&buf), std::f64::consts::PI);
    }

    #[test]
    fn bool_round_trips() {
        let mut buf = [0u8; 1];
        true.store(&mut buf);
        assert!(bool::load(&buf));
        false.store(&mut buf);
        assert!(!bool::load(&buf));
    }

    #[test]
    fn global_vec_addressing() {
        let v: GlobalVec<i32> = GlobalVec::new(GlobalAddr(4096), 10);
        assert_eq!(v.addr_of(0).0, 4096);
        assert_eq!(v.addr_of(3).0, 4096 + 12);
        assert_eq!(v.byte_len(), 40);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn global_vec_bounds_checked() {
        let v: GlobalVec<i32> = GlobalVec::new(GlobalAddr(0), 2);
        let _ = v.addr_of(2);
    }
}
