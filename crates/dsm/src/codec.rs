//! Wire codec for the protocol messages.
//!
//! JIAJIA ships its protocol over raw UDP datagrams; this codec gives the
//! simulated transport the same failure surface. Every [`Msg`] and
//! [`Reply`] encodes to a self-contained little-endian frame ending in a
//! checksum, and decoding **never panics**: malformed input surfaces as a
//! typed [`DsmError`], which the reliability layer treats as a lost frame
//! (the sender's retransmission timer recovers it).
//!
//! The checksum is a wrapping byte sum, which is guaranteed to catch any
//! single-byte corruption (a changed byte shifts the sum by a non-zero
//! delta smaller than 2³²) — exactly the fault the chaos injector's
//! `corrupt` verdict models.

use crate::error::DsmError;
use crate::msg::{Msg, Notice, Patch, Reply};

/// Sanity bound on any length field (pages, patch data, notice lists).
/// Frames are in-memory, so this only guards fuzzed/corrupted input.
const MAX_LEN: usize = 1 << 28;

fn checksum(bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .fold(0u32, |acc, &b| acc.wrapping_add(b as u32))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Builds one checksummed frame: a tag byte, little-endian fields, and a
/// trailing byte-sum checksum.
///
/// Public so other protocol layers (the `genomedsm-serve` request/response
/// protocol) can reuse the exact framing discipline — and therefore the
/// same failure surface and decode guarantees — instead of inventing a
/// second wire format.
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    /// Starts a frame with its tag byte.
    pub fn new(tag: u8) -> Self {
        Self { buf: vec![tag] }
    }
    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `usize` as a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn notice(&mut self, n: &Notice) {
        self.u64(n.page);
        self.usize(n.writer);
        self.usize(n.home);
    }
    fn notices(&mut self, ns: &[Notice]) {
        self.u64(ns.len() as u64);
        for n in ns {
            self.notice(n);
        }
    }
    /// Seals the frame: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Decodes one checksummed frame built by [`FrameWriter`].
///
/// Decoding **never panics**: every malformation (bad checksum,
/// truncation, oversize length, trailing bytes) surfaces as a typed
/// [`DsmError`]. Public for the same reason as [`FrameWriter`].
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Verifies the trailing checksum and returns a reader over the body.
    ///
    /// # Errors
    /// [`DsmError::Truncated`] for frames shorter than tag + checksum,
    /// [`DsmError::Checksum`] on a sum mismatch.
    pub fn checked(frame: &'a [u8]) -> Result<Self, DsmError> {
        if frame.len() < 5 {
            return Err(DsmError::Truncated {
                need: 5,
                have: frame.len(),
            });
        }
        let (body, tail) = frame.split_at(frame.len() - 4);
        let mut sum = [0u8; 4];
        sum.copy_from_slice(tail);
        let expect = u32::from_le_bytes(sum);
        let got = checksum(body);
        if expect != got {
            return Err(DsmError::Checksum { expect, got });
        }
        Ok(Self { buf: body, pos: 0 })
    }

    /// Bytes left in the frame body.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    /// [`DsmError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DsmError> {
        let truncated = DsmError::Truncated {
            need: n,
            have: self.remaining(),
        };
        let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
        let s = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads the next byte (used for the frame tag).
    ///
    /// # Errors
    /// [`DsmError::Truncated`] at end of frame.
    pub fn u8(&mut self) -> Result<u8, DsmError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DsmError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`DsmError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DsmError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`DsmError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DsmError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    /// Reads a `u64` that must fit a `usize`.
    ///
    /// # Errors
    /// [`DsmError::Truncated`] / [`DsmError::Oversize`] on malformation.
    pub fn usize(&mut self) -> Result<usize, DsmError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DsmError::Oversize {
            len: u64::MAX as usize,
            max: MAX_LEN,
        })
    }

    /// A length field that must be plausible for `elem_size`-byte elements
    /// in the remaining frame.
    ///
    /// # Errors
    /// [`DsmError::Oversize`] when the claimed count cannot fit in the
    /// remaining body — the guard that makes fuzzed frames fail fast
    /// instead of allocating.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, DsmError> {
        let v = self.usize()?;
        if v > MAX_LEN || v.saturating_mul(elem_size) > self.remaining() {
            return Err(DsmError::Oversize {
                len: v,
                max: self.remaining() / elem_size.max(1),
            });
        }
        Ok(v)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Typed [`DsmError`] on truncation or an implausible length.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DsmError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Typed [`DsmError`] on truncation or an implausible length;
    /// [`DsmError::Utf8`] when the bytes are not valid UTF-8.
    pub fn str(&mut self) -> Result<String, DsmError> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|e| DsmError::Utf8 {
            valid_up_to: e.utf8_error().valid_up_to(),
        })
    }

    fn notice(&mut self) -> Result<Notice, DsmError> {
        Ok(Notice {
            page: self.u64()?,
            writer: self.usize()?,
            home: self.usize()?,
        })
    }

    fn notices(&mut self) -> Result<Vec<Notice>, DsmError> {
        let n = self.len(24)?;
        (0..n).map(|_| self.notice()).collect()
    }

    /// Finishes decoding: the frame must be fully consumed.
    ///
    /// # Errors
    /// [`DsmError::Trailing`] if body bytes remain — a frame with junk
    /// after its payload is as malformed as a truncated one.
    pub fn done<T>(self, value: T) -> Result<T, DsmError> {
        if self.remaining() != 0 {
            return Err(DsmError::Trailing {
                extra: self.remaining(),
            });
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------
// Msg
// ---------------------------------------------------------------------

const MSG_GETPAGE: u8 = 0;
const MSG_DIFF: u8 = 1;
const MSG_ACQUIRE: u8 = 2;
const MSG_RELEASE: u8 = 3;
const MSG_SETCV: u8 = 4;
const MSG_WAITCV: u8 = 5;
const MSG_BARRIER: u8 = 6;
const MSG_MIGRATION_NOTICE: u8 = 7;
const MSG_MIGRATE_OUT: u8 = 8;
const MSG_ADOPT_PAGE: u8 = 9;
const MSG_SHUTDOWN: u8 = 10;
const MSG_HEARTBEAT: u8 = 11;
const MSG_OBITUARY: u8 = 12;
const MSG_PROBE_FAILURES: u8 = 13;
const MSG_REJOIN: u8 = 14;

/// Encodes a request into a checksummed frame.
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut w;
    match msg {
        Msg::GetPage { page, from, epoch } => {
            w = FrameWriter::new(MSG_GETPAGE);
            w.u64(*page);
            w.usize(*from);
            w.u64(*epoch);
        }
        Msg::Diff {
            page,
            from,
            patches,
            epoch,
        } => {
            w = FrameWriter::new(MSG_DIFF);
            w.u64(*page);
            w.usize(*from);
            w.u64(*epoch);
            w.u64(patches.len() as u64);
            for p in patches {
                w.u32(p.offset);
                w.bytes(&p.data);
            }
        }
        Msg::Acquire {
            lock,
            from,
            last_seq,
        } => {
            w = FrameWriter::new(MSG_ACQUIRE);
            w.u32(*lock);
            w.usize(*from);
            w.u64(*last_seq);
        }
        Msg::Release {
            lock,
            from,
            notices,
        } => {
            w = FrameWriter::new(MSG_RELEASE);
            w.u32(*lock);
            w.usize(*from);
            w.notices(notices);
        }
        Msg::SetCv { cv, from, notices } => {
            w = FrameWriter::new(MSG_SETCV);
            w.u32(*cv);
            w.usize(*from);
            w.notices(notices);
        }
        Msg::WaitCv { cv, from, last_seq } => {
            w = FrameWriter::new(MSG_WAITCV);
            w.u32(*cv);
            w.usize(*from);
            w.u64(*last_seq);
        }
        Msg::Barrier { from, notices } => {
            w = FrameWriter::new(MSG_BARRIER);
            w.usize(*from);
            w.notices(notices);
        }
        Msg::MigrationNotice { epoch, incoming } => {
            w = FrameWriter::new(MSG_MIGRATION_NOTICE);
            w.u64(*epoch);
            w.u64(incoming.len() as u64);
            for p in incoming {
                w.u64(*p);
            }
        }
        Msg::MigrateOut { page, to } => {
            w = FrameWriter::new(MSG_MIGRATE_OUT);
            w.u64(*page);
            w.usize(*to);
        }
        Msg::AdoptPage { page, data } => {
            w = FrameWriter::new(MSG_ADOPT_PAGE);
            w.u64(*page);
            w.bytes(data);
        }
        Msg::Shutdown => {
            w = FrameWriter::new(MSG_SHUTDOWN);
        }
        Msg::Heartbeat { node } => {
            w = FrameWriter::new(MSG_HEARTBEAT);
            w.usize(*node);
        }
        Msg::Obituary { node, incarnation } => {
            w = FrameWriter::new(MSG_OBITUARY);
            w.usize(*node);
            w.u32(*incarnation);
        }
        Msg::Rejoin {
            node,
            incarnation,
            admit_at_round,
            stride,
        } => {
            w = FrameWriter::new(MSG_REJOIN);
            w.usize(*node);
            w.u32(*incarnation);
            w.u64(*admit_at_round);
            w.u64(*stride);
        }
        Msg::ProbeFailures {
            from,
            cancel_waits,
            known,
        } => {
            w = FrameWriter::new(MSG_PROBE_FAILURES);
            w.usize(*from);
            w.u32(u32::from(*cancel_waits));
            w.u64(known.len() as u64);
            for n in known {
                w.usize(*n);
            }
        }
    }
    w.finish()
}

/// Decodes a request frame; returns a typed error on any malformation.
pub fn decode_msg(frame: &[u8]) -> Result<Msg, DsmError> {
    let mut r = FrameReader::checked(frame)?;
    let tag = r.u8()?;
    let msg = match tag {
        MSG_GETPAGE => Msg::GetPage {
            page: r.u64()?,
            from: r.usize()?,
            epoch: r.u64()?,
        },
        MSG_DIFF => {
            let page = r.u64()?;
            let from = r.usize()?;
            let epoch = r.u64()?;
            let n = r.len(12)?;
            let mut patches = Vec::with_capacity(n);
            for _ in 0..n {
                patches.push(Patch {
                    offset: r.u32()?,
                    data: r.bytes()?,
                });
            }
            Msg::Diff {
                page,
                from,
                patches,
                epoch,
            }
        }
        MSG_ACQUIRE => Msg::Acquire {
            lock: r.u32()?,
            from: r.usize()?,
            last_seq: r.u64()?,
        },
        MSG_RELEASE => Msg::Release {
            lock: r.u32()?,
            from: r.usize()?,
            notices: r.notices()?,
        },
        MSG_SETCV => Msg::SetCv {
            cv: r.u32()?,
            from: r.usize()?,
            notices: r.notices()?,
        },
        MSG_WAITCV => Msg::WaitCv {
            cv: r.u32()?,
            from: r.usize()?,
            last_seq: r.u64()?,
        },
        MSG_BARRIER => Msg::Barrier {
            from: r.usize()?,
            notices: r.notices()?,
        },
        MSG_MIGRATION_NOTICE => {
            let epoch = r.u64()?;
            let n = r.len(8)?;
            let incoming = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
            Msg::MigrationNotice { epoch, incoming }
        }
        MSG_MIGRATE_OUT => Msg::MigrateOut {
            page: r.u64()?,
            to: r.usize()?,
        },
        MSG_ADOPT_PAGE => Msg::AdoptPage {
            page: r.u64()?,
            data: r.bytes()?,
        },
        MSG_SHUTDOWN => Msg::Shutdown,
        MSG_HEARTBEAT => Msg::Heartbeat { node: r.usize()? },
        MSG_OBITUARY => Msg::Obituary {
            node: r.usize()?,
            incarnation: r.u32()?,
        },
        MSG_REJOIN => Msg::Rejoin {
            node: r.usize()?,
            incarnation: r.u32()?,
            admit_at_round: r.u64()?,
            stride: r.u64()?,
        },
        MSG_PROBE_FAILURES => {
            let from = r.usize()?;
            let cancel_waits = r.u32()? != 0;
            let k = r.len(8)?;
            let known = (0..k).map(|_| r.usize()).collect::<Result<_, _>>()?;
            Msg::ProbeFailures {
                from,
                cancel_waits,
                known,
            }
        }
        other => return Err(DsmError::BadTag(other)),
    };
    r.done(msg)
}

// ---------------------------------------------------------------------
// Reply
// ---------------------------------------------------------------------

const REPLY_PAGE: u8 = 0x80;
const REPLY_DIFF_ACK: u8 = 0x81;
const REPLY_LOCK_GRANTED: u8 = 0x82;
const REPLY_CV_GRANTED: u8 = 0x83;
const REPLY_BARRIER_DONE: u8 = 0x84;
const REPLY_NODE_FAILED: u8 = 0x85;
const REPLY_FAILURE_REPORT: u8 = 0x86;
const REPLY_REJOIN_ACK: u8 = 0x87;

/// Encodes a reply into a checksummed frame.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w;
    match reply {
        Reply::Page { page, data } => {
            w = FrameWriter::new(REPLY_PAGE);
            w.u64(*page);
            w.bytes(data);
        }
        Reply::DiffAck => {
            w = FrameWriter::new(REPLY_DIFF_ACK);
        }
        Reply::LockGranted { notices, seq } => {
            w = FrameWriter::new(REPLY_LOCK_GRANTED);
            w.u64(*seq);
            w.notices(notices);
        }
        Reply::CvGranted { notices, seq } => {
            w = FrameWriter::new(REPLY_CV_GRANTED);
            w.u64(*seq);
            w.notices(notices);
        }
        Reply::BarrierDone {
            notices,
            migrations,
            dead,
        } => {
            w = FrameWriter::new(REPLY_BARRIER_DONE);
            w.notices(notices);
            w.u64(migrations.len() as u64);
            for (page, to) in migrations {
                w.u64(*page);
                w.usize(*to);
            }
            w.u64(dead.len() as u64);
            for n in dead {
                w.usize(*n);
            }
        }
        Reply::NodeFailed { node } => {
            w = FrameWriter::new(REPLY_NODE_FAILED);
            w.usize(*node);
        }
        Reply::FailureReport {
            dead,
            suspects,
            canceled,
            epoch,
        } => {
            w = FrameWriter::new(REPLY_FAILURE_REPORT);
            w.u64(dead.len() as u64);
            for n in dead {
                w.usize(*n);
            }
            w.u64(suspects.len() as u64);
            for n in suspects {
                w.usize(*n);
            }
            w.u32(u32::from(*canceled));
            w.u64(*epoch);
        }
        Reply::RejoinAck {
            round,
            dead,
            migrations,
        } => {
            w = FrameWriter::new(REPLY_REJOIN_ACK);
            w.u64(*round);
            w.u64(dead.len() as u64);
            for n in dead {
                w.usize(*n);
            }
            w.u64(migrations.len() as u64);
            for (page, to) in migrations {
                w.u64(*page);
                w.usize(*to);
            }
        }
    }
    w.finish()
}

/// Decodes a reply frame; returns a typed error on any malformation.
pub fn decode_reply(frame: &[u8]) -> Result<Reply, DsmError> {
    let mut r = FrameReader::checked(frame)?;
    let tag = r.u8()?;
    let reply = match tag {
        REPLY_PAGE => Reply::Page {
            page: r.u64()?,
            data: r.bytes()?,
        },
        REPLY_DIFF_ACK => Reply::DiffAck,
        REPLY_LOCK_GRANTED => {
            let seq = r.u64()?;
            Reply::LockGranted {
                notices: r.notices()?,
                seq,
            }
        }
        REPLY_CV_GRANTED => {
            let seq = r.u64()?;
            Reply::CvGranted {
                notices: r.notices()?,
                seq,
            }
        }
        REPLY_BARRIER_DONE => {
            let notices = r.notices()?;
            let n = r.len(16)?;
            let migrations = (0..n)
                .map(|_| Ok((r.u64()?, r.usize()?)))
                .collect::<Result<_, DsmError>>()?;
            let d = r.len(8)?;
            let dead = (0..d).map(|_| r.usize()).collect::<Result<_, _>>()?;
            Reply::BarrierDone {
                notices,
                migrations,
                dead,
            }
        }
        REPLY_NODE_FAILED => Reply::NodeFailed { node: r.usize()? },
        REPLY_FAILURE_REPORT => {
            let n = r.len(8)?;
            let dead = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
            let s = r.len(8)?;
            let suspects = (0..s).map(|_| r.usize()).collect::<Result<_, _>>()?;
            Reply::FailureReport {
                dead,
                suspects,
                canceled: r.u32()? != 0,
                epoch: r.u64()?,
            }
        }
        REPLY_REJOIN_ACK => {
            let round = r.u64()?;
            let d = r.len(8)?;
            let dead = (0..d).map(|_| r.usize()).collect::<Result<_, _>>()?;
            let m = r.len(16)?;
            let migrations = (0..m)
                .map(|_| Ok((r.u64()?, r.usize()?)))
                .collect::<Result<_, DsmError>>()?;
            Reply::RejoinAck {
                round,
                dead,
                migrations,
            }
        }
        other => return Err(DsmError::BadTag(other)),
    };
    r.done(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let m = Msg::GetPage {
            page: 42,
            from: 3,
            epoch: 7,
        };
        assert_eq!(decode_msg(&encode_msg(&m)).unwrap(), m);
    }

    #[test]
    fn single_byte_flip_is_always_caught() {
        let m = Msg::Diff {
            page: 9,
            from: 1,
            epoch: 0,
            patches: vec![Patch {
                offset: 4,
                data: vec![1, 2, 3, 250],
            }],
        };
        let frame = encode_msg(&m);
        for i in 0..frame.len() {
            for flip in [0x01u8, 0x5a, 0xff] {
                let mut bad = frame.clone();
                bad[i] ^= flip;
                assert!(
                    decode_msg(&bad).is_err(),
                    "flip {flip:#x} at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn supervision_frames_roundtrip() {
        for m in [
            Msg::Heartbeat { node: 5 },
            Msg::Obituary {
                node: 2,
                incarnation: 0,
            },
            Msg::ProbeFailures {
                from: 7,
                cancel_waits: true,
                known: vec![1, 3],
            },
            Msg::Rejoin {
                node: 3,
                incarnation: 2,
                admit_at_round: 41,
                stride: 9,
            },
        ] {
            assert_eq!(decode_msg(&encode_msg(&m)).unwrap(), m);
        }
        for r in [
            Reply::NodeFailed { node: 4 },
            Reply::FailureReport {
                dead: vec![1, 6],
                suspects: vec![3],
                canceled: false,
                epoch: 9,
            },
            Reply::RejoinAck {
                round: 12,
                dead: vec![5],
                migrations: vec![(17, 2), (40, 0)],
            },
            Reply::BarrierDone {
                notices: vec![],
                migrations: vec![(3, 1)],
                dead: vec![2],
            },
        ] {
            assert_eq!(decode_reply(&encode_reply(&r)).unwrap(), r);
        }
    }

    #[test]
    fn truncation_is_typed() {
        let frame = encode_reply(&Reply::DiffAck);
        for cut in 0..frame.len() {
            assert!(decode_reply(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn bad_tag_is_typed() {
        let mut w = FrameWriter::new(0x7f);
        w.u64(1);
        let frame = w.finish();
        assert_eq!(decode_msg(&frame), Err(DsmError::BadTag(0x7f)));
    }

    #[test]
    fn oversize_length_rejected_without_allocation() {
        // A Diff frame claiming 2^60 patches must fail fast.
        let mut w = FrameWriter::new(MSG_DIFF);
        w.u64(0); // page
        w.u64(0); // from
        w.u64(0); // epoch
        w.u64(1 << 60); // patch count
        let frame = w.finish();
        assert!(matches!(decode_msg(&frame), Err(DsmError::Oversize { .. })));
    }
}
