//! Runtime lock-order verification.
//!
//! A debug-build tripwire for lock-order inversions across the whole
//! cluster run: every time a worker acquires a DSM lock while already
//! holding others, the held→acquired pairs are recorded as directed
//! *acquisition edges* in a per-run graph, each edge tagged with the
//! source locations of both acquisitions (captured via
//! `#[track_caller]`). Inserting an edge runs an incremental cycle check;
//! a cycle means two code paths disagree about the acquisition order —
//! the AB-BA pattern that deadlocks only under an unlucky interleaving,
//! reported here deterministically on *every* run that merely exercises
//! both orders, even when no deadlock manifests.
//!
//! The graph is active when [`LOCK_ORDER_ENABLED`] is true: in every
//! `debug_assertions` build (so the entire test suite runs under it) or
//! when the `lock-order` feature is turned on explicitly for release
//! builds. In [`LockOrderMode::Panic`] (the default) a violation panics
//! the acquiring worker with both acquisition sites of the offending
//! edge and the previously recorded conflicting edge; in
//! [`LockOrderMode::Record`] violations accumulate and are returned on
//! [`crate::DsmRun::lock_order_violations`] for inspection.
//!
//! The same discipline is model-checked schedule-exhaustively in
//! `genomedsm-verify` (`models::inversion`), giving lock-order bugs two
//! independent tripwires: the checker proves the inverted order can
//! deadlock, this graph catches any code path that reintroduces it.

use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::Mutex;

/// Whether acquisition tracking is compiled in and active.
pub const LOCK_ORDER_ENABLED: bool = cfg!(debug_assertions) || cfg!(feature = "lock-order");

/// What to do when an inversion is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockOrderMode {
    /// Panic in the acquiring worker (fail the run loudly).
    #[default]
    Panic,
    /// Keep running; collect violations for post-run inspection.
    Record,
}

/// One acquisition edge: `from` was held at `from_site` when `to` was
/// acquired at `to_site`.
#[derive(Debug, Clone, Copy)]
struct EdgeInfo {
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
}

/// One recorded acquisition edge, exported for the static/runtime
/// cross-check run by `genomedsm-analyze`: the runtime edge list must
/// be a subset of the statically extracted may-hold-while-acquiring
/// graph, or the static extractor has lost an acquisition site.
#[derive(Debug, Clone, Copy)]
pub struct LockOrderEdge {
    /// Lock that was held.
    pub from_lock: u32,
    /// Lock that was acquired while `from_lock` was held.
    pub to_lock: u32,
    /// Where `from_lock` was acquired.
    pub from_site: &'static Location<'static>,
    /// Where `to_lock` was acquired.
    pub to_site: &'static Location<'static>,
}

impl LockOrderEdge {
    /// The stable dump format consumed by `genomedsm-analyze
    /// --crosscheck`: `from_file:from_line -> to_file:to_line`.
    /// Columns and lock ids are deliberately omitted — the static
    /// analyzer resolves sites at file:line granularity.
    pub fn wire_format(&self) -> String {
        format!(
            "{}:{} -> {}:{}",
            self.from_site.file(),
            self.from_site.line(),
            self.to_site.file(),
            self.to_site.line()
        )
    }

    /// Deterministic sort key: sites first (what the cross-check
    /// compares), lock ids as tie-breakers.
    fn sort_key(&self) -> (&'static str, u32, &'static str, u32, u32, u32) {
        (
            self.from_site.file(),
            self.from_site.line(),
            self.to_site.file(),
            self.to_site.line(),
            self.from_lock,
            self.to_lock,
        )
    }
}

/// A detected lock-order inversion.
#[derive(Debug, Clone)]
pub struct LockOrderViolation {
    /// The edge whose insertion closed the cycle: (held lock, acquired lock).
    pub edge: (u32, u32),
    /// Where the held lock of the new edge was acquired.
    pub held_site: &'static Location<'static>,
    /// Where the offending acquisition happened.
    pub acquire_site: &'static Location<'static>,
    /// The cycle as lock ids, starting and ending at the acquired lock.
    pub cycle: Vec<u32>,
    /// The previously recorded edges along the cycle, rendered as
    /// `from->to (held at X, acquired at Y)`.
    pub prior_edges: Vec<String>,
}

impl fmt::Display for LockOrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lock-order inversion: acquiring lock {} at {} while holding lock {} \
             (acquired at {}) closes the cycle {:?}",
            self.edge.1, self.acquire_site, self.edge.0, self.held_site, self.cycle
        )?;
        for e in &self.prior_edges {
            writeln!(f, "  conflicting acquisition order: {e}")?;
        }
        write!(
            f,
            "  fix: acquire these locks in one global order on every code path"
        )
    }
}

#[derive(Default)]
struct Inner {
    /// Adjacency: `from -> to -> first witnessed sites`.
    edges: HashMap<u32, HashMap<u32, EdgeInfo>>,
    violations: Vec<LockOrderViolation>,
}

impl Inner {
    /// Path from `start` to `goal` over recorded edges, if any (DFS).
    fn find_path(&self, start: u32, goal: u32) -> Option<Vec<u32>> {
        let mut stack = vec![(start, vec![start])];
        let mut seen = std::collections::HashSet::new();
        seen.insert(start);
        while let Some((at, path)) = stack.pop() {
            if at == goal {
                return Some(path);
            }
            if let Some(nexts) = self.edges.get(&at) {
                for &next in nexts.keys() {
                    if seen.insert(next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        None
    }
}

/// The per-run acquisition-order graph, shared by every worker thread.
pub struct LockOrderGraph {
    mode: LockOrderMode,
    inner: Mutex<Inner>,
}

impl LockOrderGraph {
    /// Creates an empty graph.
    pub fn new(mode: LockOrderMode) -> Self {
        Self {
            mode,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records that `acquired` was taken at `acquire_site` while every
    /// lock in `held` was already held (with its own acquisition site).
    ///
    /// # Panics
    /// In [`LockOrderMode::Panic`], if the new edges close a cycle.
    pub fn on_acquire(
        &self,
        held: &[(u32, &'static Location<'static>)],
        acquired: u32,
        acquire_site: &'static Location<'static>,
    ) {
        if held.is_empty() {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut panic_on: Option<LockOrderViolation> = None;
        for &(held_lock, held_site) in held {
            if held_lock == acquired {
                continue;
            }
            if inner
                .edges
                .get(&held_lock)
                .is_some_and(|m| m.contains_key(&acquired))
            {
                // Keep the first witness of an already-known edge.
                continue;
            }
            // Adding held_lock -> acquired closes a cycle iff a path
            // acquired -> ... -> held_lock already exists.
            if let Some(path) = inner.find_path(acquired, held_lock) {
                let mut cycle = path.clone();
                cycle.push(acquired);
                let prior_edges = path
                    .windows(2)
                    .filter_map(|w| {
                        let info = inner.edges.get(&w[0])?.get(&w[1])?;
                        Some(format!(
                            "{}->{} (lock {} held at {}, lock {} acquired at {})",
                            w[0], w[1], w[0], info.from_site, w[1], info.to_site
                        ))
                    })
                    .collect();
                let violation = LockOrderViolation {
                    edge: (held_lock, acquired),
                    held_site,
                    acquire_site,
                    cycle,
                    prior_edges,
                };
                match self.mode {
                    LockOrderMode::Panic => {
                        panic_on = Some(violation);
                        break;
                    }
                    LockOrderMode::Record => inner.violations.push(violation),
                }
                // Record mode: still insert the edge so the report shows
                // every independent inversion once.
            }
            inner.edges.entry(held_lock).or_default().insert(
                acquired,
                EdgeInfo {
                    from_site: held_site,
                    to_site: acquire_site,
                },
            );
        }
        drop(inner);
        if let Some(v) = panic_on {
            panic!("{v}");
        }
    }

    /// Violations collected so far (only populated in record mode).
    pub fn violations(&self) -> Vec<LockOrderViolation> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .violations
            .clone()
    }

    /// Every recorded acquisition edge, deterministically sorted (by
    /// site, then lock ids) so repeated runs of the same workload dump
    /// byte-identical artifacts for the static/runtime cross-check.
    pub fn edges(&self) -> Vec<LockOrderEdge> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<LockOrderEdge> = inner
            .edges
            .iter()
            .flat_map(|(&from_lock, tos)| {
                tos.iter().map(move |(&to_lock, info)| LockOrderEdge {
                    from_lock,
                    to_lock,
                    from_site: info.from_site,
                    to_site: info.to_site,
                })
            })
            .collect();
        out.sort_by_key(LockOrderEdge::sort_key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn consistent_order_is_clean() {
        let g = LockOrderGraph::new(LockOrderMode::Panic);
        let s = site();
        // Many acquisitions, always ascending.
        for _ in 0..3 {
            g.on_acquire(&[(0, s)], 1, s);
            g.on_acquire(&[(0, s), (1, s)], 2, s);
        }
        assert!(g.violations().is_empty());
    }

    #[test]
    fn two_lock_inversion_is_recorded_with_both_sites() {
        let g = LockOrderGraph::new(LockOrderMode::Record);
        let first = site();
        let second = site();
        g.on_acquire(&[(0, first)], 1, second);
        g.on_acquire(&[(1, second)], 0, first);
        let v = g.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].edge, (1, 0));
        assert_eq!(v[0].cycle, vec![0, 1, 0]);
        let text = v[0].to_string();
        assert!(text.contains(&first.to_string()), "{text}");
        assert!(text.contains(&second.to_string()), "{text}");
    }

    #[test]
    fn three_lock_cycle_is_detected() {
        let g = LockOrderGraph::new(LockOrderMode::Record);
        let s = site();
        g.on_acquire(&[(0, s)], 1, s);
        g.on_acquire(&[(1, s)], 2, s);
        g.on_acquire(&[(2, s)], 0, s);
        let v = g.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cycle, vec![0, 1, 2, 0]);
        assert_eq!(v[0].prior_edges.len(), 2);
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn panic_mode_panics_on_inversion() {
        let g = LockOrderGraph::new(LockOrderMode::Panic);
        let s = site();
        g.on_acquire(&[(7, s)], 9, s);
        g.on_acquire(&[(9, s)], 7, s);
    }

    #[test]
    fn edges_export_is_sorted_and_deterministic() {
        let build = || {
            let g = LockOrderGraph::new(LockOrderMode::Record);
            let s = site();
            // Insert in a scrambled order; export must not depend on it.
            g.on_acquire(&[(5, s)], 9, s);
            g.on_acquire(&[(0, s)], 1, s);
            g.on_acquire(&[(0, s), (1, s)], 2, s);
            g.edges()
        };
        let a = build();
        let b = build();
        assert_eq!(a.len(), 4, "0->1, 0->2, 1->2, 5->9");
        let fmt = |es: &[LockOrderEdge]| {
            es.iter()
                .map(|e| format!("{} [{}->{}]", e.wire_format(), e.from_lock, e.to_lock))
                .collect::<Vec<_>>()
        };
        assert_eq!(fmt(&a), fmt(&b));
        let keys: Vec<_> = a.iter().map(|e| (e.from_lock, e.to_lock)).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (1, 2), (5, 9)]);
        assert!(a[0].wire_format().contains("lock_order.rs"));
    }

    #[test]
    fn duplicate_edges_keep_first_witness_and_do_not_refire() {
        let g = LockOrderGraph::new(LockOrderMode::Record);
        let s = site();
        g.on_acquire(&[(0, s)], 1, s);
        g.on_acquire(&[(1, s)], 0, s); // inversion #1
        g.on_acquire(&[(1, s)], 0, s); // same edge: no new violation
        assert_eq!(g.violations().len(), 1);
    }
}
