//! Protocol messages exchanged between workers and daemons.
//!
//! Names mirror the paper's Fig. 6: GETPAGE, DIFF/DIFFGRANT, ACQ/GRANT,
//! BARR/BARRGRANT, plus the condition-variable pair (jia_setcv /
//! jia_waitcv).

/// A write notice: "page `page` was modified by node `writer`". Carried on
/// release-type messages and delivered to the next acquirer, which
/// invalidates the page (unless it is the writer itself). The page's
/// current home rides along so the barrier manager can drive home
/// migration without tracking allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Notice {
    /// Global page number.
    pub page: u64,
    /// Node that performed the modification.
    pub writer: usize,
    /// The page's home node at the time of the write.
    pub home: usize,
}

/// One contiguous patch of a diff: byte offset within the page plus the
/// new bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    /// Byte offset within the page.
    pub offset: u32,
    /// Replacement bytes.
    pub data: Vec<u8>,
}

impl Patch {
    /// Wire-size estimate of this patch (offset + length headers + data).
    pub fn wire_size(&self) -> usize {
        8 + self.data.len()
    }
}

/// A request with its virtual arrival time at the daemon.
///
/// The simulated cluster keeps *virtual* clocks: workers advance theirs
/// with modeled computation ([`crate::Node::advance`]) and every message
/// is stamped with `sender clock + network cost`. Daemons answer with the
/// reply's own arrival stamp, so waiting times and speed-ups are derived
/// from the dependency DAG rather than from host wall time — essential on
/// machines with fewer cores than simulated nodes.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The request.
    pub msg: Msg,
    /// Virtual time at which the message reaches the daemon.
    pub arrive: std::time::Duration,
    /// Transport source: worker index (`< nprocs`), daemon index
    /// (`nprocs + d`), or [`SYSTEM_SRC`] for harness-internal messages.
    pub src: usize,
    /// Per-(source, destination) link sequence number, used by the
    /// reliability layer for duplicate suppression and reply caching.
    pub seq: u64,
}

/// Transport source id for harness-internal messages (shutdown sentinel);
/// exempt from the reliability layer's per-link sequencing.
pub const SYSTEM_SRC: usize = usize::MAX;

/// A reply with its virtual arrival time at the worker.
#[derive(Debug, Clone)]
pub struct ReplyEnvelope {
    /// The reply.
    pub reply: Reply,
    /// Virtual time at which the reply reaches the worker.
    pub arrive: std::time::Duration,
    /// Transport source: `nprocs + d` for daemon `d`.
    pub src: usize,
    /// Per-link reply sequence number (see [`Envelope::seq`]).
    pub seq: u64,
}

/// Requests sent to a daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Fetch a copy of a page from its home (remote access fault).
    GetPage {
        /// Global page number.
        page: u64,
        /// Requesting node.
        from: usize,
        /// The requester's migration epoch (barrier count). A daemon
        /// parks requests from the future until its own epoch catches up.
        epoch: u64,
    },
    /// Apply a diff to a home page (release-time flush).
    Diff {
        /// Global page number.
        page: u64,
        /// Writing node.
        from: usize,
        /// The modified ranges.
        patches: Vec<Patch>,
        /// The writer's migration epoch.
        epoch: u64,
    },
    /// Acquire a lock managed by this daemon.
    Acquire {
        /// Lock id.
        lock: u32,
        /// Requesting node.
        from: usize,
        /// Highest notice sequence number this node has seen for the lock.
        last_seq: u64,
    },
    /// Release a lock, attaching the interval's write notices.
    Release {
        /// Lock id.
        lock: u32,
        /// Releasing node.
        from: usize,
        /// Pages modified inside the critical section.
        notices: Vec<Notice>,
    },
    /// Signal a condition variable (counting semantics), attaching write
    /// notices of the signalling interval.
    SetCv {
        /// Condition-variable id.
        cv: u32,
        /// Signalling node.
        from: usize,
        /// Pages modified before the signal.
        notices: Vec<Notice>,
    },
    /// Wait on a condition variable.
    WaitCv {
        /// Condition-variable id.
        cv: u32,
        /// Waiting node.
        from: usize,
        /// Highest notice sequence this node has seen for the cv.
        last_seq: u64,
    },
    /// Arrive at the global barrier (sent to node 0's daemon).
    Barrier {
        /// Arriving node.
        from: usize,
        /// Pages modified since the node's previous barrier.
        notices: Vec<Notice>,
    },
    /// Home migration (barrier manager → every daemon, once per barrier
    /// round when migration is enabled): advance the migration epoch and
    /// announce the pages this daemon is about to adopt.
    MigrationNotice {
        /// The new epoch (equals the barrier round number).
        epoch: u64,
        /// Pages whose data will arrive via [`Msg::AdoptPage`].
        incoming: Vec<u64>,
    },
    /// Home migration (barrier manager → the old home): ship the page to
    /// its new home and forget it.
    MigrateOut {
        /// Global page number.
        page: u64,
        /// The new home node.
        to: usize,
    },
    /// Home migration (old home daemon → new home daemon): the page data.
    AdoptPage {
        /// Global page number.
        page: u64,
        /// Authoritative page contents.
        data: Vec<u8>,
    },
    /// Stop the daemon (end of the run).
    Shutdown,
    /// Liveness heartbeat (worker → its local daemon, piggybacked on the
    /// work loop at unit boundaries). Updates the daemon's `last_heard`
    /// gossip table entry for `node`.
    Heartbeat {
        /// The node asserting liveness.
        node: usize,
    },
    /// Authoritative death notice for `node`, broadcast to every daemon by
    /// a fail-stopping worker (cooperative fail-stop) — the simulation
    /// analogue of every manager's timeout detector firing. The receiving
    /// daemon breaks `node`'s lock leases, removes its queued waits, wakes
    /// remaining cv waiters with [`Reply::NodeFailed`], and completes
    /// barriers over the survivors.
    Obituary {
        /// The node declared dead.
        node: usize,
        /// The incarnation of the life that died. A daemon drops an
        /// obituary for an incarnation older than the latest one it has
        /// admitted — on a lossy transport a delayed duplicate must not
        /// re-kill a rank that has since rejoined.
        incarnation: u32,
    },
    /// Elastic-membership announcement: a fail-stopped worker asks to come
    /// back. Sent to daemon 0 only — the barrier manager and admission
    /// authority. Daemon 0 *defers* the admission until its completed
    /// barrier-round count reaches `admit_at_round` (a workload boundary
    /// the joiner and the survivors agree on by construction): admitting
    /// mid-workload would make in-flight rounds wait for a rank that
    /// arrives at a different round, deadlocking the barrier. At the
    /// boundary, daemon 0 removes `node` from its dead set, refreshes its
    /// heartbeat gossip entry (a stale `last_heard` must not make the
    /// joiner instantly suspect again), bumps its membership epoch,
    /// forwards the announcement to every other daemon (which admit on
    /// receipt), and answers the joiner with [`Reply::RejoinAck`].
    Rejoin {
        /// The node rejoining the cluster.
        node: usize,
        /// The joiner's incarnation number (1 for the first rejoin).
        /// Carried so a daemon can fence stale obituaries of the previous
        /// life, and distinguish a fresh announcement from a
        /// retransmitted stale one.
        incarnation: u32,
        /// The completed-round count at which the admission takes effect;
        /// the joiner's first post-admission barrier arrival is exactly
        /// this round.
        admit_at_round: u64,
        /// Barrier rounds per workload boundary. If the announcement
        /// arrives *after* `admit_at_round` has already passed (a delayed
        /// or retransmitted announcement on a lossy transport), daemon 0
        /// must not admit mid-workload; it defers to the next boundary
        /// `admit_at_round + k·stride` strictly in the future. `0` means
        /// "no later boundary exists" and admits immediately when late.
        stride: u64,
    },
    /// Explicit failure-detector query (stall watchdog, or a survivor
    /// refreshing its dead-set). The daemon answers with
    /// [`Reply::FailureReport`]; if `cancel_waits` is set and dead nodes
    /// *not already in `known`* exist, the prober's parked cv waits on
    /// this daemon are cancelled so it can unwind into recovery. Deaths
    /// the prober lists in `known` never cancel — a survivor that has
    /// already adopted the dead node's work may legitimately block again.
    ProbeFailures {
        /// The probing node.
        from: usize,
        /// Cancel the prober's parked cv waits when *new* failures exist.
        cancel_waits: bool,
        /// Deaths the prober already recovered from (sorted).
        known: Vec<usize>,
    },
}

/// Replies delivered to a worker's reply channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Page copy (GETPAGE response).
    Page {
        /// Global page number.
        page: u64,
        /// Page contents.
        data: Vec<u8>,
    },
    /// Diff applied (DIFFGRANT).
    DiffAck,
    /// Lock granted, with the write notices accumulated since the
    /// acquirer last saw this lock.
    LockGranted {
        /// Notices to invalidate.
        notices: Vec<Notice>,
        /// New sequence watermark for the lock.
        seq: u64,
    },
    /// Condition-variable wait satisfied.
    CvGranted {
        /// Notices to invalidate.
        notices: Vec<Notice>,
        /// New sequence watermark for the cv.
        seq: u64,
    },
    /// All nodes arrived; proceed past the barrier (BARRGRANT).
    BarrierDone {
        /// Union of all notices of the round.
        notices: Vec<Notice>,
        /// Home migrations decided this round (page, new home); empty
        /// unless migration is enabled.
        migrations: Vec<(u64, usize)>,
        /// Nodes declared dead as of this round; the barrier completed
        /// over the survivors. Empty on a healthy run.
        dead: Vec<usize>,
    },
    /// A blocked wait was cancelled because a node was declared dead
    /// (lease break / cv wake-up path of the supervision layer).
    NodeFailed {
        /// The dead node that triggered the wake-up.
        node: usize,
    },
    /// Failure-detector state (ProbeFailures response).
    FailureReport {
        /// Nodes this daemon has seen obituaries for (sorted; confirmed
        /// dead — recovery acts on these).
        dead: Vec<usize>,
        /// Nodes whose last heartbeat is stale beyond `detect_after`
        /// (sorted; advisory suspicion — may include slow-but-alive
        /// nodes, so recovery never acts on suspicion alone).
        suspects: Vec<usize>,
        /// Whether the prober's parked cv waits were cancelled.
        canceled: bool,
        /// This daemon's membership epoch: bumped on every obituary and
        /// every admitted rejoin, so heartbeat gossip carries view
        /// changes, not just deaths.
        epoch: u64,
    },
    /// Admission grant for a rejoining node ([`Msg::Rejoin`] response from
    /// daemon 0). Resynchronizes the joiner with everything it missed
    /// while dead.
    RejoinAck {
        /// Completed barrier rounds at admission: the joiner's new
        /// migration epoch (it missed the grants that would have advanced
        /// it).
        round: u64,
        /// The dead set after the joiner's removal (other nodes may still
        /// be down); becomes the joiner's `known_dead`.
        dead: Vec<usize>,
        /// The cumulative home-migration log `(page, new home)` since the
        /// start of the run, so the joiner rebuilds its `home_overrides`
        /// — stale overrides would fetch pages from homes that shipped
        /// them away long ago.
        migrations: Vec<(u64, usize)>,
    },
}

impl Msg {
    /// Wire-size estimate used by the network cost model.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 32; // UDP + protocol header estimate
        match self {
            Msg::GetPage { .. } => HDR,
            Msg::Diff { patches, .. } => HDR + patches.iter().map(Patch::wire_size).sum::<usize>(),
            Msg::Acquire { .. } => HDR,
            Msg::Release { notices, .. } => HDR + notices.len() * 12,
            Msg::SetCv { notices, .. } => HDR + notices.len() * 12,
            Msg::WaitCv { .. } => HDR,
            Msg::Barrier { notices, .. } => HDR + notices.len() * 12,
            Msg::MigrationNotice { incoming, .. } => HDR + incoming.len() * 8,
            Msg::MigrateOut { .. } => HDR,
            Msg::AdoptPage { data, .. } => HDR + data.len(),
            Msg::Shutdown => HDR,
            Msg::Heartbeat { .. } => HDR,
            Msg::Obituary { .. } => HDR,
            Msg::Rejoin { .. } => HDR,
            Msg::ProbeFailures { known, .. } => HDR + known.len() * 4,
        }
    }
}

impl Reply {
    /// Wire-size estimate used by the network cost model.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 32;
        match self {
            Reply::Page { data, .. } => HDR + data.len(),
            Reply::DiffAck => HDR,
            Reply::LockGranted { notices, .. } | Reply::CvGranted { notices, .. } => {
                HDR + notices.len() * 12
            }
            Reply::BarrierDone {
                notices,
                migrations,
                dead,
            } => HDR + notices.len() * 12 + migrations.len() * 12 + dead.len() * 4,
            Reply::NodeFailed { .. } => HDR,
            Reply::FailureReport { dead, suspects, .. } => {
                HDR + dead.len() * 4 + suspects.len() * 4
            }
            Reply::RejoinAck {
                dead, migrations, ..
            } => HDR + dead.len() * 4 + migrations.len() * 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale() {
        let small = Msg::GetPage {
            page: 0,
            from: 0,
            epoch: 0,
        }
        .wire_size();
        let diff = Msg::Diff {
            page: 0,
            from: 0,
            epoch: 0,
            patches: vec![Patch {
                offset: 0,
                data: vec![0; 100],
            }],
        }
        .wire_size();
        assert!(diff > small + 100);
    }

    #[test]
    fn reply_page_counts_payload() {
        let r = Reply::Page {
            page: 1,
            data: vec![0; 4096],
        };
        assert!(r.wire_size() >= 4096);
    }
}
