//! Typed errors for the DSM transport and wire codec.
//!
//! The reliability layer treats every decode failure as a *recoverable*
//! transport event: a frame that fails checksum or structural validation
//! is dropped and recovered by retransmission, never by aborting the
//! node. These are the errors that surface from [`crate::codec`] and the
//! channel-transport paths in [`crate::node`] / [`crate::daemon`].

use std::fmt;

/// Errors of the DSM wire codec and transport paths.
///
/// Every variant is recoverable at the protocol level: corrupted or
/// truncated frames are dropped (and retransmitted by the sender's
/// timeout machinery); `Disconnected` means the peer endpoint is gone and
/// the run is tearing down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// The frame ended before the expected field.
    Truncated {
        /// Bytes required by the field being decoded.
        need: usize,
        /// Bytes remaining in the frame.
        have: usize,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// The frame checksum does not match its contents (bit corruption).
    Checksum {
        /// Checksum carried by the frame.
        expect: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
    /// A length field exceeds the frame or a sanity bound.
    Oversize {
        /// The declared length.
        len: usize,
        /// The maximum admissible here.
        max: usize,
    },
    /// The frame decoded fully but trailing bytes remain.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A string field is not valid UTF-8 (only higher-level protocols
    /// built on [`crate::codec::FrameReader::str`] carry strings; the DSM
    /// messages themselves are all-numeric).
    Utf8 {
        /// Length of the valid prefix.
        valid_up_to: usize,
    },
    /// A peer endpoint (daemon inbox or worker reply channel) is closed.
    Disconnected(&'static str),
    /// The cluster manifest (TOML file or environment override) is
    /// malformed, or a socket operation it implies failed (bad bind
    /// address, unresolvable peer).
    Manifest(String),
    /// A cluster node was declared dead by the failure detector. Surfaced
    /// to blocked waiters (lock/cv/barrier) so the application can take
    /// over the dead node's work instead of deadlocking.
    NodeFailed {
        /// The node declared dead.
        node: usize,
    },
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            DsmError::BadTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            DsmError::Checksum { expect, got } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expect:#010x}, computed {got:#010x}"
                )
            }
            DsmError::Oversize { len, max } => {
                write!(f, "length field {len} exceeds bound {max}")
            }
            DsmError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            DsmError::Utf8 { valid_up_to } => {
                write!(f, "invalid UTF-8 in string field after {valid_up_to} bytes")
            }
            DsmError::Disconnected(what) => write!(f, "transport disconnected: {what}"),
            DsmError::Manifest(reason) => write!(f, "cluster manifest: {reason}"),
            DsmError::NodeFailed { node } => write!(f, "node {node} declared failed"),
        }
    }
}

impl std::error::Error for DsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = DsmError::Checksum { expect: 1, got: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(DsmError::BadTag(0xff).to_string().contains("0xff"));
        assert!(DsmError::Truncated { need: 8, have: 3 }
            .to_string()
            .contains("need 8"));
        assert!(DsmError::NodeFailed { node: 3 }
            .to_string()
            .contains("node 3"));
    }
}
