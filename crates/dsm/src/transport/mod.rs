//! The DSM's message transports: in-process channels and real UDP
//! sockets behind one interface (DESIGN.md §5.12).
//!
//! A [`Transport`] produces, per rank, the four channel endpoints the
//! protocol layer runs on ([`RankWiring`]): senders toward every
//! daemon, senders toward every worker's reply channel, and this rank's
//! own two inboxes. `Node` and `Daemon` are transport-oblivious — they
//! speak `Envelope`/`ReplyEnvelope` over these channels exactly as they
//! always have, and the transport decides whether a send crosses a
//! thread boundary or a real network:
//!
//! * [`ChannelTransport`] wires all ranks of one process directly
//!   together — the deterministic test double, and the transport behind
//!   [`DsmSystem::run`](crate::DsmSystem::run);
//! * [`udp::UdpTransport`] wires **one** rank into a multi-process
//!   cluster described by a [`manifest::ClusterManifest`]: remote sends
//!   are encoded through the wire codec, framed into sequenced,
//!   checksummed datagrams, and driven through an ack/retransmit/dedup
//!   reliability layer against genuinely lossy I/O.
//!
//! The submodules carry the rest of the subsystem: [`manifest`] (peer
//! discovery), [`wire`] (the result-gather encoding), and [`clock`]
//! (the sanctioned real-sleep primitive for `simulate: true`).

pub mod clock;
pub mod manifest;
pub mod udp;
pub mod wire;

use crate::msg::{Envelope, ReplyEnvelope};
use crate::stats::NodeStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::Duration;

/// The channel endpoints one rank's protocol layer runs on.
///
/// Index convention matches the rest of the crate: `daemon_tx[d]`
/// reaches daemon `d`'s inbox, `reply_tx[w]` reaches worker `w`'s reply
/// channel. On the UDP transport, entries for remote ranks lead into
/// bounded per-link send queues instead of directly into an inbox.
pub struct RankWiring {
    /// Senders toward every daemon's inbox (used by this rank's worker
    /// for requests and by its daemon for daemon-to-daemon control).
    pub daemon_tx: Vec<Sender<Envelope>>,
    /// Senders toward every worker's reply channel (used by this rank's
    /// daemon to answer requests).
    pub reply_tx: Vec<Sender<ReplyEnvelope>>,
    /// This rank's daemon inbox.
    pub daemon_rx: Receiver<Envelope>,
    /// This rank's worker reply channel.
    pub reply_rx: Receiver<ReplyEnvelope>,
}

/// Counters of one rank's transport (all zero for channel transports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Datagrams put on the wire (including retransmissions and chaos
    /// duplicates, excluding chaos-dropped attempts).
    pub datagrams_sent: u64,
    /// Datagrams received and structurally parsed.
    pub datagrams_received: u64,
    /// Acknowledgement datagrams sent.
    pub acks_sent: u64,
    /// Data datagrams retransmitted by the RTO machinery.
    pub retransmits: u64,
    /// Retransmission rounds past `RetransmitPolicy::max_attempts`; the
    /// socket transport keeps trying at `max_rto` (a real peer may be
    /// slow rather than dead — death is the supervision layer's call).
    pub rto_escalations: u64,
    /// Duplicate data datagrams suppressed (and re-acked).
    pub dups_dropped: u64,
    /// Datagrams rejected by the frame checksum.
    pub corrupt_dropped: u64,
    /// Datagrams rejected as malformed for any other reason (truncated,
    /// bad tag, oversize, trailing bytes, undecodable payload).
    pub malformed_dropped: u64,
    /// Datagrams from another session (an earlier/later run on the same
    /// manifest) dropped unacknowledged.
    pub stale_session_dropped: u64,
    /// Out-of-order data datagrams parked for in-order delivery.
    pub reorder_stashed: u64,
    /// Out-of-order datagrams dropped because the reorder window was
    /// full (recovered by retransmission).
    pub reorder_overflow_dropped: u64,
    /// Outbound datagrams the chaos injector dropped.
    pub chaos_dropped: u64,
    /// Outbound datagrams the chaos injector corrupted in flight.
    pub chaos_corrupted: u64,
    /// Extra outbound copies the chaos injector duplicated.
    pub chaos_duplicated: u64,
    /// Sum of send→ack round-trip times (first transmission to first
    /// acknowledgement).
    pub rtt_total: Duration,
    /// Number of round trips in `rtt_total`.
    pub rtt_samples: u64,
}

impl TransportStats {
    /// Folds these counters into the owning machine's [`NodeStats`]
    /// (the socket-path analogue of `NodeStats::absorb_daemon`).
    pub fn fold_into(&self, stats: &mut NodeStats) {
        stats.measured_network += self.rtt_total;
        stats.datagrams_sent += self.datagrams_sent;
        stats.datagrams_received += self.datagrams_received;
        stats.retransmits += self.retransmits;
        stats.dups_dropped += self.dups_dropped;
        stats.corrupt_dropped += self.corrupt_dropped;
        stats.malformed_dropped +=
            self.malformed_dropped + self.stale_session_dropped + self.reorder_overflow_dropped;
    }

    /// Mean observed round-trip time, if any round trip completed.
    pub fn mean_rtt(&self) -> Option<Duration> {
        (self.rtt_samples > 0).then(|| self.rtt_total / self.rtt_samples as u32)
    }
}

/// A message transport: builds the channel fabric the protocol layer
/// runs on, reports its counters, and shuts down cleanly.
pub trait Transport {
    /// Number of ranks this transport connects.
    fn nprocs(&self) -> usize;

    /// Takes rank `r`'s wiring. Each rank's wiring can be taken once;
    /// a [`udp::UdpTransport`] only has its own rank's.
    ///
    /// # Panics
    /// If the wiring was already taken or `r` is not available here.
    fn wiring(&mut self, r: usize) -> RankWiring;

    /// Transport counters accumulated so far.
    fn stats(&self) -> TransportStats;

    /// Flushes outstanding traffic and stops any I/O threads. Idempotent;
    /// also runs on drop.
    fn shutdown(&mut self);
}

/// The in-process transport: every rank's channels wired directly
/// together, exactly the fabric [`DsmSystem::run`](crate::DsmSystem::run)
/// has always used. Deterministic (no real I/O, no real time) — the test
/// double the socket transport is checked against for bit-identical
/// output.
pub struct ChannelTransport {
    wirings: Vec<Option<RankWiring>>,
}

impl ChannelTransport {
    /// Builds the full-mesh channel fabric for `nprocs` ranks.
    pub fn new(nprocs: usize) -> Self {
        let mut daemon_tx = Vec::with_capacity(nprocs);
        let mut daemon_rx = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let (tx, rx) = unbounded::<Envelope>();
            daemon_tx.push(tx);
            daemon_rx.push(rx);
        }
        let mut reply_tx = Vec::with_capacity(nprocs);
        let mut reply_rx = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let (tx, rx) = unbounded::<ReplyEnvelope>();
            reply_tx.push(tx);
            reply_rx.push(rx);
        }
        let wirings = daemon_rx
            .into_iter()
            .zip(reply_rx)
            .map(|(drx, rrx)| {
                Some(RankWiring {
                    daemon_tx: daemon_tx.clone(),
                    reply_tx: reply_tx.clone(),
                    daemon_rx: drx,
                    reply_rx: rrx,
                })
            })
            .collect();
        Self { wirings }
    }
}

impl Transport for ChannelTransport {
    fn nprocs(&self) -> usize {
        self.wirings.len()
    }

    fn wiring(&mut self, r: usize) -> RankWiring {
        match self.wirings.get_mut(r).and_then(Option::take) {
            Some(w) => w,
            None => panic!("wiring for rank {r} unavailable or already taken"),
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    fn shutdown(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;

    #[test]
    fn channel_transport_routes_between_ranks() {
        let mut t = ChannelTransport::new(2);
        assert_eq!(t.nprocs(), 2);
        let w0 = t.wiring(0);
        let w1 = t.wiring(1);
        // Rank 0's sender toward daemon 1 reaches rank 1's daemon inbox.
        w0.daemon_tx[1]
            .send(Envelope {
                msg: Msg::Shutdown,
                arrive: Duration::ZERO,
                src: 0,
                seq: 9,
            })
            .expect("send");
        let env = w1.daemon_rx.recv().expect("recv");
        assert_eq!(env.seq, 9);
        assert!(t.stats() == TransportStats::default());
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn wiring_is_single_take() {
        let mut t = ChannelTransport::new(1);
        let _a = t.wiring(0);
        let _b = t.wiring(0);
    }

    #[test]
    fn fold_into_maps_counters() {
        let t = TransportStats {
            datagrams_sent: 5,
            retransmits: 2,
            corrupt_dropped: 1,
            malformed_dropped: 3,
            stale_session_dropped: 1,
            rtt_total: Duration::from_millis(10),
            rtt_samples: 4,
            ..Default::default()
        };
        let mut s = NodeStats::default();
        t.fold_into(&mut s);
        assert_eq!(s.datagrams_sent, 5);
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.corrupt_dropped, 1);
        assert_eq!(s.malformed_dropped, 4);
        assert_eq!(s.measured_network, Duration::from_millis(10));
        assert_eq!(t.mean_rtt(), Some(Duration::from_micros(2500)));
    }
}
