//! Wire-encodable values for the cluster result gather.
//!
//! A multi-process run computes each rank's closure result in a
//! different OS process, then all-gathers the results through the DSM
//! itself (see [`DsmSystem::run_wire`](crate::DsmSystem::run_wire)).
//! [`Wire`] is the encoding those results travel in: the same
//! checksummed [`FrameWriter`]/[`FrameReader`] discipline as the
//! protocol messages, so a corrupted gather blob is a typed
//! [`DsmError`], never a panic or a silently wrong result.

use crate::codec::{FrameReader, FrameWriter};
use crate::error::DsmError;
use crate::stats::NodeStats;
use std::time::Duration;

/// A value with a self-consistent frame encoding:
/// `decode(encode(x)) == x`.
pub trait Wire: Sized {
    /// Appends this value's fields to the frame.
    fn encode(&self, w: &mut FrameWriter);
    /// Reads the value back; every malformation is a typed error.
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError>;
}

/// Encodes one value as a complete checksummed frame with tag `tag`.
pub fn encode_frame<T: Wire>(tag: u8, value: &T) -> Vec<u8> {
    let mut w = FrameWriter::new(tag);
    value.encode(&mut w);
    w.finish()
}

/// Decodes a frame produced by [`encode_frame`], checking the tag, the
/// checksum, and that no trailing bytes remain.
pub fn decode_frame<T: Wire>(tag: u8, frame: &[u8]) -> Result<T, DsmError> {
    let mut r = FrameReader::checked(frame)?;
    let got = r.u8()?;
    if got != tag {
        return Err(DsmError::BadTag(got));
    }
    let value = T::decode(&mut r)?;
    r.done(value)
}

impl Wire for () {
    fn encode(&self, _w: &mut FrameWriter) {}
    fn decode(_r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u8(*self);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        r.u8()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut FrameWriter) {
        w.u8(*self as u8);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(r.u8()? != 0)
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut FrameWriter) {
        w.usize(*self);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        r.usize()
    }
}

impl Wire for i32 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u32(*self as u32);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(r.u32()? as i32)
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(r.u64()? as i64)
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut FrameWriter) {
        w.u64(self.to_bits());
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Wire for Duration {
    fn encode(&self, w: &mut FrameWriter) {
        w.u64(self.as_secs());
        w.u32(self.subsec_nanos());
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        let secs = r.u64()?;
        let nanos = r.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(DsmError::Oversize {
                len: nanos as usize,
                max: 999_999_999,
            });
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut FrameWriter) {
        w.str(self);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        r.str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut FrameWriter) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        // Every element is at least one byte on the wire, so `len`'s
        // remaining-bytes bound rejects absurd counts before allocating.
        let n = r.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut FrameWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(DsmError::BadTag(other)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut FrameWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut FrameWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Wire for NodeStats {
    fn encode(&self, w: &mut FrameWriter) {
        self.communication.encode(w);
        self.lock_cv.encode(w);
        self.barrier.encode(w);
        self.total.encode(w);
        self.modeled_network.encode(w);
        self.measured_network.encode(w);
        w.u64(self.datagrams_sent);
        w.u64(self.datagrams_received);
        w.u64(self.malformed_dropped);
        w.u64(self.page_fetches);
        w.u64(self.diffs_sent);
        w.u64(self.invalidations);
        w.u64(self.evictions);
        w.u64(self.migrations);
        w.u64(self.msgs_sent);
        w.u64(self.bytes_sent);
        w.u64(self.retransmits);
        w.u64(self.dups_dropped);
        w.u64(self.corrupt_dropped);
        w.u64(self.recoveries);
        self.recovery_time.encode(w);
        w.u64(self.heartbeats);
        w.u64(self.takeovers);
        w.u64(self.rejoins);
        w.u64(self.leases_broken);
        w.u64(self.obituaries);
        w.u64(self.waiters_woken);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(NodeStats {
            communication: Duration::decode(r)?,
            lock_cv: Duration::decode(r)?,
            barrier: Duration::decode(r)?,
            total: Duration::decode(r)?,
            modeled_network: Duration::decode(r)?,
            measured_network: Duration::decode(r)?,
            datagrams_sent: r.u64()?,
            datagrams_received: r.u64()?,
            malformed_dropped: r.u64()?,
            page_fetches: r.u64()?,
            diffs_sent: r.u64()?,
            invalidations: r.u64()?,
            evictions: r.u64()?,
            migrations: r.u64()?,
            msgs_sent: r.u64()?,
            bytes_sent: r.u64()?,
            retransmits: r.u64()?,
            dups_dropped: r.u64()?,
            corrupt_dropped: r.u64()?,
            recoveries: r.u64()?,
            recovery_time: Duration::decode(r)?,
            heartbeats: r.u64()?,
            takeovers: r.u64()?,
            rejoins: r.u64()?,
            leases_broken: r.u64()?,
            obituaries: r.u64()?,
            waiters_woken: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: u8 = 0x77;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let frame = encode_frame(TAG, &v);
        assert_eq!(decode_frame::<T>(TAG, &frame).expect("decode"), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(());
        roundtrip(0xabu8);
        roundtrip(true);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-123i32);
        roundtrip(i64::MIN);
        roundtrip(-0.5f64);
        roundtrip(Duration::new(3, 999_999_999));
        roundtrip("héllo".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some((7usize, "x".to_string())));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, 2u32, vec![3i64]));
    }

    #[test]
    fn node_stats_roundtrip() {
        let s = NodeStats {
            total: Duration::from_millis(1234),
            page_fetches: 42,
            measured_network: Duration::from_micros(77),
            datagrams_sent: 9,
            ..NodeStats::default()
        };
        let frame = encode_frame(TAG, &s);
        let back = decode_frame::<NodeStats>(TAG, &frame).expect("decode");
        assert_eq!(back.total, s.total);
        assert_eq!(back.page_fetches, 42);
        assert_eq!(back.measured_network, s.measured_network);
        assert_eq!(back.datagrams_sent, 9);
    }

    #[test]
    fn malformations_are_typed_errors() {
        let frame = encode_frame(TAG, &vec![1u32, 2, 3]);
        // Wrong tag.
        assert!(matches!(
            decode_frame::<Vec<u32>>(TAG + 1, &frame),
            Err(DsmError::BadTag(_))
        ));
        // Flipped byte: checksum.
        let mut bad = frame.clone();
        bad[3] ^= 0xff;
        assert!(matches!(
            decode_frame::<Vec<u32>>(TAG, &bad),
            Err(DsmError::Checksum { .. })
        ));
        // Truncation.
        assert!(decode_frame::<Vec<u32>>(TAG, &frame[..frame.len() - 6]).is_err());
        // Wrong type: trailing or short reads, never a panic.
        assert!(decode_frame::<u64>(TAG, &frame).is_err());
    }

    #[test]
    fn bad_duration_nanos_rejected() {
        let mut w = FrameWriter::new(TAG);
        w.u64(1);
        w.u32(2_000_000_000); // nanos field out of range
        let frame = w.finish();
        assert!(matches!(
            decode_frame::<Duration>(TAG, &frame),
            Err(DsmError::Oversize { .. })
        ));
    }
}
