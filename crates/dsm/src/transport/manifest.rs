//! Static cluster membership: who the ranks are and where they listen.
//!
//! A [`ClusterManifest`] is the socket transport's peer-discovery input:
//! one UDP address per rank, in rank order. It is loaded from a tiny TOML
//! subset (a `nodes` string array, the only key the transport needs) or
//! from the `GENOMEDSM_CLUSTER` environment variable (comma-separated
//! addresses), so a launcher can hand children their peer set without
//! touching the filesystem.
//!
//! ```toml
//! # cluster.toml — rank r binds nodes[r] and sends to the others
//! nodes = [
//!     "127.0.0.1:7700",
//!     "127.0.0.1:7701",
//!     "127.0.0.1:7702",
//!     "127.0.0.1:7703",
//! ]
//! ```
//!
//! A [`ClusterCtx`] pairs a manifest with this process's rank and the
//! run's session number; storing one in
//! [`DsmConfig::cluster`](crate::DsmConfig) is what switches
//! [`DsmSystem::run_wire`](crate::DsmSystem::run_wire) from the
//! in-process channel transport to the real UDP transport.

use crate::error::DsmError;
use std::net::SocketAddr;

/// Environment variable overriding the manifest file: comma-separated
/// `host:port` addresses in rank order.
pub const CLUSTER_ENV: &str = "GENOMEDSM_CLUSTER";

/// One UDP listen address per rank, in rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    /// `nodes[r]` is the address rank `r` binds and its peers send to.
    pub nodes: Vec<SocketAddr>,
}

impl ClusterManifest {
    /// Builds a manifest from already-resolved addresses.
    pub fn new(nodes: Vec<SocketAddr>) -> Self {
        Self { nodes }
    }

    /// A loopback manifest on consecutive ports starting at `base_port`.
    pub fn loopback(nprocs: usize, base_port: u16) -> Self {
        Self {
            nodes: (0..nprocs)
                .map(|r| {
                    let port = base_port + r as u16;
                    SocketAddr::from(([127, 0, 0, 1], port))
                })
                .collect(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the manifest names no ranks at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parses the TOML subset: comments (`#` to end of line), blank
    /// lines, and a `nodes = [ "host:port", ... ]` string array. Any
    /// other key is rejected — the format is deliberately closed so a
    /// typo fails loudly instead of being ignored.
    pub fn parse(text: &str) -> Result<Self, DsmError> {
        let mut tokens = Vec::new();
        for line in text.lines() {
            let code = strip_comment(line);
            tokenize(code, &mut tokens)?;
        }
        // Grammar: `nodes` `=` `[` str (`,` str)* `,`? `]`
        let mut it = tokens.into_iter();
        match it.next() {
            Some(Token::Word(w)) if w == "nodes" => {}
            Some(t) => return Err(bad(format!("expected `nodes`, found {t}"))),
            None => return Err(bad("empty manifest (expected a `nodes` array)")),
        }
        if !matches!(it.next(), Some(Token::Equals)) {
            return Err(bad("expected `=` after `nodes`"));
        }
        if !matches!(it.next(), Some(Token::Open)) {
            return Err(bad("expected `[` after `nodes =`"));
        }
        let mut nodes = Vec::new();
        let mut want_value = true;
        loop {
            match it.next() {
                Some(Token::Str(s)) if want_value => {
                    let addr: SocketAddr = s
                        .parse()
                        .map_err(|e| bad(format!("bad address {s:?}: {e}")))?;
                    nodes.push(addr);
                    want_value = false;
                }
                Some(Token::Comma) if !want_value => want_value = true,
                Some(Token::Close) => break,
                Some(t) => return Err(bad(format!("unexpected {t} in `nodes` array"))),
                None => return Err(bad("unterminated `nodes` array")),
            }
        }
        if let Some(t) = it.next() {
            return Err(bad(format!("unexpected {t} after `nodes` array")));
        }
        if nodes.is_empty() {
            return Err(bad("`nodes` array is empty"));
        }
        Self::finish(nodes)
    }

    /// Shared validation of a parsed address list: every rank must have
    /// its own distinct socket (two ranks on one address would fight
    /// over the bind and the peer map would alias them).
    fn finish(nodes: Vec<SocketAddr>) -> Result<Self, DsmError> {
        for (later, addr) in nodes.iter().enumerate() {
            if let Some(first) = nodes.iter().take(later).position(|a| a == addr) {
                return Err(bad(format!(
                    "duplicate address {addr} (ranks {first} and {later}): \
                     every rank needs its own socket"
                )));
            }
        }
        Ok(Self { nodes })
    }

    /// Checks the manifest against a configured processor count; a
    /// mismatch (say, `--procs 8` against a 4-node manifest) would leave
    /// ranks with no address or addresses with no rank.
    pub fn expect_ranks(&self, nprocs: usize) -> Result<(), DsmError> {
        if self.len() != nprocs {
            return Err(bad(format!(
                "rank count mismatch: the run wants {nprocs} rank(s) but the \
                 manifest names {} node(s)",
                self.len()
            )));
        }
        Ok(())
    }

    /// Loads a manifest: the `GENOMEDSM_CLUSTER` environment variable if
    /// set (comma-separated addresses), else the TOML file at `path`.
    pub fn load(path: &str) -> Result<Self, DsmError> {
        if let Ok(spec) = std::env::var(CLUSTER_ENV) {
            return Self::from_list(&spec);
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| bad(format!("cannot read {path}: {e}")))?;
        Self::parse(&text)
    }

    /// Parses a comma-separated address list (the env-variable format).
    pub fn from_list(spec: &str) -> Result<Self, DsmError> {
        let mut nodes = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            nodes.push(
                part.parse()
                    .map_err(|e| bad(format!("bad address {part:?}: {e}")))?,
            );
        }
        if nodes.is_empty() {
            return Err(bad("address list is empty"));
        }
        Self::finish(nodes)
    }

    /// Renders the manifest back to its TOML form (what a launcher
    /// writes for its children).
    pub fn to_toml(&self) -> String {
        let mut out = String::from("nodes = [\n");
        for addr in &self.nodes {
            out.push_str(&format!("    \"{addr}\",\n"));
        }
        out.push_str("]\n");
        out
    }
}

/// This process's place in a cluster run: which rank it is, the full
/// membership, and the run's session number.
///
/// The session number is stamped into every datagram and checked on
/// receive, so a sequence of DSM runs over the same manifest (phase 1
/// then phase 2, or a strategy sweep) cannot have a late retransmission
/// from run *k* corrupt the sequence spaces of run *k+1*. All ranks must
/// agree on it (derive it from the run ordinal, as the CLI does).
#[derive(Debug, Clone)]
pub struct ClusterCtx {
    /// This process's rank (index into `manifest.nodes`).
    pub rank: usize,
    /// The full cluster membership.
    pub manifest: ClusterManifest,
    /// Session discriminator carried by every datagram of this run.
    pub session: u64,
}

impl ClusterCtx {
    /// Builds a context after validating `rank` against the manifest.
    pub fn new(rank: usize, manifest: ClusterManifest, session: u64) -> Result<Self, DsmError> {
        if rank >= manifest.len() {
            return Err(bad(format!(
                "rank {rank} out of range for a {}-node manifest",
                manifest.len()
            )));
        }
        Ok(Self {
            rank,
            manifest,
            session,
        })
    }
}

fn bad(reason: impl Into<String>) -> DsmError {
    DsmError::Manifest(reason.into())
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

#[derive(Debug)]
enum Token {
    Word(String),
    Str(String),
    Equals,
    Open,
    Close,
    Comma,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Word(w) => write!(f, "`{w}`"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Equals => write!(f, "`=`"),
            Token::Open => write!(f, "`[`"),
            Token::Close => write!(f, "`]`"),
            Token::Comma => write!(f, "`,`"),
        }
    }
}

fn tokenize(code: &str, out: &mut Vec<Token>) -> Result<(), DsmError> {
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '=' => {
                chars.next();
                out.push(Token::Equals);
            }
            '[' => {
                chars.next();
                out.push(Token::Open);
            }
            ']' => {
                chars.next();
                out.push(Token::Close);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(bad("unterminated string")),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        w.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(w));
            }
            other => return Err(bad(format!("unexpected character {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_manifest() {
        let m = ClusterManifest::parse(
            "# four loopback ranks\nnodes = [\n  \"127.0.0.1:7700\", # rank 0\n  \
             \"127.0.0.1:7701\",\n  \"127.0.0.1:7702\",\n  \"127.0.0.1:7703\",\n]\n",
        )
        .unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.nodes[2], SocketAddr::from(([127, 0, 0, 1], 7702)));
    }

    #[test]
    fn roundtrips_through_to_toml() {
        let m = ClusterManifest::loopback(3, 9000);
        let again = ClusterManifest::parse(&m.to_toml()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "nodes = [",
            "nodes = [ 127.0.0.1:1 ]",
            "nodes = [ \"not an addr\" ]",
            "peers = [ \"127.0.0.1:1\" ]",
            "nodes = []",
            "nodes = [ \"127.0.0.1:1\" ] extra",
            "nodes = [ \"127.0.0.1:1\" \"127.0.0.1:2\" ]",
        ] {
            assert!(
                matches!(ClusterManifest::parse(bad), Err(DsmError::Manifest(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn rejects_duplicate_addresses_naming_both_ranks() {
        let err =
            ClusterManifest::parse("nodes = [ \"127.0.0.1:1\", \"127.0.0.1:2\", \"127.0.0.1:1\" ]")
                .unwrap_err();
        let DsmError::Manifest(reason) = &err else {
            panic!("wrong error type: {err:?}");
        };
        assert!(
            reason.contains("duplicate") && reason.contains("ranks 0 and 2"),
            "unhelpful message: {reason}"
        );
        // Same check guards the env-list format.
        assert!(matches!(
            ClusterManifest::from_list("127.0.0.1:9, 127.0.0.1:9"),
            Err(DsmError::Manifest(_))
        ));
    }

    #[test]
    fn expect_ranks_reports_both_counts() {
        let m = ClusterManifest::loopback(4, 9200);
        assert!(m.expect_ranks(4).is_ok());
        let err = m.expect_ranks(8).unwrap_err();
        let DsmError::Manifest(reason) = &err else {
            panic!("wrong error type: {err:?}");
        };
        assert!(
            reason.contains("8 rank(s)") && reason.contains("4 node(s)"),
            "unhelpful message: {reason}"
        );
    }

    #[test]
    fn env_list_format() {
        let m = ClusterManifest::from_list("127.0.0.1:1, 127.0.0.1:2 ,127.0.0.1:3").unwrap();
        assert_eq!(m.len(), 3);
        assert!(ClusterManifest::from_list("  ,  ").is_err());
    }

    #[test]
    fn ctx_validates_rank() {
        let m = ClusterManifest::loopback(2, 9100);
        assert!(ClusterCtx::new(1, m.clone(), 7).is_ok());
        assert!(ClusterCtx::new(2, m, 7).is_err());
    }
}
