//! The clock abstraction behind [`NetworkModel::simulate`].
//!
//! Protocol code is forbidden to call `thread::sleep` (the workspace
//! lint's no-sleep rule): a bare sleep is unkillable, invisible to
//! shutdown, and untestable. [`Clock::sleep`] provides the one sanctioned
//! way to really elapse modeled time — a `Condvar::wait_timeout` loop on
//! a gate that [`Clock::cancel`] can open, so a run being torn down never
//! waits out a pending simulated delay.
//!
//! [`NetworkModel::simulate`]: crate::NetworkModel

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A cancellable sleep source shared by everything that really elapses
/// modeled time (the `simulate: true` network path).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl Clock {
    /// A fresh, uncancelled clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Really elapses `d` of wall time, unless/until the clock is
    /// cancelled. Returns `true` if the full duration elapsed, `false`
    /// if the sleep was cut short by [`Clock::cancel`].
    pub fn sleep(&self, d: Duration) -> bool {
        if d.is_zero() {
            return true;
        }
        let deadline = Instant::now() + d;
        let (lock, cv) = &*self.gate;
        let mut cancelled = lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if *cancelled {
                return false;
            }
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return true;
            };
            cancelled = cv
                .wait_timeout(cancelled, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Opens the gate: every current and future [`Clock::sleep`] on this
    /// clock (or a clone of it) returns immediately.
    pub fn cancel(&self) {
        let (lock, cv) = &*self.gate;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_elapses_requested_time() {
        let clock = Clock::new();
        let t0 = Instant::now();
        assert!(clock.sleep(Duration::from_millis(15)));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn zero_sleep_is_free() {
        assert!(Clock::new().sleep(Duration::ZERO));
    }

    #[test]
    fn cancel_interrupts_a_long_sleep() {
        let clock = Clock::new();
        let other = clock.clone();
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || other.sleep(Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(10));
        clock.cancel();
        assert!(!handle.join().expect("sleeper panicked"));
        assert!(t0.elapsed() < Duration::from_secs(10));
        // Once cancelled, later sleeps return immediately too.
        assert!(!clock.sleep(Duration::from_secs(60)));
    }
}
