//! The real-sockets transport: one UDP socket per rank, reliability on
//! top of genuinely lossy I/O.
//!
//! [`UdpTransport`] wires **one** rank of a multi-process cluster. Every
//! remote `Envelope`/`ReplyEnvelope` is encoded through the PR 2 wire
//! codec, wrapped in an outer checksummed datagram frame carrying
//! `(session, from, chan, seq, fragment)` headers, and driven through a
//! sender-side ack/retransmit machine and a receiver-side
//! dedup/reorder/reassembly machine, so the protocol layer above sees
//! exactly the channel semantics it has always had: reliable, in-order
//! delivery per `(peer, chan)` link.
//!
//! ## Thread structure (per process)
//!
//! * one **forwarder** per remote peer and direction (bounded queues):
//!   drains the channel the protocol layer sends into, encodes the
//!   payload, and hands it to the pump;
//! * one **pump**: assigns per-link sequence numbers, fragments large
//!   payloads, transmits, and owns the retransmission timers
//!   ([`RetransmitPolicy`] backoff; after `max_attempts` it keeps
//!   retrying at `max_rto` and counts the escalation — a slow peer is
//!   not a dead peer, and declaring death is the supervision layer's
//!   job, not the transport's);
//! * one **receiver**: parses datagrams ([`parse_datagram`] — every
//!   malformation is a typed [`DsmError`] and a counter, never a panic),
//!   acknowledges, deduplicates, restores per-link order through a
//!   bounded reorder window, reassembles fragments, and delivers into
//!   the local inboxes.
//!
//! ## Chaos on real datagrams
//!
//! A [`FaultInjector`] plugs into the pump's transmit step: `Drop`
//! suppresses the `send_to`, `Corrupt` flips a byte of the copy on the
//! wire (the receiver's checksum rejects it), and `Deliver { extra_delay,
//! duplicates }` holds the copy in a delay queue / emits extra copies —
//! producing *real* loss, corruption, duplication, and reordering for
//! the reliability layer to recover from. Fates apply to data datagrams
//! only; losing an ack is indistinguishable from losing the data it
//! acknowledges, so injecting on acks would only re-test the same path.
//!
//! ## Shutdown
//!
//! [`Transport::shutdown`] joins the forwarders (their input channels
//! disconnect when the protocol layer drops its senders), waits for the
//! unacked window to drain, then lingers the receiver briefly so peer
//! retransmissions still get acknowledged instead of wedging the peer's
//! window against its own shutdown timeout.

use super::manifest::ClusterCtx;
use super::{RankWiring, Transport, TransportStats};
use crate::codec::{decode_msg, decode_reply, FrameReader, FrameWriter};
use crate::error::DsmError;
use crate::msg::{Envelope, ReplyEnvelope};
use crate::net::{
    FaultInjector, LinkMsg, RetransmitPolicy, TransmitFate, CHAN_DAEMON, CHAN_REPLY, CHAN_REQ,
};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Outer-frame tag of a data datagram.
pub const TPT_DATA: u8 = 0x40;
/// Outer-frame tag of an acknowledgement datagram.
pub const TPT_ACK: u8 = 0x41;

/// Largest payload fragment per datagram: comfortably under the UDP
/// payload ceiling (~65 507 B) with room for headers.
const MAX_FRAG_PAYLOAD: usize = 32 * 1024;
/// Largest reassembled payload the receiver will buffer (matches the
/// codec's frame bound).
const MAX_MESSAGE: usize = 1 << 28;
/// Out-of-order datagrams parked per link before the receiver starts
/// shedding (shed copies are recovered by retransmission).
const REORDER_CAP: usize = 512;
/// Capacity of each per-link forwarder queue and of the pump's command
/// queue (the "bounded queues" of the send path).
const QUEUE_CAP: usize = 1024;
/// Receiver poll interval (also the shutdown-flag check cadence).
const RECV_POLL: Duration = Duration::from_millis(10);
/// After shutdown begins: receiver exits once the wire has been quiet
/// this long...
const LINGER_IDLE: Duration = Duration::from_millis(250);
/// ...or after this hard cap, whichever comes first.
const LINGER_CAP: Duration = Duration::from_secs(3);
/// Hard cap on waiting for the unacked window to drain at shutdown.
const DRAIN_CAP: Duration = Duration::from_secs(5);

/// One parsed data datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Session discriminator of the sending run.
    pub session: u64,
    /// Sender's rank.
    pub from: usize,
    /// Logical channel ([`CHAN_REQ`], [`CHAN_REPLY`], [`CHAN_DAEMON`]).
    pub chan: u8,
    /// Transport sequence number on the `(from, chan)` link.
    pub seq: u64,
    /// Fragment index within the logical message.
    pub frag_idx: u32,
    /// Total fragments of the logical message.
    pub frag_count: u32,
    /// The protocol layer's own sequence number (`Envelope::seq`).
    pub env_seq: u64,
    /// Virtual arrival time carried by the envelope, in nanoseconds.
    pub arrive_ns: u64,
    /// This fragment's slice of the encoded message.
    pub payload: Vec<u8>,
}

/// One parsed acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckFrame {
    /// Session discriminator.
    pub session: u64,
    /// Acknowledging rank.
    pub from: usize,
    /// Channel of the acknowledged datagram.
    pub chan: u8,
    /// Sequence number being acknowledged.
    pub seq: u64,
}

/// A parsed datagram: data or acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datagram {
    /// A sequenced data fragment.
    Data(DataFrame),
    /// An acknowledgement.
    Ack(AckFrame),
}

/// Parses one received datagram. Pure and total: every malformed input —
/// truncated, oversized, bit-flipped, wrong tag, trailing garbage — is a
/// typed [`DsmError`], never a panic. The receive loop maps each error
/// onto a [`TransportStats`] counter and drops the datagram.
pub fn parse_datagram(frame: &[u8]) -> Result<Datagram, DsmError> {
    let mut r = FrameReader::checked(frame)?;
    let tag = r.u8()?;
    match tag {
        TPT_DATA => {
            let session = r.u64()?;
            let from = r.usize()?;
            let chan = r.u8()?;
            let seq = r.u64()?;
            let frag_idx = r.u32()?;
            let frag_count = r.u32()?;
            let env_seq = r.u64()?;
            let arrive_ns = r.u64()?;
            let payload = r.bytes()?;
            if frag_count == 0 || frag_idx >= frag_count {
                return Err(DsmError::Oversize {
                    len: frag_idx as usize,
                    max: frag_count.saturating_sub(1) as usize,
                });
            }
            r.done(Datagram::Data(DataFrame {
                session,
                from,
                chan,
                seq,
                frag_idx,
                frag_count,
                env_seq,
                arrive_ns,
                payload,
            }))
        }
        TPT_ACK => {
            let session = r.u64()?;
            let from = r.usize()?;
            let chan = r.u8()?;
            let seq = r.u64()?;
            r.done(Datagram::Ack(AckFrame {
                session,
                from,
                chan,
                seq,
            }))
        }
        other => Err(DsmError::BadTag(other)),
    }
}

/// Encodes a data datagram (the exact inverse of [`parse_datagram`]).
fn encode_data(d: &DataFrame) -> Vec<u8> {
    let mut w = FrameWriter::new(TPT_DATA);
    w.u64(d.session);
    w.usize(d.from);
    w.u8(d.chan);
    w.u64(d.seq);
    w.u32(d.frag_idx);
    w.u32(d.frag_count);
    w.u64(d.env_seq);
    w.u64(d.arrive_ns);
    w.bytes(&d.payload);
    w.finish()
}

fn encode_ack(a: &AckFrame) -> Vec<u8> {
    let mut w = FrameWriter::new(TPT_ACK);
    w.u64(a.session);
    w.usize(a.from);
    w.u8(a.chan);
    w.u64(a.seq);
    w.finish()
}

// ---------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------

struct Shared {
    socket: UdpSocket,
    peers: Vec<std::net::SocketAddr>,
    rank: usize,
    nprocs: usize,
    session: u64,
    /// Set once shutdown begins; receiver switches to linger mode and
    /// the pump exits when its work is done.
    stop: AtomicBool,
    stats: Mutex<TransportStats>,
    /// Unacked outbound datagrams; guarded drain signal for shutdown.
    inflight: Mutex<usize>,
    drained: Condvar,
}

impl Shared {
    fn stats(&self) -> std::sync::MutexGuard<'_, TransportStats> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn send_ack(&self, to: usize, chan: u8, seq: u64) {
        // `to` comes from a wire-derived rank; an out-of-range value
        // means a malformed datagram and the ack is silently dropped.
        let Some(&addr) = self.peers.get(to) else {
            return;
        };
        let bytes = encode_ack(&AckFrame {
            session: self.session,
            from: self.rank,
            chan,
            seq,
        });
        if self.socket.send_to(&bytes, addr).is_ok() {
            self.stats().acks_sent += 1;
        }
    }
}

enum PumpCmd {
    Data {
        peer: usize,
        chan: u8,
        env_seq: u64,
        arrive_ns: u64,
        payload: Vec<u8>,
    },
    Ack {
        peer: usize,
        chan: u8,
        seq: u64,
    },
    Stop,
}

// ---------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------

/// One rank's endpoint of a multi-process UDP cluster (module docs
/// describe the full machinery).
pub struct UdpTransport {
    shared: Arc<Shared>,
    wiring: Option<RankWiring>,
    pump_tx: Sender<PumpCmd>,
    forwarders: Vec<std::thread::JoinHandle<()>>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
    done: bool,
}

impl UdpTransport {
    /// Binds `ctx.rank`'s socket and spawns the transport threads.
    ///
    /// `faults` is the chaos injector applied to outbound data
    /// datagrams; in a cluster run the system strips it from the
    /// protocol layer's config (which would otherwise simulate the same
    /// faults a second time in virtual time) and installs it here.
    pub fn bind(
        ctx: &ClusterCtx,
        policy: RetransmitPolicy,
        faults: Option<Arc<dyn FaultInjector>>,
    ) -> Result<Self, DsmError> {
        let nprocs = ctx.manifest.len();
        let rank = ctx.rank;
        if rank >= nprocs {
            return Err(DsmError::Manifest(format!(
                "rank {rank} out of range for a {nprocs}-node manifest"
            )));
        }
        let bind_addr = ctx.manifest.nodes[rank];
        let socket = UdpSocket::bind(bind_addr)
            .map_err(|e| DsmError::Manifest(format!("cannot bind {bind_addr}: {e}")))?;
        socket
            .set_read_timeout(Some(RECV_POLL))
            .map_err(|e| DsmError::Manifest(format!("cannot set socket timeout: {e}")))?;
        let shared = Arc::new(Shared {
            socket,
            peers: ctx.manifest.nodes.clone(),
            rank,
            nprocs,
            session: ctx.session,
            stop: AtomicBool::new(false),
            stats: Mutex::new(TransportStats::default()),
            inflight: Mutex::new(0),
            drained: Condvar::new(),
        });

        // Local inboxes: delivered-to by the receiver thread and by
        // same-rank sends, consumed by this rank's daemon and worker.
        let (daemon_inbox_tx, daemon_rx) = unbounded::<Envelope>();
        let (reply_local_tx, reply_rx) = unbounded::<ReplyEnvelope>();

        let (pump_tx, pump_rx) = bounded::<PumpCmd>(QUEUE_CAP);

        // Per-remote-peer forwarders with bounded queues. The channel a
        // remote entry of the wiring leads into blocks the protocol
        // layer when QUEUE_CAP messages are already in flight toward
        // that peer — the transport's backpressure.
        let mut forwarders = Vec::new();
        let mut daemon_tx = Vec::with_capacity(nprocs);
        let mut reply_tx = Vec::with_capacity(nprocs);
        for peer in 0..nprocs {
            if peer == rank {
                daemon_tx.push(daemon_inbox_tx.clone());
                reply_tx.push(reply_local_tx.clone());
                continue;
            }
            let (etx, erx) = bounded::<Envelope>(QUEUE_CAP);
            daemon_tx.push(etx);
            let ptx = pump_tx.clone();
            forwarders.push(std::thread::spawn(move || {
                forward_envelopes(rank, peer, &erx, &ptx);
            }));
            let (rtx, rrx) = bounded::<ReplyEnvelope>(QUEUE_CAP);
            reply_tx.push(rtx);
            let ptx = pump_tx.clone();
            forwarders.push(std::thread::spawn(move || {
                forward_replies(peer, &rrx, &ptx);
            }));
        }

        let mut io_threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            io_threads.push(std::thread::spawn(move || {
                Pump::new(shared, policy, faults).run(&pump_rx);
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let ptx = pump_tx.clone();
            io_threads.push(std::thread::spawn(move || {
                recv_loop(&shared, &daemon_inbox_tx, &reply_local_tx, &ptx);
            }));
        }

        Ok(Self {
            shared,
            wiring: Some(RankWiring {
                daemon_tx,
                reply_tx,
                daemon_rx,
                reply_rx,
            }),
            pump_tx,
            forwarders,
            io_threads,
            done: false,
        })
    }

    /// The rank this transport serves.
    pub fn rank(&self) -> usize {
        self.shared.rank
    }
}

impl Transport for UdpTransport {
    fn nprocs(&self) -> usize {
        self.shared.nprocs
    }

    fn wiring(&mut self, r: usize) -> RankWiring {
        if r != self.shared.rank {
            panic!(
                "UdpTransport serves rank {} only, not rank {r}",
                self.shared.rank
            );
        }
        match self.wiring.take() {
            Some(w) => w,
            None => panic!("wiring for rank {r} unavailable or already taken"),
        }
    }

    fn stats(&self) -> TransportStats {
        *self.shared.stats()
    }

    fn shutdown(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        // 1. Forwarders exit when the protocol layer's senders are gone
        //    (the caller drops the wiring before shutting down) and all
        //    queued messages reached the pump.
        for handle in self.forwarders.drain(..) {
            let _ = handle.join();
        }
        // 2. Wait for every outbound datagram to be acknowledged, with
        //    a hard cap (a vanished peer must not wedge teardown).
        let deadline = Instant::now() + DRAIN_CAP;
        let mut inflight = self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *inflight > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            inflight = self
                .shared
                .drained
                .wait_timeout(inflight, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        drop(inflight);
        // 3. Stop the pump; linger the receiver (it keeps re-acking peer
        //    retransmissions until the wire goes quiet).
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.pump_tx.send(PumpCmd::Stop);
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drains one rank's outbound envelopes toward `peer`. The logical
/// channel is recovered from the envelope source: the local worker
/// (`src == rank`) sends requests, the local daemon (`src == nprocs +
/// rank`) sends daemon-to-daemon control.
fn forward_envelopes(rank: usize, peer: usize, rx: &Receiver<Envelope>, pump: &Sender<PumpCmd>) {
    while let Ok(env) = rx.recv() {
        let chan = if env.src == rank {
            CHAN_REQ
        } else {
            CHAN_DAEMON
        };
        let payload = crate::codec::encode_msg(&env.msg);
        if pump
            .send(PumpCmd::Data {
                peer,
                chan,
                env_seq: env.seq,
                arrive_ns: env.arrive.as_nanos() as u64,
                payload,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Drains the local daemon's replies toward worker `peer`.
fn forward_replies(peer: usize, rx: &Receiver<ReplyEnvelope>, pump: &Sender<PumpCmd>) {
    while let Ok(env) = rx.recv() {
        let payload = crate::codec::encode_reply(&env.reply);
        if pump
            .send(PumpCmd::Data {
                peer,
                chan: CHAN_REPLY,
                env_seq: env.seq,
                arrive_ns: env.arrive.as_nanos() as u64,
                payload,
            })
            .is_err()
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Pump: sequencing, fragmentation, transmission, retransmission
// ---------------------------------------------------------------------

struct Pending {
    bytes: Vec<u8>,
    peer: usize,
    chan: u8,
    attempt: u32,
    due: Instant,
    first_sent: Instant,
}

/// A chaos-delayed (or duplicated) copy waiting to hit the wire.
struct Delayed {
    due: Instant,
    tie: u64,
    peer: usize,
    bytes: Vec<u8>,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.tie) == (other.due, other.tie)
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.tie).cmp(&(other.due, other.tie))
    }
}

/// Identifies one in-flight frame: (peer, channel, sequence number).
type FrameKey = (usize, u8, u64);

struct Pump {
    shared: Arc<Shared>,
    policy: RetransmitPolicy,
    faults: Option<Arc<dyn FaultInjector>>,
    next_seq: HashMap<(usize, u8), u64>,
    unacked: HashMap<FrameKey, Pending>,
    timers: BinaryHeap<Reverse<(Instant, FrameKey)>>,
    delayed: BinaryHeap<Reverse<Delayed>>,
    tie: u64,
}

impl Pump {
    fn new(
        shared: Arc<Shared>,
        policy: RetransmitPolicy,
        faults: Option<Arc<dyn FaultInjector>>,
    ) -> Self {
        Self {
            shared,
            policy,
            faults,
            next_seq: HashMap::new(),
            unacked: HashMap::new(),
            timers: BinaryHeap::new(),
            delayed: BinaryHeap::new(),
            tie: 0,
        }
    }

    fn run(mut self, rx: &Receiver<PumpCmd>) {
        loop {
            let now = Instant::now();
            self.fire_due(now);
            let wait = self.next_deadline(now).unwrap_or(Duration::from_millis(50));
            match rx.recv_timeout(wait) {
                Ok(PumpCmd::Data {
                    peer,
                    chan,
                    env_seq,
                    arrive_ns,
                    payload,
                }) => self.send_new(peer, chan, env_seq, arrive_ns, payload),
                Ok(PumpCmd::Ack { peer, chan, seq }) => self.on_ack(peer, chan, seq),
                Ok(PumpCmd::Stop) | Err(RecvTimeoutError::Disconnected) => {
                    // Flush chaos-delayed copies that are already due;
                    // anything further out is abandoned (its data was
                    // acked or the run is over).
                    self.fire_due(Instant::now());
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    fn next_deadline(&self, now: Instant) -> Option<Duration> {
        let timer = self.timers.peek().map(|Reverse((due, _))| *due);
        let delayed = self.delayed.peek().map(|Reverse(d)| d.due);
        let due = match (timer, delayed) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        Some(
            due.saturating_duration_since(now)
                .max(Duration::from_micros(100)),
        )
    }

    fn fire_due(&mut self, now: Instant) {
        while let Some(Reverse(d)) = self.delayed.peek() {
            if d.due > now {
                break;
            }
            let Some(Reverse(d)) = self.delayed.pop() else {
                break;
            };
            if self
                .shared
                .socket
                .send_to(&d.bytes, self.shared.peers[d.peer])
                .is_ok()
            {
                self.shared.stats().datagrams_sent += 1;
            }
        }
        while let Some(Reverse((due, key))) = self.timers.peek().copied() {
            if due > now {
                break;
            }
            self.timers.pop();
            let Some(pending) = self.unacked.get_mut(&key) else {
                continue; // acked; stale timer entry
            };
            if pending.due != due {
                continue; // superseded by a later retransmission timer
            }
            pending.attempt += 1;
            let attempt = pending.attempt;
            let rto = if attempt >= self.policy.max_attempts {
                self.shared.stats().rto_escalations += 1;
                self.policy.max_rto
            } else {
                self.policy.rto(attempt)
            };
            pending.due = now + rto;
            let bytes = pending.bytes.clone();
            let (peer, chan) = (pending.peer, pending.chan);
            self.timers.push(Reverse((now + rto, key)));
            self.shared.stats().retransmits += 1;
            self.transmit(peer, chan, key.2, attempt, bytes);
        }
    }

    fn send_new(&mut self, peer: usize, chan: u8, env_seq: u64, arrive_ns: u64, payload: Vec<u8>) {
        let frags: Vec<&[u8]> = if payload.is_empty() {
            vec![&[]]
        } else {
            payload.chunks(MAX_FRAG_PAYLOAD).collect()
        };
        let frag_count = frags.len() as u32;
        let now = Instant::now();
        for (idx, frag) in frags.into_iter().enumerate() {
            let counter = self.next_seq.entry((peer, chan)).or_insert(0);
            let seq = *counter;
            *counter += 1;
            let bytes = encode_data(&DataFrame {
                session: self.shared.session,
                from: self.shared.rank,
                chan,
                seq,
                frag_idx: idx as u32,
                frag_count,
                env_seq,
                arrive_ns,
                payload: frag.to_vec(),
            });
            let rto = self.policy.rto(0);
            self.unacked.insert(
                (peer, chan, seq),
                Pending {
                    bytes: bytes.clone(),
                    peer,
                    chan,
                    attempt: 0,
                    due: now + rto,
                    first_sent: now,
                },
            );
            self.timers.push(Reverse((now + rto, (peer, chan, seq))));
            {
                let mut inflight = self
                    .shared
                    .inflight
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                *inflight += 1;
            }
            self.transmit(peer, chan, seq, 0, bytes);
        }
    }

    /// One transmission attempt, with the chaos injector's verdict
    /// applied to the real datagram.
    fn transmit(&mut self, peer: usize, chan: u8, seq: u64, attempt: u32, bytes: Vec<u8>) {
        let fate = match &self.faults {
            None => TransmitFate::Deliver {
                extra_delay: Duration::ZERO,
                duplicates: 0,
            },
            Some(inj) => {
                // Map the link onto the same virtual ids the in-process
                // injector sees, so one seeded plan produces comparable
                // adversity on both transports.
                let nprocs = self.shared.nprocs;
                let (from, to) = match chan {
                    CHAN_REQ => (self.shared.rank, nprocs + peer),
                    CHAN_REPLY => (nprocs + self.shared.rank, peer),
                    _ => (nprocs + self.shared.rank, nprocs + peer),
                };
                inj.fate(&LinkMsg {
                    from,
                    to,
                    chan,
                    seq,
                    attempt,
                })
            }
        };
        match fate {
            TransmitFate::Drop => {
                self.shared.stats().chaos_dropped += 1;
            }
            TransmitFate::Corrupt => {
                let mut copy = bytes;
                let mid = copy.len() / 2;
                copy[mid] ^= 0xff;
                if self
                    .shared
                    .socket
                    .send_to(&copy, self.shared.peers[peer])
                    .is_ok()
                {
                    let mut stats = self.shared.stats();
                    stats.datagrams_sent += 1;
                    stats.chaos_corrupted += 1;
                }
            }
            TransmitFate::Deliver {
                extra_delay,
                duplicates,
            } => {
                if extra_delay.is_zero() {
                    if self
                        .shared
                        .socket
                        .send_to(&bytes, self.shared.peers[peer])
                        .is_ok()
                    {
                        self.shared.stats().datagrams_sent += 1;
                    }
                } else {
                    self.tie += 1;
                    self.delayed.push(Reverse(Delayed {
                        due: Instant::now() + extra_delay,
                        tie: self.tie,
                        peer,
                        bytes: bytes.clone(),
                    }));
                }
                for extra in 0..duplicates {
                    self.tie += 1;
                    self.shared.stats().chaos_duplicated += 1;
                    self.delayed.push(Reverse(Delayed {
                        due: Instant::now()
                            + extra_delay
                            + Duration::from_micros(200) * (extra as u32 + 1),
                        tie: self.tie,
                        peer,
                        bytes: bytes.clone(),
                    }));
                }
            }
        }
    }

    fn on_ack(&mut self, peer: usize, chan: u8, seq: u64) {
        let Some(pending) = self.unacked.remove(&(peer, chan, seq)) else {
            return; // duplicate ack
        };
        // Karn's rule: only un-retransmitted datagrams yield RTT samples
        // (a retransmitted one's ack is ambiguous).
        if pending.attempt == 0 {
            let rtt = pending.first_sent.elapsed();
            let mut stats = self.shared.stats();
            stats.rtt_total += rtt;
            stats.rtt_samples += 1;
        }
        let mut inflight = self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *inflight -= 1;
        if *inflight == 0 {
            self.shared.drained.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// Receiver: parse, ack, dedup, reorder, reassemble, deliver
// ---------------------------------------------------------------------

#[derive(Default)]
struct LinkRecv {
    /// Next transport sequence number to deliver.
    expected: u64,
    /// Out-of-order datagrams parked until the gap fills.
    stash: BTreeMap<u64, DataFrame>,
    /// Reassembly buffer of the in-progress logical message.
    partial: Vec<u8>,
    /// Fragments accumulated so far.
    partial_frags: u32,
}

fn recv_loop(
    shared: &Arc<Shared>,
    daemon_inbox: &Sender<Envelope>,
    reply_local: &Sender<ReplyEnvelope>,
    pump: &Sender<PumpCmd>,
) {
    let mut links: HashMap<(usize, u8), LinkRecv> = HashMap::new();
    let mut buf = vec![0u8; 65536];
    let mut stop_seen: Option<Instant> = None;
    let mut last_activity = Instant::now();
    loop {
        match shared.socket.recv_from(&mut buf) {
            Ok((n, _src)) => {
                last_activity = Instant::now();
                // `n` is bounded by the buffer the kernel filled, but
                // decode paths stay index-free: a too-large count drops
                // the datagram instead of panicking.
                let Some(datagram) = buf.get(..n) else {
                    continue;
                };
                handle_datagram(
                    shared,
                    datagram,
                    &mut links,
                    daemon_inbox,
                    reply_local,
                    pump,
                );
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                // Transient socket error (e.g. ICMP-induced); keep going.
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            let since = *stop_seen.get_or_insert_with(Instant::now);
            // Linger: keep re-acking peer retransmissions until the wire
            // goes quiet, so a slower peer's shutdown drains too.
            if last_activity.elapsed() >= LINGER_IDLE || since.elapsed() >= LINGER_CAP {
                return;
            }
        }
    }
}

fn handle_datagram(
    shared: &Arc<Shared>,
    frame: &[u8],
    links: &mut HashMap<(usize, u8), LinkRecv>,
    daemon_inbox: &Sender<Envelope>,
    reply_local: &Sender<ReplyEnvelope>,
    pump: &Sender<PumpCmd>,
) {
    let parsed = match parse_datagram(frame) {
        Ok(p) => p,
        Err(DsmError::Checksum { .. }) => {
            shared.stats().corrupt_dropped += 1;
            return;
        }
        Err(_) => {
            shared.stats().malformed_dropped += 1;
            return;
        }
    };
    shared.stats().datagrams_received += 1;
    match parsed {
        Datagram::Ack(ack) => {
            if ack.session != shared.session {
                shared.stats().stale_session_dropped += 1;
                return;
            }
            let _ = pump.send(PumpCmd::Ack {
                peer: ack.from,
                chan: ack.chan,
                seq: ack.seq,
            });
        }
        Datagram::Data(data) => {
            if data.session != shared.session {
                // A retransmission from an earlier run on this manifest
                // (or a datagram from a run we haven't joined yet).
                // Dropped *unacknowledged*: if the sender is a live later
                // run, it must keep retransmitting until we join it.
                shared.stats().stale_session_dropped += 1;
                return;
            }
            if data.from >= shared.nprocs
                || data.from == shared.rank
                || !matches!(data.chan, CHAN_REQ | CHAN_REPLY | CHAN_DAEMON)
            {
                shared.stats().malformed_dropped += 1;
                return;
            }
            let link = links.entry((data.from, data.chan)).or_default();
            if data.seq < link.expected {
                // Duplicate of an already-delivered datagram: the ack
                // was lost; re-ack so the sender's window drains.
                shared.stats().dups_dropped += 1;
                shared.send_ack(data.from, data.chan, data.seq);
                return;
            }
            if data.seq > link.expected {
                if link.stash.len() < REORDER_CAP {
                    shared.send_ack(data.from, data.chan, data.seq);
                    if link.stash.insert(data.seq, data).is_none() {
                        shared.stats().reorder_stashed += 1;
                    } else {
                        shared.stats().dups_dropped += 1;
                    }
                } else {
                    // Window full: shed without acking; the sender's
                    // retransmission redelivers once the gap fills.
                    shared.stats().reorder_overflow_dropped += 1;
                }
                return;
            }
            shared.send_ack(data.from, data.chan, data.seq);
            accept_in_order(shared, link, data, daemon_inbox, reply_local);
            // The gap may have closed: drain consecutive stashed seqs.
            while let Some(next) = link.stash.remove(&link.expected) {
                accept_in_order(shared, link, next, daemon_inbox, reply_local);
            }
        }
    }
}

/// Consumes the next-in-order datagram of a link: advances the window,
/// accumulates fragments, and on message completion decodes and
/// delivers into the local inboxes.
fn accept_in_order(
    shared: &Arc<Shared>,
    link: &mut LinkRecv,
    data: DataFrame,
    daemon_inbox: &Sender<Envelope>,
    reply_local: &Sender<ReplyEnvelope>,
) {
    link.expected = data.seq + 1;
    if data.frag_idx != link.partial_frags || link.partial.len() + data.payload.len() > MAX_MESSAGE
    {
        // A fragment stream that restarts or overflows is only possible
        // with a buggy/malicious sender; typed drop, never a panic.
        shared.stats().malformed_dropped += 1;
        link.partial.clear();
        link.partial_frags = 0;
        if data.frag_idx != 0 {
            return;
        }
    }
    link.partial.extend_from_slice(&data.payload);
    link.partial_frags += 1;
    if link.partial_frags < data.frag_count {
        return; // more fragments coming
    }
    let payload = std::mem::take(&mut link.partial);
    link.partial_frags = 0;
    let arrive = Duration::from_nanos(data.arrive_ns);
    match data.chan {
        CHAN_REPLY => match decode_reply(&payload) {
            Ok(reply) => {
                let _ = reply_local.send(ReplyEnvelope {
                    reply,
                    arrive,
                    src: shared.nprocs + data.from,
                    seq: data.env_seq,
                });
            }
            Err(_) => shared.stats().malformed_dropped += 1,
        },
        _ => match decode_msg(&payload) {
            Ok(msg) => {
                let src = if data.chan == CHAN_REQ {
                    data.from
                } else {
                    shared.nprocs + data.from
                };
                let _ = daemon_inbox.send(Envelope {
                    msg,
                    arrive,
                    src,
                    seq: data.env_seq,
                });
            }
            Err(_) => shared.stats().malformed_dropped += 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_roundtrip() {
        let d = DataFrame {
            session: 7,
            from: 2,
            chan: CHAN_REQ,
            seq: 99,
            frag_idx: 0,
            frag_count: 1,
            env_seq: 5,
            arrive_ns: 123_456,
            payload: vec![1, 2, 3],
        };
        assert_eq!(
            parse_datagram(&encode_data(&d)).expect("parse"),
            Datagram::Data(d)
        );
        let a = AckFrame {
            session: 7,
            from: 1,
            chan: CHAN_REPLY,
            seq: 42,
        };
        assert_eq!(
            parse_datagram(&encode_ack(&a)).expect("parse"),
            Datagram::Ack(a)
        );
    }

    #[test]
    fn parse_rejects_malformations_without_panicking() {
        let d = DataFrame {
            session: 1,
            from: 0,
            chan: CHAN_DAEMON,
            seq: 0,
            frag_idx: 0,
            frag_count: 1,
            env_seq: 0,
            arrive_ns: 0,
            payload: vec![9; 64],
        };
        let good = encode_data(&d);
        // Truncations at every length.
        for cut in 0..good.len() {
            assert!(parse_datagram(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Every single-byte corruption fails the checksum (or a typed
        // structural check), never panics.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            let _ = parse_datagram(&bad);
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert!(parse_datagram(&long).is_err());
        // Unknown tag with a valid checksum.
        let w = FrameWriter::new(0x33);
        assert!(matches!(
            parse_datagram(&w.finish()),
            Err(DsmError::BadTag(0x33))
        ));
        // Fragment header inconsistency.
        let mut zero_frags = d.clone();
        zero_frags.frag_count = 0;
        assert!(parse_datagram(&encode_data(&zero_frags)).is_err());
    }
}
