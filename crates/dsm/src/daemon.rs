//! The per-node communication daemon.
//!
//! JIAJIA services remote requests with a SIGIO handler; here each node
//! has a daemon thread that owns the node's **home pages** and its share
//! of the **lock**, **condition-variable**, and (on node 0) **barrier**
//! managers. Daemons never block on other daemons, so the system cannot
//! deadlock at the protocol level: workers block only on daemon replies,
//! and daemons answer every request in bounded time.
//!
//! ## Virtual time
//!
//! Every request arrives with a virtual timestamp ([`Envelope::arrive`]).
//! The daemon grants replies at virtual times that respect the protocol's
//! causality:
//!
//! * page fetches and diff acks leave at the request's arrival;
//! * a lock grant leaves at `max(request arrival, last release)`;
//! * a cv grant pairs a waiter with a signal and leaves at the later of
//!   the two;
//! * the barrier grant leaves at the **maximum arrival over all nodes** —
//!   the step that makes simulated speed-ups honest.
//!
//! The reply's network cost is added on top, so the worker's clock lands
//! exactly where a real cluster's would (modulo the cost model).

use crate::msg::{Envelope, Msg, Notice, Patch, Reply, ReplyEnvelope};
use crate::net::NetworkModel;
use crate::page::apply_patches;
use crossbeam::channel::{Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Per-lock manager state.
#[derive(Default)]
struct LockState {
    /// Node currently holding the lock.
    holder: Option<usize>,
    /// Waiting acquirers (FIFO): `(node, last_seq, arrival)`.
    waiters: VecDeque<(usize, u64, Duration)>,
    /// Virtual time of the last release.
    free_at: Duration,
    /// Write notices attached to this lock, with their sequence numbers.
    history: Vec<(u64, Notice)>,
    /// Next sequence number.
    next_seq: u64,
}

/// Per-condition-variable manager state (counting semantics: a signal
/// wakes exactly one waiter, signals accumulate).
#[derive(Default)]
struct CvState {
    /// Virtual arrival times of pending (unconsumed) signals.
    pending: VecDeque<Duration>,
    /// Waiting nodes (FIFO): `(node, last_seq, arrival)`.
    waiters: VecDeque<(usize, u64, Duration)>,
    /// Write notices attached to this cv, with sequence numbers.
    history: Vec<(u64, Notice)>,
    /// Next sequence number.
    next_seq: u64,
}

/// Barrier manager state (lives on node 0's daemon).
#[derive(Default)]
struct BarrierState {
    /// Nodes that arrived this round.
    arrived: Vec<usize>,
    /// Union of the round's notices.
    notices: Vec<Notice>,
    /// Latest virtual arrival of the round.
    latest: Duration,
    /// Completed barrier rounds (the migration epoch).
    rounds: u64,
}

/// State and main loop of one daemon.
pub struct Daemon {
    id: usize,
    nprocs: usize,
    page_size: usize,
    network: NetworkModel,
    home_migration: bool,
    inbox: Receiver<Envelope>,
    reply_tx: Vec<Sender<ReplyEnvelope>>,
    daemon_tx: Vec<Sender<Envelope>>,
    /// Home pages owned by this node (created zeroed on first touch).
    home_pages: HashMap<u64, Vec<u8>>,
    locks: HashMap<u32, LockState>,
    cvs: HashMap<u32, CvState>,
    barrier: BarrierState,
    /// Migration epoch this daemon has reached.
    epoch: u64,
    /// Pages announced as migrating in but not yet adopted.
    incoming: std::collections::HashSet<u64>,
    /// Requests parked until an epoch bump or a page adoption.
    parked: Vec<Envelope>,
}

impl Daemon {
    /// Creates a daemon for node `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        nprocs: usize,
        page_size: usize,
        network: NetworkModel,
        home_migration: bool,
        inbox: Receiver<Envelope>,
        reply_tx: Vec<Sender<ReplyEnvelope>>,
        daemon_tx: Vec<Sender<Envelope>>,
    ) -> Self {
        Self {
            id,
            nprocs,
            page_size,
            network,
            home_migration,
            inbox,
            reply_tx,
            daemon_tx,
            home_pages: HashMap::new(),
            locks: HashMap::new(),
            cvs: HashMap::new(),
            barrier: BarrierState::default(),
            epoch: 0,
            incoming: std::collections::HashSet::new(),
            parked: Vec::new(),
        }
    }

    /// Sends a protocol message to another daemon, departing at `when`.
    fn send_daemon(&self, to: usize, when: Duration, msg: Msg) {
        let arrive = when + self.network.cost(self.id, to, msg.wire_size());
        let _ = self.daemon_tx[to].send(Envelope { msg, arrive });
    }

    /// Whether a page request must wait for migration bookkeeping.
    fn must_park(&self, page: u64, epoch: u64) -> bool {
        epoch > self.epoch || self.incoming.contains(&page)
    }

    /// Re-processes parked requests that may have become serviceable,
    /// bumping their arrival to the unblocking event's time.
    fn drain_parked(&mut self, unblocked_at: Duration) {
        let parked = std::mem::take(&mut self.parked);
        for mut env in parked {
            env.arrive = env.arrive.max(unblocked_at);
            self.dispatch(env);
        }
    }

    /// Sends `reply` to node `to`, departing (virtually) at `when`.
    fn reply(&self, to: usize, when: Duration, reply: Reply) {
        let arrive = when + self.network.cost(self.id, to, reply.wire_size());
        // A closed reply channel means the worker panicked; the daemon
        // keeps servicing others so the run can tear down cleanly.
        let _ = self.reply_tx[to].send(ReplyEnvelope { reply, arrive });
    }

    /// History notices newer than `last_seq`, deduplicated by
    /// (page, writer) so acquirers can filter out only their own writes.
    /// The history is append-only with ascending sequence numbers, so the
    /// start is found by binary search — grants cost O(log n + new).
    fn notices_since(history: &[(u64, Notice)], last_seq: u64) -> Vec<Notice> {
        let start = history.partition_point(|(seq, _)| *seq <= last_seq);
        let mut seen = std::collections::HashSet::new();
        history[start..]
            .iter()
            .filter(|(_, n)| seen.insert((n.page, n.writer)))
            .map(|(_, n)| *n)
            .collect()
    }

    /// Runs the service loop until `Shutdown`.
    pub fn run(mut self) {
        while let Ok(env) = self.inbox.recv() {
            if matches!(env.msg, Msg::Shutdown) {
                break;
            }
            self.dispatch(env);
        }
    }

    /// Handles one request (possibly re-injected from the parked queue).
    fn dispatch(&mut self, Envelope { msg, arrive }: Envelope) {
        match msg {
            Msg::GetPage { page, from, epoch } => {
                if self.must_park(page, epoch) {
                    self.parked.push(Envelope {
                        msg: Msg::GetPage { page, from, epoch },
                        arrive,
                    });
                    return;
                }
                let data = self
                    .home_pages
                    .entry(page)
                    .or_insert_with(|| vec![0; self.page_size])
                    .clone();
                self.reply(from, arrive, Reply::Page { page, data });
            }
            Msg::Diff {
                page,
                from,
                patches,
                epoch,
            } => {
                if self.must_park(page, epoch) {
                    self.parked.push(Envelope {
                        msg: Msg::Diff {
                            page,
                            from,
                            patches,
                            epoch,
                        },
                        arrive,
                    });
                    return;
                }
                self.apply_diff(page, &patches);
                self.reply(from, arrive, Reply::DiffAck);
            }
            Msg::Acquire {
                lock,
                from,
                last_seq,
            } => self.handle_acquire(lock, from, last_seq, arrive),
            Msg::Release {
                lock,
                from,
                notices,
            } => self.handle_release(lock, from, notices, arrive),
            Msg::SetCv { cv, notices, .. } => self.handle_setcv(cv, notices, arrive),
            Msg::WaitCv { cv, from, last_seq } => self.handle_waitcv(cv, from, last_seq, arrive),
            Msg::Barrier { from, notices } => self.handle_barrier(from, notices, arrive),
            Msg::MigrationNotice { epoch, incoming } => {
                debug_assert!(epoch >= self.epoch);
                self.epoch = epoch;
                self.incoming.extend(incoming);
                self.drain_parked(arrive);
            }
            Msg::MigrateOut { page, to } => {
                let data = self
                    .home_pages
                    .remove(&page)
                    .unwrap_or_else(|| vec![0; self.page_size]);
                self.send_daemon(to, arrive, Msg::AdoptPage { page, data });
            }
            Msg::AdoptPage { page, data } => {
                self.home_pages.insert(page, data);
                self.incoming.remove(&page);
                self.drain_parked(arrive);
            }
            Msg::Shutdown => unreachable!("handled by run()"),
        }
    }

    fn apply_diff(&mut self, page: u64, patches: &[Patch]) {
        let home = self
            .home_pages
            .entry(page)
            .or_insert_with(|| vec![0; self.page_size]);
        apply_patches(home, patches);
    }

    fn handle_acquire(&mut self, lock: u32, from: usize, last_seq: u64, arrive: Duration) {
        debug_assert_eq!(lock as usize % self.nprocs, self.id, "wrong manager");
        let st = self.locks.entry(lock).or_default();
        if st.holder.is_none() {
            st.holder = Some(from);
            let notices = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = arrive.max(st.free_at);
            self.reply(from, when, Reply::LockGranted { notices, seq });
        } else {
            st.waiters.push_back((from, last_seq, arrive));
        }
    }

    fn handle_release(&mut self, lock: u32, from: usize, notices: Vec<Notice>, arrive: Duration) {
        let st = self.locks.entry(lock).or_default();
        assert_eq!(
            st.holder,
            Some(from),
            "node {from} released lock {lock} it does not hold"
        );
        for n in notices {
            st.next_seq += 1;
            st.history.push((st.next_seq, n));
        }
        st.holder = None;
        st.free_at = st.free_at.max(arrive);
        if let Some((next, last_seq, req_arrive)) = st.waiters.pop_front() {
            st.holder = Some(next);
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = req_arrive.max(st.free_at);
            self.reply(
                next,
                when,
                Reply::LockGranted {
                    notices: granted,
                    seq,
                },
            );
        }
    }

    fn handle_setcv(&mut self, cv: u32, notices: Vec<Notice>, arrive: Duration) {
        let st = self.cvs.entry(cv).or_default();
        for n in notices {
            st.next_seq += 1;
            st.history.push((st.next_seq, n));
        }
        if let Some((node, last_seq, wait_arrive)) = st.waiters.pop_front() {
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = wait_arrive.max(arrive);
            self.reply(
                node,
                when,
                Reply::CvGranted {
                    notices: granted,
                    seq,
                },
            );
        } else {
            st.pending.push_back(arrive);
        }
    }

    fn handle_waitcv(&mut self, cv: u32, from: usize, last_seq: u64, arrive: Duration) {
        let st = self.cvs.entry(cv).or_default();
        if let Some(signal_arrive) = st.pending.pop_front() {
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = arrive.max(signal_arrive);
            self.reply(
                from,
                when,
                Reply::CvGranted {
                    notices: granted,
                    seq,
                },
            );
        } else {
            st.waiters.push_back((from, last_seq, arrive));
        }
    }

    fn handle_barrier(&mut self, from: usize, notices: Vec<Notice>, arrive: Duration) {
        assert_eq!(self.id, 0, "barrier messages go to node 0");
        self.barrier.arrived.push(from);
        self.barrier.notices.extend(notices);
        self.barrier.latest = self.barrier.latest.max(arrive);
        if self.barrier.arrived.len() == self.nprocs {
            let round = std::mem::take(&mut self.barrier);
            // Deduplicate by (page, writer): a node must invalidate a page
            // another node wrote even if it wrote the page itself (its
            // cached copy misses the other writer's merged diff).
            let dedup: std::collections::HashSet<Notice> = round.notices.into_iter().collect();
            let notices: Vec<Notice> = dedup.into_iter().collect();
            self.barrier.rounds = round.rounds + 1;
            let migrations = if self.home_migration {
                self.decide_migrations(&notices)
            } else {
                Vec::new()
            };
            // Epoch sync: every daemon advances, whether or not it adopts
            // pages, so parked future-epoch requests always drain.
            let mut incoming_per: HashMap<usize, Vec<u64>> = HashMap::new();
            for &(page, to) in &migrations {
                incoming_per.entry(to).or_default().push(page);
            }
            let epoch = self.barrier.rounds;
            for d in 0..self.nprocs {
                let incoming = incoming_per.remove(&d).unwrap_or_default();
                self.send_daemon(d, round.latest, Msg::MigrationNotice { epoch, incoming });
            }
            for &(page, to) in &migrations {
                // The old home ships the page to the new home.
                let old = notices
                    .iter()
                    .find(|n| n.page == page)
                    .map(|n| n.home)
                    .expect("migration decided from a notice");
                self.send_daemon(old, round.latest, Msg::MigrateOut { page, to });
            }
            for node in round.arrived {
                self.reply(
                    node,
                    round.latest,
                    Reply::BarrierDone {
                        notices: notices.clone(),
                        migrations: migrations.clone(),
                    },
                );
            }
        }
    }
}

impl Daemon {
    /// The migration policy (JIAJIA's single-writer heuristic): a page
    /// written this round by exactly one node, which is not its home,
    /// migrates to that writer — its diffs become local applications.
    fn decide_migrations(&self, notices: &[Notice]) -> Vec<(u64, usize)> {
        let mut per_page: HashMap<u64, (usize, usize, bool)> = HashMap::new(); // page -> (writer, home, multi)
        for n in notices {
            per_page
                .entry(n.page)
                .and_modify(|e| {
                    if e.0 != n.writer {
                        e.2 = true;
                    }
                })
                .or_insert((n.writer, n.home, false));
        }
        let mut out: Vec<(u64, usize)> = per_page
            .into_iter()
            .filter(|&(_, (writer, home, multi))| !multi && writer != home)
            .map(|(page, (writer, _, _))| (page, writer))
            .collect();
        out.sort_unstable();
        out
    }
}
