//! The per-node communication daemon.
//!
//! JIAJIA services remote requests with a SIGIO handler; here each node
//! has a daemon thread that owns the node's **home pages** and its share
//! of the **lock**, **condition-variable**, and (on node 0) **barrier**
//! managers. Daemons never block on other daemons, so the system cannot
//! deadlock at the protocol level: workers block only on daemon replies,
//! and daemons answer every request in bounded time.
//!
//! ## Virtual time
//!
//! Every request arrives with a virtual timestamp ([`Envelope::arrive`]).
//! The daemon grants replies at virtual times that respect the protocol's
//! causality:
//!
//! * page fetches and diff acks leave at the request's arrival;
//! * a lock grant leaves at `max(request arrival, last release)`;
//! * a cv grant pairs a waiter with a signal and leaves at the later of
//!   the two;
//! * the barrier grant leaves at the **maximum arrival over all nodes** —
//!   the step that makes simulated speed-ups honest.
//!
//! The reply's network cost is added on top, so the worker's clock lands
//! exactly where a real cluster's would (modulo the cost model).

use crate::codec;
use crate::config::SupervisionConfig;
use crate::msg::{Envelope, Msg, Notice, Patch, Reply, ReplyEnvelope, SYSTEM_SRC};
use crate::net::{
    FaultInjector, LinkMsg, NetworkModel, RetransmitPolicy, TransmitFate, CHAN_DAEMON,
};
use crate::page::apply_patches;
use crate::stats::DaemonStats;
use crossbeam::channel::{Receiver, Sender};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Per-lock manager state.
#[derive(Default)]
struct LockState {
    /// Node currently holding the lock.
    holder: Option<usize>,
    /// Waiting acquirers (FIFO): `(node, last_seq, arrival, transport seq)`.
    waiters: VecDeque<(usize, u64, Duration, u64)>,
    /// Virtual time of the last release.
    free_at: Duration,
    /// Write notices attached to this lock, with their sequence numbers.
    history: Vec<(u64, Notice)>,
    /// Next sequence number.
    next_seq: u64,
}

/// Per-condition-variable manager state (counting semantics: a signal
/// wakes exactly one waiter, signals accumulate).
#[derive(Default)]
struct CvState {
    /// Virtual arrival times of pending (unconsumed) signals.
    pending: VecDeque<Duration>,
    /// Waiting nodes (FIFO): `(node, last_seq, arrival, transport seq)`.
    waiters: VecDeque<(usize, u64, Duration, u64)>,
    /// Write notices attached to this cv, with sequence numbers.
    history: Vec<(u64, Notice)>,
    /// Next sequence number.
    next_seq: u64,
}

/// Barrier manager state (lives on node 0's daemon).
#[derive(Default)]
struct BarrierState {
    /// Nodes that arrived this round, with their transport seqs.
    arrived: Vec<(usize, u64)>,
    /// Union of the round's notices.
    notices: Vec<Notice>,
    /// Latest virtual arrival of the round.
    latest: Duration,
    /// Completed barrier rounds (the migration epoch).
    rounds: u64,
}

/// State and main loop of one daemon.
pub struct Daemon {
    id: usize,
    nprocs: usize,
    page_size: usize,
    network: NetworkModel,
    home_migration: bool,
    inbox: Receiver<Envelope>,
    reply_tx: Vec<Sender<ReplyEnvelope>>,
    daemon_tx: Vec<Sender<Envelope>>,
    /// Home pages owned by this node (created zeroed on first touch).
    home_pages: HashMap<u64, Vec<u8>>,
    locks: HashMap<u32, LockState>,
    cvs: HashMap<u32, CvState>,
    barrier: BarrierState,
    /// Migration epoch this daemon has reached.
    epoch: u64,
    /// Pages announced as migrating in but not yet adopted.
    incoming: std::collections::HashSet<u64>,
    /// Requests parked until an epoch bump or a page adoption.
    parked: Vec<Envelope>,
    /// Fault injector for outbound daemon links (`None` = perfect).
    faults: Option<Arc<dyn FaultInjector>>,
    /// Retransmission policy for daemon → daemon control traffic.
    retransmit: RetransmitPolicy,
    /// Receiver half of duplicate suppression: next expected transport
    /// sequence number per source link.
    req_next: HashMap<usize, u64>,
    /// Last reply sent per worker, keyed by the request's transport seq —
    /// resent verbatim when a retransmitted request proves the original
    /// reply (or its ack) was lost.
    reply_cache: HashMap<usize, (u64, Reply)>,
    /// Next transport sequence number per outbound daemon link.
    daemon_seq: Vec<u64>,
    /// Transport counters, returned by [`Daemon::run`].
    stats: DaemonStats,
    /// Supervision layer configuration (failure detection + recovery).
    supervision: SupervisionConfig,
    /// Nodes this daemon has seen obituaries for (the failure detector's
    /// confirmed-dead set; ordered so reports are deterministic).
    dead: BTreeSet<usize>,
    /// Every node that has *ever* fail-stopped, regardless of later
    /// re-admission. Wait cancellation is driven by this history, not by
    /// the current dead set: a consumer that parks *after* a producer's
    /// rejoin was admitted would otherwise never learn about the death
    /// (its chunks stop at the crash point — the joiner idles until the
    /// handback barrier) and block forever.
    ever_died: BTreeSet<usize>,
    /// Heartbeat gossip table: virtual time each node was last heard
    /// from (heartbeats plus any request traffic).
    last_heard: Vec<Duration>,
    /// Membership epoch: bumped on every processed obituary and every
    /// admitted rejoin, and gossiped in [`Reply::FailureReport`] so
    /// probers observe view changes, not just the current dead set.
    membership_epoch: u64,
    /// Cumulative home-migration decisions of the whole run (daemon 0
    /// only — it decides every migration). Shipped in
    /// [`Reply::RejoinAck`] so a joiner can rebuild `home_overrides` it
    /// missed while dead; stale overrides would fetch pages from homes
    /// that already shipped them away.
    migration_log: Vec<(u64, usize)>,
    /// Rejoin announcements parked until the barrier reaches their
    /// `admit_at_round` boundary (daemon 0 only): `(node, incarnation,
    /// admit_at_round, arrive, rseq)`. Admitting mid-workload would make
    /// in-flight rounds wait for a rank whose next arrival targets a
    /// later round — a barrier deadlock.
    pending_rejoins: Vec<(usize, u32, u64, Duration, u64)>,
    /// Latest admitted incarnation per rank. Fences stale obituaries: on
    /// a lossy transport a delayed duplicate death notice of incarnation
    /// `k` must not re-kill a rank whose incarnation `k+1` was admitted.
    admitted_inc: Vec<u32>,
}

impl Daemon {
    /// Creates a daemon for node `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        nprocs: usize,
        page_size: usize,
        network: NetworkModel,
        home_migration: bool,
        inbox: Receiver<Envelope>,
        reply_tx: Vec<Sender<ReplyEnvelope>>,
        daemon_tx: Vec<Sender<Envelope>>,
        faults: Option<Arc<dyn FaultInjector>>,
        retransmit: RetransmitPolicy,
        supervision: SupervisionConfig,
    ) -> Self {
        Self {
            id,
            nprocs,
            page_size,
            network,
            home_migration,
            inbox,
            reply_tx,
            daemon_tx,
            home_pages: HashMap::new(),
            locks: HashMap::new(),
            cvs: HashMap::new(),
            barrier: BarrierState::default(),
            epoch: 0,
            incoming: std::collections::HashSet::new(),
            parked: Vec::new(),
            faults,
            retransmit,
            req_next: HashMap::new(),
            reply_cache: HashMap::new(),
            daemon_seq: vec![0; nprocs],
            stats: DaemonStats::default(),
            supervision,
            dead: BTreeSet::new(),
            ever_died: BTreeSet::new(),
            last_heard: vec![Duration::ZERO; nprocs],
            membership_epoch: 0,
            migration_log: Vec::new(),
            pending_rejoins: Vec::new(),
            admitted_inc: vec![0; nprocs],
        }
    }

    /// Sends a protocol message to another daemon, departing at `when`,
    /// through the same reliability loop workers use: the deterministic
    /// fate of every copy and ack is resolved up front, lost copies are
    /// retransmitted with backed-off virtual timers, and the final
    /// attempt is delivered unconditionally.
    fn send_daemon(&mut self, to: usize, when: Duration, msg: Msg) {
        let seq = self.daemon_seq[to];
        self.daemon_seq[to] += 1;
        let src = self.nprocs + self.id;
        let cost = self.network.cost(self.id, to, msg.wire_size());
        let injector = match (&self.faults, to == self.id) {
            (Some(f), false) => Some(Arc::clone(f)),
            _ => None,
        };
        let Some(injector) = injector else {
            let _ = self.daemon_tx[to].send(Envelope {
                msg,
                arrive: when + cost,
                src,
                seq,
            });
            return;
        };
        let max = self.retransmit.max_attempts.max(1);
        let mut t = when;
        for attempt in 0..max {
            let forced = attempt + 1 >= max;
            let fwd = LinkMsg {
                from: src,
                to: self.nprocs + to,
                chan: CHAN_DAEMON,
                seq,
                attempt,
            };
            let mut sent = false;
            if let Some((extra_delay, duplicates)) =
                self.resolve_fate(injector.fate(&fwd), forced, Some(&msg))
            {
                let arrive = t + cost + extra_delay;
                for _ in 0..=duplicates {
                    let _ = self.daemon_tx[to].send(Envelope {
                        msg: msg.clone(),
                        arrive,
                        src,
                        seq,
                    });
                }
                sent = true;
            }
            if sent {
                let ack = LinkMsg {
                    from: self.nprocs + to,
                    to: src,
                    chan: CHAN_DAEMON,
                    seq,
                    attempt,
                };
                if forced
                    || self
                        .resolve_fate(injector.fate(&ack), forced, None)
                        .is_some()
                {
                    return;
                }
            }
            t += self.retransmit.rto(attempt);
            self.stats.retransmits += 1;
        }
    }

    /// Resolves one transmission fate (see `Node::resolve_fate`): corrupt
    /// request copies are proven undecodable against the real wire frame
    /// and then treated as losses.
    fn resolve_fate(
        &mut self,
        fate: TransmitFate,
        forced: bool,
        msg: Option<&Msg>,
    ) -> Option<(Duration, u8)> {
        match fate {
            TransmitFate::Deliver {
                extra_delay,
                duplicates,
            } => Some((extra_delay, duplicates)),
            _ if forced => Some((Duration::ZERO, 0)),
            TransmitFate::Drop => None,
            TransmitFate::Corrupt => {
                if let Some(msg) = msg {
                    let mut frame = codec::encode_msg(msg);
                    let idx = self.stats.corrupt_dropped as usize % frame.len();
                    frame[idx] ^= 0x40;
                    debug_assert!(
                        codec::decode_msg(&frame).is_err(),
                        "corrupted frame must not decode"
                    );
                }
                self.stats.corrupt_dropped += 1;
                None
            }
        }
    }

    /// Receiver half of the reliability layer: per-source-link sequence
    /// dedup. Returns true when the message is fresh and must be
    /// dispatched; duplicates are suppressed here, resending the cached
    /// reply when the duplicate proves a reply (or ack) was lost.
    fn accept(&mut self, env: &Envelope) -> bool {
        if env.src == SYSTEM_SRC {
            return true;
        }
        let next = self.req_next.entry(env.src).or_insert(0);
        if env.seq >= *next {
            debug_assert_eq!(env.seq, *next, "per-link sends are in order");
            *next = env.seq + 1;
            return true;
        }
        self.stats.dups_dropped += 1;
        if env.src < self.nprocs {
            if let Some((seq, reply)) = self.reply_cache.get(&env.src) {
                if *seq == env.seq {
                    let (seq, reply) = (*seq, reply.clone());
                    self.stats.retransmits += 1;
                    self.reply(env.src, env.arrive, seq, reply);
                }
            }
        }
        false
    }

    /// Whether a page request must wait for migration bookkeeping.
    fn must_park(&self, page: u64, epoch: u64) -> bool {
        epoch > self.epoch || self.incoming.contains(&page)
    }

    /// Re-processes parked requests that may have become serviceable,
    /// bumping their arrival to the unblocking event's time.
    fn drain_parked(&mut self, unblocked_at: Duration) {
        let parked = std::mem::take(&mut self.parked);
        for mut env in parked {
            env.arrive = env.arrive.max(unblocked_at);
            self.dispatch(env);
        }
    }

    /// Sends `reply` to node `to`, departing (virtually) at `when`. The
    /// reply is stamped with the request's transport sequence `seq` (the
    /// worker matches on it) and cached for resending if the worker's
    /// retransmission timer proves it lost.
    fn reply(&mut self, to: usize, when: Duration, seq: u64, reply: Reply) {
        let arrive = when + self.network.cost(self.id, to, reply.wire_size());
        self.reply_cache.insert(to, (seq, reply.clone()));
        // A closed reply channel means the worker panicked; the daemon
        // keeps servicing others so the run can tear down cleanly.
        let _ = self.reply_tx[to].send(ReplyEnvelope {
            reply,
            arrive,
            src: self.nprocs + self.id,
            seq,
        });
    }

    /// History notices newer than `last_seq`, deduplicated by
    /// (page, writer) so acquirers can filter out only their own writes.
    /// The history is append-only with ascending sequence numbers, so the
    /// start is found by binary search — grants cost O(log n + new).
    fn notices_since(history: &[(u64, Notice)], last_seq: u64) -> Vec<Notice> {
        let start = history.partition_point(|(seq, _)| *seq <= last_seq);
        let mut seen = std::collections::HashSet::new();
        history[start..]
            .iter()
            .filter(|(_, n)| seen.insert((n.page, n.writer)))
            .map(|(_, n)| *n)
            .collect()
    }

    /// Runs the service loop until `Shutdown`, returning the daemon's
    /// transport counters.
    pub fn run(mut self) -> DaemonStats {
        while let Ok(env) = self.inbox.recv() {
            if matches!(env.msg, Msg::Shutdown) {
                break;
            }
            if self.accept(&env) {
                self.dispatch(env);
            }
        }
        self.stats
    }

    /// Handles one request (possibly re-injected from the parked queue).
    fn dispatch(&mut self, env: Envelope) {
        let Envelope {
            msg,
            arrive,
            src,
            seq: rseq,
        } = env;
        if self.supervision.enabled && src < self.nprocs {
            // Heartbeat gossip piggybacks on every worker request.
            self.last_heard[src] = self.last_heard[src].max(arrive);
        }
        match msg {
            Msg::GetPage { page, from, epoch } => {
                if self.must_park(page, epoch) {
                    self.parked.push(Envelope {
                        msg: Msg::GetPage { page, from, epoch },
                        arrive,
                        src,
                        seq: rseq,
                    });
                    return;
                }
                let data = self
                    .home_pages
                    .entry(page)
                    .or_insert_with(|| vec![0; self.page_size])
                    .clone();
                self.reply(from, arrive, rseq, Reply::Page { page, data });
            }
            Msg::Diff {
                page,
                from,
                patches,
                epoch,
            } => {
                if self.must_park(page, epoch) {
                    self.parked.push(Envelope {
                        msg: Msg::Diff {
                            page,
                            from,
                            patches,
                            epoch,
                        },
                        arrive,
                        src,
                        seq: rseq,
                    });
                    return;
                }
                self.apply_diff(page, &patches);
                self.reply(from, arrive, rseq, Reply::DiffAck);
            }
            Msg::Acquire {
                lock,
                from,
                last_seq,
            } => self.handle_acquire(lock, from, last_seq, arrive, rseq),
            Msg::Release {
                lock,
                from,
                notices,
            } => self.handle_release(lock, from, notices, arrive),
            Msg::SetCv { cv, notices, .. } => self.handle_setcv(cv, notices, arrive),
            Msg::WaitCv { cv, from, last_seq } => {
                self.handle_waitcv(cv, from, last_seq, arrive, rseq)
            }
            Msg::Barrier { from, notices } => self.handle_barrier(from, notices, arrive, rseq),
            Msg::MigrationNotice { epoch, incoming } => {
                debug_assert!(epoch >= self.epoch);
                self.epoch = epoch;
                self.incoming.extend(incoming);
                self.drain_parked(arrive);
            }
            Msg::MigrateOut { page, to } => {
                let data = self
                    .home_pages
                    .remove(&page)
                    .unwrap_or_else(|| vec![0; self.page_size]);
                self.send_daemon(to, arrive, Msg::AdoptPage { page, data });
            }
            Msg::AdoptPage { page, data } => {
                self.home_pages.insert(page, data);
                self.incoming.remove(&page);
                self.drain_parked(arrive);
            }
            Msg::Shutdown => unreachable!("handled by run()"),
            Msg::Heartbeat { node } => {
                if node < self.nprocs {
                    self.last_heard[node] = self.last_heard[node].max(arrive);
                }
            }
            Msg::Obituary { node, incarnation } => self.handle_obituary(node, incarnation, arrive),
            Msg::Rejoin {
                node,
                incarnation,
                admit_at_round,
                stride,
            } => self.handle_rejoin(node, incarnation, admit_at_round, stride, arrive, rseq),
            Msg::ProbeFailures {
                from,
                cancel_waits,
                known,
            } => self.handle_probe(from, cancel_waits, &known, arrive, rseq),
        }
    }

    fn apply_diff(&mut self, page: u64, patches: &[Patch]) {
        let home = self
            .home_pages
            .entry(page)
            .or_insert_with(|| vec![0; self.page_size]);
        apply_patches(home, patches);
    }

    fn handle_acquire(
        &mut self,
        lock: u32,
        from: usize,
        last_seq: u64,
        arrive: Duration,
        rseq: u64,
    ) {
        debug_assert_eq!(lock as usize % self.nprocs, self.id, "wrong manager");
        let st = self.locks.entry(lock).or_default();
        if st.holder.is_none() {
            st.holder = Some(from);
            let notices = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = arrive.max(st.free_at);
            self.reply(from, when, rseq, Reply::LockGranted { notices, seq });
        } else {
            st.waiters.push_back((from, last_seq, arrive, rseq));
        }
    }

    fn handle_release(&mut self, lock: u32, from: usize, notices: Vec<Notice>, arrive: Duration) {
        let st = self.locks.entry(lock).or_default();
        assert_eq!(
            st.holder,
            Some(from),
            "node {from} released lock {lock} it does not hold"
        );
        for n in notices {
            st.next_seq += 1;
            st.history.push((st.next_seq, n));
        }
        st.holder = None;
        st.free_at = st.free_at.max(arrive);
        if let Some((next, last_seq, req_arrive, rseq)) = st.waiters.pop_front() {
            st.holder = Some(next);
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = req_arrive.max(st.free_at);
            self.reply(
                next,
                when,
                rseq,
                Reply::LockGranted {
                    notices: granted,
                    seq,
                },
            );
        }
    }

    fn handle_setcv(&mut self, cv: u32, notices: Vec<Notice>, arrive: Duration) {
        let st = self.cvs.entry(cv).or_default();
        for n in notices {
            st.next_seq += 1;
            st.history.push((st.next_seq, n));
        }
        if let Some((node, last_seq, wait_arrive, rseq)) = st.waiters.pop_front() {
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = wait_arrive.max(arrive);
            self.reply(
                node,
                when,
                rseq,
                Reply::CvGranted {
                    notices: granted,
                    seq,
                },
            );
        } else {
            st.pending.push_back(arrive);
        }
    }

    fn handle_waitcv(&mut self, cv: u32, from: usize, last_seq: u64, arrive: Duration, rseq: u64) {
        let st = self.cvs.entry(cv).or_default();
        if let Some(signal_arrive) = st.pending.pop_front() {
            let granted = Self::notices_since(&st.history, last_seq);
            let seq = st.next_seq;
            let when = arrive.max(signal_arrive);
            self.reply(
                from,
                when,
                rseq,
                Reply::CvGranted {
                    notices: granted,
                    seq,
                },
            );
        } else {
            st.waiters.push_back((from, last_seq, arrive, rseq));
        }
    }

    fn handle_barrier(&mut self, from: usize, notices: Vec<Notice>, arrive: Duration, rseq: u64) {
        assert_eq!(self.id, 0, "barrier messages go to node 0");
        self.barrier.arrived.push((from, rseq));
        self.barrier.notices.extend(notices);
        self.barrier.latest = self.barrier.latest.max(arrive);
        self.maybe_finish_barrier();
    }

    /// Completes the barrier round once every node has either arrived or
    /// been declared dead (the supervision layer's "barrier over the
    /// survivors" rule; with an empty dead set this is the plain
    /// all-arrived barrier).
    fn maybe_finish_barrier(&mut self) {
        let missing_dead = self
            .dead
            .iter()
            .filter(|d| !self.barrier.arrived.iter().any(|(n, _)| n == *d))
            .count();
        if !self.barrier.arrived.is_empty()
            && self.barrier.arrived.len() + missing_dead >= self.nprocs
        {
            let round = std::mem::take(&mut self.barrier);
            // Deduplicate by (page, writer): a node must invalidate a page
            // another node wrote even if it wrote the page itself (its
            // cached copy misses the other writer's merged diff).
            let dedup: std::collections::HashSet<Notice> = round.notices.into_iter().collect();
            let notices: Vec<Notice> = dedup.into_iter().collect();
            self.barrier.rounds = round.rounds + 1;
            let migrations = if self.home_migration {
                self.decide_migrations(&notices)
            } else {
                Vec::new()
            };
            // Only daemon 0 runs this (it is the barrier manager), so the
            // cumulative log it keeps for rejoin admission is complete.
            self.migration_log.extend(migrations.iter().copied());
            // Epoch sync: every daemon advances, whether or not it adopts
            // pages, so parked future-epoch requests always drain.
            let mut incoming_per: HashMap<usize, Vec<u64>> = HashMap::new();
            for &(page, to) in &migrations {
                incoming_per.entry(to).or_default().push(page);
            }
            let epoch = self.barrier.rounds;
            for d in 0..self.nprocs {
                let incoming = incoming_per.remove(&d).unwrap_or_default();
                self.send_daemon(d, round.latest, Msg::MigrationNotice { epoch, incoming });
            }
            for &(page, to) in &migrations {
                // The old home ships the page to the new home.
                let Some(old) = notices.iter().find(|n| n.page == page).map(|n| n.home) else {
                    unreachable!("migration of page {page} was decided from these notices")
                };
                self.send_daemon(old, round.latest, Msg::MigrateOut { page, to });
            }
            let dead: Vec<usize> = self.dead.iter().copied().collect();
            for (node, rseq) in round.arrived {
                self.reply(
                    node,
                    round.latest,
                    rseq,
                    Reply::BarrierDone {
                        notices: notices.clone(),
                        migrations: migrations.clone(),
                        dead: dead.clone(),
                    },
                );
            }
            // Boundary admissions: parked rejoins whose agreed round has
            // been reached take effect now, after this round's grants
            // went out with the joiner still dead-credited. The admitted
            // joiner's next barrier arrival is exactly the new round.
            let latest = round.latest;
            let due: Vec<(usize, u32, u64, Duration, u64)> = {
                let rounds = self.barrier.rounds;
                let (due, keep) = self
                    .pending_rejoins
                    .drain(..)
                    .partition(|&(_, _, at, ..)| rounds >= at);
                self.pending_rejoins = keep;
                due
            };
            for (node, incarnation, _, arrive, rseq) in due {
                self.admit(node, incarnation, arrive.max(latest), rseq);
            }
        }
    }

    /// Processes a death notice: records the node as dead, breaks its
    /// lock leases (granting the next waiter from the last released
    /// state), removes its queued lock/cv waits, wakes every remaining cv
    /// waiter with [`Reply::NodeFailed`] so blocked survivors can unwind
    /// into recovery, and re-checks the barrier over the survivors.
    fn handle_obituary(&mut self, node: usize, incarnation: u32, arrive: Duration) {
        // Incarnation fence: a delayed duplicate obituary of a life that
        // has since been re-admitted must not re-kill the rank.
        if node < self.nprocs && incarnation < self.admitted_inc[node] {
            return;
        }
        if !self.dead.insert(node) {
            return;
        }
        self.ever_died.insert(node);
        self.stats.obituaries += 1;
        self.membership_epoch += 1;
        // Lease break: a lock held by the dead node is released on its
        // behalf. The notices of its *completed* release intervals are
        // already in the lock history, so the next grant replays the last
        // released state; writes of the interrupted critical section are
        // lost, which is exactly fail-stop semantics.
        let lock_ids: Vec<u32> = self.locks.keys().copied().collect();
        for lock in lock_ids {
            let Some(st) = self.locks.get_mut(&lock) else {
                unreachable!("lock id {lock} came from self.locks.keys()")
            };
            st.waiters.retain(|&(n, ..)| n != node);
            if st.holder == Some(node) {
                st.holder = None;
                st.free_at = st.free_at.max(arrive);
                self.stats.leases_broken += 1;
                let Some(st) = self.locks.get_mut(&lock) else {
                    unreachable!("lock id {lock} came from self.locks.keys()")
                };
                if let Some((next, last_seq, req_arrive, rseq)) = st.waiters.pop_front() {
                    st.holder = Some(next);
                    let granted = Self::notices_since(&st.history, last_seq);
                    let seq = st.next_seq;
                    let when = req_arrive.max(st.free_at);
                    self.reply(
                        next,
                        when,
                        rseq,
                        Reply::LockGranted {
                            notices: granted,
                            seq,
                        },
                    );
                }
            }
        }
        // Wake every parked cv waiter with NodeFailed: their signal may
        // have died with the node. Pending (unconsumed) signals are kept,
        // so a survivor that re-waits loses nothing.
        let cv_ids: Vec<u32> = self.cvs.keys().copied().collect();
        for cv in cv_ids {
            let Some(st) = self.cvs.get_mut(&cv) else {
                unreachable!("cv id {cv} came from self.cvs.keys()")
            };
            st.waiters.retain(|&(n, ..)| n != node);
            let woken: Vec<(usize, u64, Duration, u64)> = std::mem::take(&mut st.waiters).into();
            for (waiter, _last_seq, wait_arrive, rseq) in woken {
                self.stats.waiters_woken += 1;
                self.reply(
                    waiter,
                    wait_arrive.max(arrive),
                    rseq,
                    Reply::NodeFailed { node },
                );
            }
        }
        if self.id == 0 {
            self.barrier.latest = self.barrier.latest.max(arrive);
            self.maybe_finish_barrier();
        }
    }

    /// Answers a failure-detector query. Suspicion state: confirmed-dead
    /// nodes (obituaries) plus nodes whose last heartbeat is older than
    /// `detect_after` relative to the probe. If `cancel_waits` is set and
    /// the death *history* contains a rank the prober has not listed in
    /// `known`, the prober's parked cv waits on this daemon are cancelled
    /// so it can unwind into recovery instead of re-blocking. The check
    /// runs over `ever_died`, not the current dead set: an admitted rejoin
    /// clears `dead`, but a waiter parked on the joiner's pre-crash chunks
    /// still has to unwind and adopt — the joiner produces nothing until
    /// the handback barrier. Deaths the prober has *ever* seen never
    /// cancel: a survivor that adopted the dead node's work may
    /// legitimately block again on the same cvs, and once the handback
    /// barrier clears its current view the history entry must not
    /// re-cancel it in later workloads.
    fn handle_probe(
        &mut self,
        from: usize,
        cancel_waits: bool,
        known: &[usize],
        arrive: Duration,
        rseq: u64,
    ) {
        let mut dead: Vec<usize> = self.dead.iter().copied().collect();
        let mut suspects: Vec<usize> = self
            .last_heard
            .iter()
            .enumerate()
            .filter(|&(n, &heard)| {
                n != from
                    && !self.dead.contains(&n)
                    && heard > Duration::ZERO
                    && heard + self.supervision.detect_after < arrive
            })
            .map(|(n, _)| n)
            .collect();
        suspects.sort_unstable();
        let mut canceled = false;
        let unseen: Vec<usize> = self
            .ever_died
            .iter()
            .copied()
            .filter(|n| !known.contains(n))
            .collect();
        if cancel_waits && !unseen.is_empty() {
            for st in self.cvs.values_mut() {
                let before = st.waiters.len();
                st.waiters.retain(|&(n, ..)| n != from);
                canceled |= st.waiters.len() != before;
            }
            if canceled {
                // The canceling report must name the historic deaths so
                // the waiter can blame one and fold them into its view —
                // even if they have since been re-admitted, their role is
                // adopted until the handback barrier.
                for n in unseen {
                    if !dead.contains(&n) {
                        dead.push(n);
                    }
                }
                dead.sort_unstable();
            }
        }
        self.reply(
            from,
            arrive,
            rseq,
            Reply::FailureReport {
                dead,
                suspects,
                canceled,
                epoch: self.membership_epoch,
            },
        );
    }

    /// Routes a rejoin announcement. On daemon 0 — the admission
    /// authority — the admission is *deferred* until the completed-round
    /// count reaches `admit_at_round`: the joiner's first post-admission
    /// barrier arrival is exactly that round, so admitting any earlier
    /// would stall the in-flight rounds (they would wait for a live rank
    /// that never arrives at them). An announcement that arrives *after*
    /// its named boundary already passed (delayed or retransmitted on a
    /// lossy transport) is just as dangerous in the other direction:
    /// admitting it mid-workload would hand the role back while the
    /// survivors' adoption view for the in-flight round still owns it —
    /// two live owners. So a late announcement is re-deferred to the
    /// next boundary multiple `admit_at_round + k·stride` strictly in
    /// the future (the joiner's campaign driver skips the missed rounds;
    /// see its `run_elastic`). `stride == 0` opts out (no later boundary
    /// exists) and admits immediately. Non-zero daemons only ever see
    /// announcements *forwarded by daemon 0 at the boundary*, so they
    /// admit on receipt.
    fn handle_rejoin(
        &mut self,
        node: usize,
        incarnation: u32,
        admit_at_round: u64,
        stride: u64,
        arrive: Duration,
        rseq: u64,
    ) {
        if self.id == 0 {
            let rounds = self.barrier.rounds;
            let target = if rounds < admit_at_round {
                admit_at_round
            } else {
                match (rounds - admit_at_round).checked_div(stride) {
                    // Late: next multiple of `stride` past
                    // `admit_at_round` that is strictly in the future.
                    // `(d/stride + 1)·stride > d` always, so the
                    // admission lands at a real boundary the barrier
                    // has not completed yet.
                    Some(d) => admit_at_round + (d + 1) * stride,
                    // `stride == 0`: no later boundary exists — admit
                    // at whatever boundary comes next.
                    None => rounds,
                }
            };
            if rounds < target {
                self.pending_rejoins
                    .push((node, incarnation, target, arrive, rseq));
                return;
            }
        }
        self.admit(node, incarnation, arrive, rseq);
    }

    /// Admits a previously-dead node back into the membership view:
    /// remove it from the dead set, refresh its heartbeat entry (so the
    /// stall watchdog does not keep reporting the joiner as suspect
    /// until its first post-rejoin heartbeat), record the admitted
    /// incarnation (fencing stale obituaries of the previous life), and
    /// bump the membership epoch. Daemon 0 additionally forwards the
    /// announcement to every other daemon and answers the joiner with a
    /// [`Reply::RejoinAck`] carrying the authoritative barrier round
    /// (the joiner resynchronizes its consistency epoch to it), the
    /// post-admission dead set, and the cumulative home-migration log so
    /// the joiner can rebuild `home_overrides` it missed while dead.
    fn admit(&mut self, node: usize, incarnation: u32, arrive: Duration, rseq: u64) {
        let was_dead = self.dead.remove(&node);
        if node < self.nprocs {
            self.last_heard[node] = self.last_heard[node].max(arrive);
            self.admitted_inc[node] = self.admitted_inc[node].max(incarnation);
        }
        if was_dead {
            self.membership_epoch += 1;
        }
        if self.id == 0 {
            for d in 1..self.nprocs {
                self.send_daemon(
                    d,
                    arrive,
                    Msg::Rejoin {
                        node,
                        incarnation,
                        admit_at_round: self.barrier.rounds,
                        // Forwarded announcements are already boundary
                        // decisions; receivers admit on receipt.
                        stride: 0,
                    },
                );
            }
            self.reply(
                node,
                arrive,
                rseq,
                Reply::RejoinAck {
                    round: self.barrier.rounds,
                    dead: self.dead.iter().copied().collect(),
                    migrations: self.migration_log.clone(),
                },
            );
        }
    }
}

impl Daemon {
    /// The migration policy (JIAJIA's single-writer heuristic): a page
    /// written this round by exactly one node, which is not its home,
    /// migrates to that writer — its diffs become local applications.
    fn decide_migrations(&self, notices: &[Notice]) -> Vec<(u64, usize)> {
        let mut per_page: HashMap<u64, (usize, usize, bool)> = HashMap::new(); // page -> (writer, home, multi)
        for n in notices {
            per_page
                .entry(n.page)
                .and_modify(|e| {
                    if e.0 != n.writer {
                        e.2 = true;
                    }
                })
                .or_insert((n.writer, n.home, false));
        }
        let mut out: Vec<(u64, usize)> = per_page
            .into_iter()
            .filter(|&(_, (writer, home, multi))| !multi && writer != home)
            .map(|(page, (writer, _, _))| (page, writer))
            .collect();
        out.sort_unstable();
        out
    }
}
