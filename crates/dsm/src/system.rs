//! Spawning and tearing down a DSM "cluster" run.
//!
//! [`DsmSystem::run`] plays the role of JIAJIA's launcher: it starts one
//! daemon thread and one worker thread per node, runs the SPMD closure on
//! every worker, joins everything, and returns each node's result plus its
//! statistics. [`DsmSystem::run_wire`] is the transport-generic variant:
//! with [`DsmConfig::cluster`] set it runs this process as ONE rank of a
//! multi-process cluster over the UDP socket transport and all-gathers
//! every rank's result through the DSM itself, so callers get the same
//! full [`DsmRun`] either way.

use crate::config::DsmConfig;
use crate::daemon::Daemon;
use crate::lock_order::{LockOrderEdge, LockOrderGraph, LockOrderViolation, LOCK_ORDER_ENABLED};
use crate::msg::{Envelope, Msg, SYSTEM_SRC};
use crate::node::Node;
use crate::stats::NodeStats;
use crate::transport::clock::Clock;
use crate::transport::manifest::ClusterCtx;
use crate::transport::udp::UdpTransport;
use crate::transport::wire::{decode_frame, encode_frame, Wire};
use crate::transport::{ChannelTransport, RankWiring, Transport};
use std::sync::Arc;

/// Frame tag of a result-gather blob (`(R, NodeStats)` per rank).
const GATHER_TAG: u8 = 0x47;

/// Outcome of a DSM run: per-node results and statistics, plus the total
/// wall time of the parallel section.
#[derive(Debug)]
pub struct DsmRun<R> {
    /// The closure's return value on each node, indexed by node id.
    pub results: Vec<R>,
    /// Per-node statistics.
    pub stats: Vec<NodeStats>,
    /// Wall time from spawn to last join.
    pub wall: std::time::Duration,
    /// Lock-order inversions observed by the runtime graph. Only
    /// populated when tracking is active (debug builds or the
    /// `lock-order` feature) *and* the config selected
    /// [`crate::LockOrderMode::Record`]; in the default panic mode a
    /// violation aborts the run instead.
    pub lock_order_violations: Vec<LockOrderViolation>,
    /// Every acquisition edge the runtime lock-order graph recorded,
    /// deterministically sorted. Empty when tracking is inactive. The
    /// `genomedsm-analyze` cross-check consumes these (via
    /// [`crate::lock_order::LockOrderEdge::wire_format`]) to prove the
    /// static lock-order graph is a superset of runtime behavior.
    pub lock_order_edges: Vec<LockOrderEdge>,
}

impl<R> DsmRun<R> {
    /// Aggregated statistics over all nodes (durations summed, `total` is
    /// the maximum — the critical path).
    pub fn aggregate_stats(&self) -> NodeStats {
        let mut agg = NodeStats::default();
        for s in &self.stats {
            agg.merge(s);
        }
        agg
    }
}

/// The DSM system entry point.
pub struct DsmSystem;

impl DsmSystem {
    /// Runs `f` SPMD-style on `config.nprocs` simulated cluster nodes and
    /// returns every node's result.
    ///
    /// The closure receives the node handle (its `id()` plays JIAJIA's
    /// `jiapid`). All nodes must perform identical `alloc_*` sequences;
    /// synchronization uses `lock`/`unlock`, `setcv`/`waitcv`, and
    /// `barrier`.
    ///
    /// # Panics
    /// Propagates the first worker panic after tearing down the cluster.
    pub fn run<R, F>(config: DsmConfig, f: F) -> DsmRun<R>
    where
        R: Send,
        F: Fn(&mut Node) -> R + Send + Sync,
    {
        let nprocs = config.nprocs;
        let mut transport = ChannelTransport::new(nprocs);
        let wirings: Vec<RankWiring> = (0..nprocs).map(|r| transport.wiring(r)).collect();
        // Keep a direct sender to each daemon's inbox for teardown.
        let shutdown_tx: Vec<_> = wirings
            .iter()
            .enumerate()
            .map(|(r, w)| w.daemon_tx[r].clone())
            .collect();

        // One acquisition-order graph for the whole run, shared by every
        // worker; compiled out of the hot path in plain release builds.
        let lock_order =
            LOCK_ORDER_ENABLED.then(|| Arc::new(LockOrderGraph::new(config.lock_order)));
        // One cancellable sleep source for the run (`network.simulate`).
        let clock = Clock::new();

        let t0 = std::time::Instant::now();
        let (results, stats) = std::thread::scope(|scope| {
            // Daemons first: they must be servicing before any worker
            // faults a page.
            let mut daemon_handles = Vec::with_capacity(nprocs);
            let mut worker_parts = Vec::with_capacity(nprocs);
            for (id, wiring) in wirings.into_iter().enumerate() {
                let RankWiring {
                    daemon_tx,
                    reply_tx,
                    daemon_rx,
                    reply_rx,
                } = wiring;
                let daemon = Daemon::new(
                    id,
                    nprocs,
                    config.page_size,
                    config.network,
                    config.home_migration,
                    daemon_rx,
                    reply_tx,
                    daemon_tx.clone(),
                    config.faults.clone(),
                    config.retransmit,
                    config.supervision,
                );
                daemon_handles.push(scope.spawn(move || daemon.run()));
                worker_parts.push((daemon_tx, reply_rx));
            }

            let f = &f;
            let config_ref = &config;
            let lock_order_ref = &lock_order;
            let clock_ref = &clock;
            let mut worker_handles = Vec::with_capacity(nprocs);
            for (id, (daemon_tx, reply_rx)) in worker_parts.into_iter().enumerate() {
                worker_handles.push(scope.spawn(move || {
                    let mut node = Node::new(
                        id,
                        config_ref,
                        daemon_tx,
                        reply_rx,
                        lock_order_ref.clone(),
                        clock_ref.clone(),
                    );
                    let result = f(&mut node);
                    let stats = node.finish_stats();
                    (result, stats)
                }));
            }

            let mut results = Vec::with_capacity(nprocs);
            let mut stats = Vec::with_capacity(nprocs);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in worker_handles {
                match handle.join() {
                    Ok((r, s)) => {
                        results.push(r);
                        stats.push(s);
                    }
                    Err(e) => panic = panic.or(Some(e)),
                }
            }
            // Tear down daemons regardless of worker outcome, folding
            // each daemon's transport counters into its machine's node
            // stats (both halves of the reliability layer run on the same
            // simulated host).
            for tx in &shutdown_tx {
                let _ = tx.send(Envelope {
                    msg: Msg::Shutdown,
                    arrive: std::time::Duration::ZERO,
                    src: SYSTEM_SRC,
                    seq: 0,
                });
            }
            for (id, handle) in daemon_handles.into_iter().enumerate() {
                if let Ok(dstats) = handle.join() {
                    if let Some(s) = stats.get_mut(id) {
                        s.absorb_daemon(&dstats);
                    }
                }
            }
            if let Some(e) = panic {
                // Release any worker parked in a simulated sleep before
                // propagating (they have all joined already on the happy
                // path; this is belt-and-braces for teardown paths).
                clock.cancel();
                std::panic::resume_unwind(e);
            }
            (results, stats)
        });
        transport.shutdown();
        DsmRun {
            results,
            stats,
            wall: t0.elapsed(),
            lock_order_violations: lock_order
                .as_ref()
                .map(|g| g.violations())
                .unwrap_or_default(),
            lock_order_edges: lock_order.map(|g| g.edges()).unwrap_or_default(),
        }
    }

    /// Transport-generic run: like [`DsmSystem::run`] when
    /// [`DsmConfig::cluster`] is `None`; with a cluster context set, runs
    /// this process as ONE rank over the UDP socket transport and
    /// all-gathers `(result, stats)` from every rank through the DSM
    /// itself, so the returned [`DsmRun`] is complete — and bit-identical
    /// across ranks — on every process of the cluster.
    ///
    /// # Panics
    /// Propagates worker panics; also panics if the socket cannot be
    /// bound or a gather blob fails to decode.
    pub fn run_wire<R, F>(config: DsmConfig, f: F) -> DsmRun<R>
    where
        R: Wire + Send,
        F: Fn(&mut Node) -> R + Send + Sync,
    {
        match config.cluster.clone() {
            None => Self::run(config, f),
            Some(ctx) => Self::run_rank(config, &ctx, f),
        }
    }

    /// One rank of a multi-process cluster: local daemon + local worker
    /// over a [`UdpTransport`], with the result gather of
    /// [`DsmSystem::run_wire`].
    fn run_rank<R, F>(mut config: DsmConfig, ctx: &ClusterCtx, f: F) -> DsmRun<R>
    where
        R: Wire + Send,
        F: Fn(&mut Node) -> R + Send + Sync,
    {
        let nprocs = config.nprocs;
        assert_eq!(
            ctx.manifest.len(),
            nprocs,
            "manifest rank count must equal nprocs"
        );
        let rank = ctx.rank;
        // The chaos injector's link fates move from the protocol layer
        // (where they would simulate faults in virtual time) to the
        // transport, which applies the same seeded fates to the real
        // datagrams. The crash/rejoin schedule stays with the protocol
        // layer: the worker consults it for its own fail-stop and
        // elastic-membership rejoin points.
        let faults = config.faults.take();
        if let Some(f) = &faults {
            config.faults = Some(Arc::new(crate::net::ScheduleOnly(Arc::clone(f))));
        }
        let mut transport = match UdpTransport::bind(ctx, config.retransmit, faults) {
            Ok(t) => t,
            Err(e) => panic!("cannot start UDP transport: {e}"),
        };
        let RankWiring {
            daemon_tx,
            reply_tx,
            daemon_rx,
            reply_rx,
        } = transport.wiring(rank);
        let shutdown_tx = daemon_tx[rank].clone();
        let lock_order =
            LOCK_ORDER_ENABLED.then(|| Arc::new(LockOrderGraph::new(config.lock_order)));
        let clock = Clock::new();

        let t0 = std::time::Instant::now();
        let (results, mut stats) = std::thread::scope(|scope| {
            let daemon = Daemon::new(
                rank,
                nprocs,
                config.page_size,
                config.network,
                config.home_migration,
                daemon_rx,
                reply_tx,
                daemon_tx.clone(),
                None,
                config.retransmit,
                config.supervision,
            );
            let daemon_handle = scope.spawn(move || daemon.run());

            let f = &f;
            let config_ref = &config;
            let lock_order_ref = &lock_order;
            let clock_ref = &clock;
            let worker = scope.spawn(move || {
                let mut node = Node::new(
                    rank,
                    config_ref,
                    daemon_tx,
                    reply_rx,
                    lock_order_ref.clone(),
                    clock_ref.clone(),
                );
                let result = f(&mut node);
                // Snapshot this rank's app-phase stats before the gather
                // adds its own traffic, so every rank publishes the same
                // cut of the run.
                let snapshot = node.finish_stats();
                gather_results(&mut node, rank, nprocs, result, snapshot)
            });
            let joined = worker.join();
            let _ = shutdown_tx.send(Envelope {
                msg: Msg::Shutdown,
                arrive: std::time::Duration::ZERO,
                src: SYSTEM_SRC,
                seq: 0,
            });
            let dstats = daemon_handle.join();
            match joined {
                Ok(gathered) => {
                    let mut results = Vec::with_capacity(nprocs);
                    let mut stats = Vec::with_capacity(nprocs);
                    for (r, s) in gathered {
                        results.push(r);
                        stats.push(s);
                    }
                    // Daemon counters are local knowledge: they land in
                    // this rank's slot only (each process owns one line
                    // of the final table).
                    if let Ok(ds) = dstats {
                        if let Some(s) = stats.get_mut(rank) {
                            s.absorb_daemon(&ds);
                        }
                    }
                    (results, stats)
                }
                Err(e) => {
                    clock.cancel();
                    std::panic::resume_unwind(e);
                }
            }
        });
        transport.shutdown();
        transport.stats().fold_into(&mut stats[rank]);
        DsmRun {
            results,
            stats,
            wall: t0.elapsed(),
            lock_order_violations: lock_order
                .as_ref()
                .map(|g| g.violations())
                .unwrap_or_default(),
            lock_order_edges: lock_order.map(|g| g.edges()).unwrap_or_default(),
        }
    }
}

/// All-gathers `(result, stats)` from every rank through the DSM itself:
/// publish lengths, publish blobs, read everything back. Every rank
/// decodes the same shared bytes, which is what makes the returned
/// vectors bit-identical across processes.
fn gather_results<R: Wire>(
    node: &mut Node,
    rank: usize,
    nprocs: usize,
    result: R,
    snapshot: NodeStats,
) -> Vec<(R, NodeStats)> {
    let blob = encode_frame(GATHER_TAG, &(result, snapshot));
    let lens = node.alloc_vec::<u64>(nprocs);
    node.vec_set(&lens, rank, blob.len() as u64);
    node.barrier();
    let lens_v = node.vec_read_range(&lens, 0..nprocs);
    let total: usize = lens_v.iter().map(|&l| l as usize).sum();
    let data = node.alloc_vec::<u8>(total);
    let offset: usize = lens_v[..rank].iter().map(|&l| l as usize).sum();
    node.vec_write_range(&data, offset, &blob);
    node.barrier();
    let all = node.vec_read_range(&data, 0..total);
    node.barrier();
    let mut out = Vec::with_capacity(nprocs);
    let mut off = 0;
    for (r, &len) in lens_v.iter().enumerate() {
        let len = len as usize;
        let slice = &all[off..off + len];
        off += len;
        match decode_frame::<(R, NodeStats)>(GATHER_TAG, slice) {
            Ok(pair) => out.push(pair),
            Err(e) => panic!("rank {r}: result-gather blob corrupt: {e}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkModel;

    #[test]
    fn single_node_round_trip() {
        let run = DsmSystem::run(DsmConfig::new(1), |node| {
            let v = node.alloc_vec::<i32>(100);
            for i in 0..100 {
                node.vec_set(&v, i, i as i32 * 3);
            }
            (0..100).map(|i| node.vec_get(&v, i)).sum::<i32>()
        });
        assert_eq!(run.results, vec![3 * 4950]);
    }

    #[test]
    fn shared_memory_starts_zeroed() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let v = node.alloc_vec::<i64>(64);
            node.vec_read_range(&v, 0..64).iter().sum::<i64>()
        });
        assert_eq!(run.results, vec![0, 0]);
    }

    #[test]
    fn lock_protected_counter_is_sequentially_consistent() {
        const N: usize = 4;
        const ITERS: i64 = 50;
        let run = DsmSystem::run(DsmConfig::new(N), |node| {
            let counter = node.alloc_vec::<i64>(1);
            node.barrier();
            for _ in 0..ITERS {
                node.lock(7);
                let v = node.vec_get(&counter, 0);
                node.vec_set(&counter, 0, v + 1);
                node.unlock(7);
            }
            node.barrier();
            node.vec_get(&counter, 0)
        });
        for r in run.results {
            assert_eq!(r, N as i64 * ITERS);
        }
    }

    #[test]
    fn barrier_publishes_writes() {
        // Node i writes slot i; after the barrier every node sees all
        // slots (write-invalidate + refetch).
        let run = DsmSystem::run(DsmConfig::new(4), |node| {
            let v = node.alloc_vec::<i32>(4);
            node.vec_set(&v, node.id(), node.id() as i32 + 10);
            node.barrier();
            node.vec_read_range(&v, 0..4)
        });
        for r in run.results {
            assert_eq!(r, vec![10, 11, 12, 13]);
        }
    }

    #[test]
    fn multiple_writers_of_one_page_merge() {
        // All four nodes write disjoint quarters of the same page inside
        // the same interval; after the barrier everyone sees all writes.
        let run = DsmSystem::run(DsmConfig::new(4), |node| {
            let v = node.alloc_vec::<i32>(64); // 256 B: one page
            let me = node.id();
            for k in 0..16 {
                node.vec_set(&v, me * 16 + k, (me * 100 + k) as i32);
            }
            node.barrier();
            node.vec_read_range(&v, 0..64)
        });
        for r in &run.results {
            for me in 0..4 {
                for k in 0..16 {
                    assert_eq!(r[me * 16 + k], (me * 100 + k) as i32);
                }
            }
        }
    }

    #[test]
    fn producer_consumer_with_cv() {
        // Node 0 produces values one at a time; node 1 consumes, with the
        // strategy-1 border protocol (write, setcv; waitcv, read, ack).
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let slot = node.alloc_vec::<i64>(1);
            node.barrier();
            let mut sum = 0i64;
            if node.id() == 0 {
                for i in 0..20 {
                    node.vec_set(&slot, 0, i * i);
                    node.setcv(0); // data ready
                    node.waitcv(1); // consumer done
                }
            } else {
                for i in 0..20 {
                    node.waitcv(0);
                    let v = node.vec_get(&slot, 0);
                    assert_eq!(v, i * i, "consumer saw stale slot");
                    sum += v;
                    node.setcv(1);
                }
            }
            node.barrier();
            sum
        });
        assert_eq!(run.results[1], (0..20).map(|i| i * i).sum::<i64>());
    }

    #[test]
    fn cv_signal_before_wait_is_not_lost() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            if node.id() == 0 {
                node.setcv(3);
            }
            node.barrier(); // ensure the signal happened
            if node.id() == 1 {
                node.waitcv(3); // must not block forever
            }
            true
        });
        assert_eq!(run.results.len(), 2);
    }

    #[test]
    fn tiny_cache_forces_evictions_but_stays_correct() {
        let config = DsmConfig::new(2)
            .page_size(256)
            .cache_pages(2)
            .network(NetworkModel::zero());
        let run = DsmSystem::run(config, |node| {
            // 16 pages of data, cache of 2: constant replacement.
            let v = node.alloc_vec::<i32>(1024);
            node.barrier();
            if node.id() == 0 {
                for i in 0..1024 {
                    node.vec_set(&v, i, i as i32);
                }
            }
            node.barrier();
            let mut sum = 0i64;
            for i in 0..1024 {
                sum += node.vec_get(&v, i) as i64;
            }
            node.barrier();
            sum
        });
        let expect: i64 = (0..1024i64).sum();
        assert_eq!(run.results, vec![expect, expect]);
        assert!(run.stats[0].evictions > 0, "eviction path not exercised");
    }

    #[test]
    fn stats_track_protocol_activity() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let v = node.alloc_vec::<i32>(2048); // several pages
                                                 // Cache everything first, so the later write notices actually
                                                 // find copies to invalidate.
            let _ = node.vec_read_range(&v, 0..2048);
            node.barrier();
            if node.id() == 0 {
                for i in 0..2048 {
                    node.vec_set(&v, i, 1);
                }
            }
            node.barrier();
            let mut total = 0;
            for i in 0..2048 {
                total += node.vec_get(&v, i);
            }
            node.barrier();
            total
        });
        assert_eq!(run.results, vec![2048, 2048]);
        let agg = run.aggregate_stats();
        assert!(agg.page_fetches > 0);
        assert!(agg.diffs_sent > 0);
        assert!(agg.invalidations > 0, "write notices must invalidate");
        assert!(agg.msgs_sent > 0);
        assert!(agg.modeled_network > std::time::Duration::ZERO);
    }

    #[test]
    fn alloc_on_homes_pages_on_one_node() {
        // Pages homed on node 1: node 1's reads after a barrier still see
        // node 0's writes (via diff to home).
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let v = node.alloc_vec_on::<i32>(512, 1);
            node.barrier();
            if node.id() == 0 {
                for i in 0..512 {
                    node.vec_set(&v, i, 7);
                }
            }
            node.barrier();
            (0..512).map(|i| node.vec_get(&v, i)).sum::<i32>()
        });
        assert_eq!(run.results, vec![512 * 7, 512 * 7]);
    }

    #[test]
    fn results_are_indexed_by_node_id() {
        let run = DsmSystem::run(DsmConfig::new(8), |node| node.id());
        assert_eq!(run.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "re-acquired")]
    fn double_lock_panics() {
        let _ = DsmSystem::run(DsmConfig::new(1), |node| {
            node.lock(0);
            node.lock(0);
        });
    }

    #[test]
    fn scattered_writes_without_locks_merge_at_barrier() {
        // The phase-2 pattern: node i writes positions i, i+P, i+2P...
        // of a shared vector with no locks at all; the multiple-writer
        // protocol merges everything at the barrier.
        const P: usize = 4;
        let run = DsmSystem::run(DsmConfig::new(P), |node| {
            let v = node.alloc_vec::<i64>(100);
            node.barrier();
            let me = node.id();
            let mut i = me;
            while i < 100 {
                node.vec_set(&v, i, i as i64 * 2);
                i += P;
            }
            node.barrier();
            node.vec_read_range(&v, 0..100)
        });
        for r in &run.results {
            for (i, &x) in r.iter().enumerate() {
                assert_eq!(x, i as i64 * 2);
            }
        }
    }
}
