//! Pages, twins, and diffs — the multiple-writer machinery.
//!
//! Before the first write of an interval a node copies the page (the
//! *twin*). At release time the current contents are compared with the
//! twin and only the changed bytes travel to the home node as a diff.
//! Because two nodes writing disjoint parts of the same page produce
//! disjoint diffs, both can write concurrently (Multiple-Writer protocol)
//! and the home merges them.

use crate::msg::Patch;

/// State of a cached page copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Clean copy; reads allowed.
    ReadOnly,
    /// Twinned and modified this interval; reads and writes allowed.
    ReadWrite,
}

/// One page in a node's cache.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// Current contents.
    pub data: Vec<u8>,
    /// Copy taken before the first write of the interval.
    pub twin: Option<Vec<u8>>,
    /// Access state.
    pub state: PageState,
}

impl CachedPage {
    /// A clean read-only copy fetched from home.
    pub fn clean(data: Vec<u8>) -> Self {
        Self {
            data,
            twin: None,
            state: PageState::ReadOnly,
        }
    }

    /// Prepares the page for writing: creates the twin if this is the
    /// first write of the interval.
    pub fn ensure_writable(&mut self) {
        if self.state == PageState::ReadOnly {
            self.twin = Some(self.data.clone());
            self.state = PageState::ReadWrite;
        }
    }

    /// Computes the diff against the twin, drops the twin, and downgrades
    /// the page to read-only (the Fig. 6 "sets pages state to R/O" step).
    /// Returns `None` if the page was never written this interval.
    pub fn take_diff(&mut self) -> Option<Vec<Patch>> {
        let twin = self.twin.take()?;
        self.state = PageState::ReadOnly;
        Some(diff_bytes(&twin, &self.data))
    }
}

/// Byte-wise diff: contiguous runs of changed bytes become patches.
pub fn diff_bytes(twin: &[u8], current: &[u8]) -> Vec<Patch> {
    debug_assert_eq!(twin.len(), current.len());
    let mut patches = Vec::new();
    let mut i = 0;
    let n = current.len();
    while i < n {
        if twin[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && twin[i] != current[i] {
            i += 1;
        }
        patches.push(Patch {
            offset: start as u32,
            data: current[start..i].to_vec(),
        });
    }
    patches
}

/// Applies a diff to a home page.
pub fn apply_patches(page: &mut [u8], patches: &[Patch]) {
    for p in patches {
        let start = p.offset as usize;
        page[start..start + p.data.len()].copy_from_slice(&p.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_of_identical_is_empty() {
        assert!(diff_bytes(&[1, 2, 3], &[1, 2, 3]).is_empty());
    }

    #[test]
    fn diff_finds_contiguous_runs() {
        let twin = vec![0u8; 10];
        let mut cur = twin.clone();
        cur[2] = 9;
        cur[3] = 9;
        cur[7] = 5;
        let d = diff_bytes(&twin, &cur);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].offset, 2);
        assert_eq!(d[0].data, vec![9, 9]);
        assert_eq!(d[1].offset, 7);
    }

    #[test]
    fn apply_round_trips() {
        let twin = vec![7u8; 64];
        let mut cur = twin.clone();
        for i in (0..64).step_by(5) {
            cur[i] = i as u8;
        }
        let d = diff_bytes(&twin, &cur);
        let mut home = twin.clone();
        apply_patches(&mut home, &d);
        assert_eq!(home, cur);
    }

    #[test]
    fn disjoint_writers_merge() {
        // Multiple-writer property: two nodes modify disjoint halves of
        // the same page; applying both diffs to the home yields both sets
        // of changes.
        let original = vec![0u8; 32];
        let mut a = original.clone();
        let mut b = original.clone();
        a[..8].copy_from_slice(&[1; 8]);
        b[24..].copy_from_slice(&[2; 8]);
        let da = diff_bytes(&original, &a);
        let db = diff_bytes(&original, &b);
        let mut home = original.clone();
        apply_patches(&mut home, &da);
        apply_patches(&mut home, &db);
        assert_eq!(&home[..8], &[1; 8]);
        assert_eq!(&home[24..], &[2; 8]);
        assert_eq!(&home[8..24], &[0; 16]);
    }

    #[test]
    fn cached_page_twin_lifecycle() {
        let mut p = CachedPage::clean(vec![0; 16]);
        assert!(p.take_diff().is_none(), "clean page has no diff");
        p.ensure_writable();
        assert_eq!(p.state, PageState::ReadWrite);
        p.data[3] = 42;
        p.ensure_writable(); // idempotent: twin not re-taken
        p.data[4] = 43;
        let d = p.take_diff().expect("modified");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].offset, 3);
        assert_eq!(d[0].data, vec![42, 43]);
        assert_eq!(p.state, PageState::ReadOnly);
        assert!(p.twin.is_none());
    }

    #[test]
    fn whole_page_change_is_one_patch() {
        let twin = vec![0u8; 128];
        let cur = vec![1u8; 128];
        let d = diff_bytes(&twin, &cur);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].data.len(), 128);
    }
}
