//! DSM system configuration.

use crate::lock_order::LockOrderMode;
use crate::net::{FaultInjector, NetworkModel, RetransmitPolicy};
use crate::transport::manifest::ClusterCtx;
use std::sync::Arc;
use std::time::Duration;

/// Cluster supervision: failure detection, lock-lease recovery, and
/// waiter wake-up (ISSUE 3).
///
/// When enabled, workers piggyback heartbeats on their daemon traffic, a
/// fail-stopped node's obituary breaks its lock leases and wakes blocked
/// cv waiters with [`crate::DsmError::NodeFailed`], barriers complete over
/// the surviving nodes, and a host-time stall watchdog probes for
/// failures when a waiter makes no progress. When disabled (the default)
/// none of these paths run, so a fault-free run pays nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Master switch for the supervision layer.
    pub enabled: bool,
    /// Virtual-time detection latency: how long after a node's last
    /// heartbeat the failure detector declares it suspect. Obituaries are
    /// stamped `death time + detect_after` to model the timeout firing.
    pub detect_after: Duration,
    /// Host-time stall watchdog: a blocked cv waiter that sees no reply
    /// for this long sends a `ProbeFailures` to its manager (lost-signal
    /// / live-lock backstop).
    pub watchdog: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            detect_after: Duration::from_millis(100),
            watchdog: Duration::from_secs(5),
        }
    }
}

/// Configuration of a [`crate::DsmSystem`] run.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of cluster nodes (workers). The paper's cluster has 8.
    pub nprocs: usize,
    /// Page size in bytes (JIAJIA used the VM page size, 4096).
    pub page_size: usize,
    /// Maximum number of *remote* pages a node may cache before the
    /// replacement algorithm evicts (JIAJIA: "a fixed number of remote
    /// pages that can be placed at the memory of a remote node").
    pub cache_pages: usize,
    /// Network cost model for inter-node messages.
    pub network: NetworkModel,
    /// Relative CPU speed per node (1.0 = the calibrated reference).
    /// `None` means a homogeneous cluster. This implements the paper's §7
    /// future-work scenario — "run this modified algorithm ... in a
    /// heterogeneous cluster" — by scaling each node's virtual
    /// computation time by `1 / speed`.
    pub speed_factors: Option<Vec<f64>>,
    /// JIAJIA's optional *home migration* feature (§3.1: "JIAJIA also
    /// offers certain optional features such as home migration and load
    /// balancing ... At the beginning of the execution, all features are
    /// set to OFF"). When on, a page written in a barrier interval by
    /// exactly one node that is not its home migrates to that writer.
    pub home_migration: bool,
    /// Deterministic network fault injector (`None` = perfect links).
    /// Shared by every node and daemon of the run.
    pub faults: Option<Arc<dyn FaultInjector>>,
    /// Timeout/backoff policy of the reliability sublayer; only exercised
    /// when `faults` is set.
    pub retransmit: RetransmitPolicy,
    /// Cluster supervision layer (failure detection + recovery). Disabled
    /// by default.
    pub supervision: SupervisionConfig,
    /// What the runtime lock-order graph does on an inversion, when it is
    /// active at all (debug builds or the `lock-order` feature); see
    /// [`crate::lock_order::LOCK_ORDER_ENABLED`]. Defaults to
    /// [`LockOrderMode::Panic`].
    pub lock_order: LockOrderMode,
    /// When set, [`crate::DsmSystem::run_wire`] runs this process as ONE
    /// rank of a multi-process cluster over the UDP socket transport
    /// instead of spawning all ranks as threads. `None` (the default)
    /// keeps the in-process channel transport.
    pub cluster: Option<ClusterCtx>,
}

impl DsmConfig {
    /// A configuration with sane defaults: 4 KiB pages, 4096 cached remote
    /// pages per node, and the paper's 100 Mbps switched-Ethernet model
    /// (accounted, not slept).
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs >= 1, "need at least one node");
        Self {
            nprocs,
            page_size: 4096,
            cache_pages: 4096,
            network: NetworkModel::fast_ethernet(),
            speed_factors: None,
            home_migration: false,
            faults: None,
            retransmit: RetransmitPolicy::default(),
            supervision: SupervisionConfig::default(),
            lock_order: LockOrderMode::default(),
            cluster: None,
        }
    }

    /// Overrides the page size (must be a power of two, >= 64).
    pub fn page_size(mut self, bytes: usize) -> Self {
        assert!(bytes.is_power_of_two() && bytes >= 64, "bad page size");
        self.page_size = bytes;
        self
    }

    /// Overrides the remote-page cache capacity.
    pub fn cache_pages(mut self, pages: usize) -> Self {
        assert!(pages >= 1, "cache must hold at least one page");
        self.cache_pages = pages;
        self
    }

    /// Overrides the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Makes the cluster heterogeneous: `speeds[i]` is node `i`'s relative
    /// CPU speed (must be positive; length must equal `nprocs`).
    pub fn speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.nprocs, "one speed per node");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        self.speed_factors = Some(speeds);
        self
    }

    /// Enables JIAJIA's home-migration feature (the `jia_config` toggle).
    pub fn home_migration(mut self, on: bool) -> Self {
        self.home_migration = on;
        self
    }

    /// Installs a deterministic fault injector on every inter-machine
    /// link of the run.
    pub fn faults(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Overrides the retransmission policy of the reliability sublayer.
    pub fn retransmit(mut self, policy: RetransmitPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.retransmit = policy;
        self
    }

    /// Enables the cluster supervision layer with default timings
    /// (failure detection, lock-lease break, waiter wake-up, surviving
    /// barriers).
    pub fn tolerate_failures(mut self) -> Self {
        self.supervision.enabled = true;
        self
    }

    /// Overrides the supervision layer configuration.
    pub fn supervise(mut self, supervision: SupervisionConfig) -> Self {
        self.supervision = supervision;
        self
    }

    /// Overrides the lock-order graph's reaction to an inversion
    /// (panic by default; record to inspect violations after the run).
    pub fn lock_order(mut self, mode: LockOrderMode) -> Self {
        self.lock_order = mode;
        self
    }

    /// Runs this process as one rank of a multi-process cluster over the
    /// UDP socket transport (`ctx` carries the rank, manifest, and
    /// session). The manifest's node count must match `nprocs`.
    pub fn cluster(mut self, ctx: ClusterCtx) -> Self {
        assert_eq!(
            ctx.manifest.len(),
            self.nprocs,
            "manifest rank count must equal nprocs"
        );
        self.cluster = Some(ctx);
        self
    }

    /// Node `id`'s relative speed (1.0 when homogeneous).
    pub fn speed_of(&self, id: usize) -> f64 {
        self.speed_factors.as_ref().map_or(1.0, |v| v[id])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = DsmConfig::new(8).page_size(1024).cache_pages(7);
        assert_eq!(c.nprocs, 8);
        assert_eq!(c.page_size, 1024);
        assert_eq!(c.cache_pages, 7);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = DsmConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "bad page size")]
    fn non_power_of_two_page_rejected() {
        let _ = DsmConfig::new(1).page_size(1000);
    }
}
