//! Network cost model.
//!
//! The paper's cluster interconnect is a 100 Mbps switched Ethernet. Our
//! nodes are threads, so real message latency is sub-microsecond; to
//! preserve the *cost structure* of the protocol, every message is
//! charged `latency + bytes/bandwidth` against the sending node's
//! communication account. When [`NetworkModel::simulate`] is set, the
//! requesting worker also really sleeps for the modeled round-trip, so
//! wall-clock experiments feel cluster-like latencies (at the price of a
//! much slower harness — the default only accounts).

use std::time::Duration;

/// Latency/bandwidth cost model for inter-node messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message one-way latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// When true, workers really sleep the modeled cost of their
    /// round-trips; when false the cost is only accounted in the stats.
    pub simulate: bool,
}

impl NetworkModel {
    /// The paper's interconnect: 100 Mbps switched Ethernet, ~70 µs
    /// one-way latency (typical for the era's UDP stacks), accounted only.
    pub fn fast_ethernet() -> Self {
        Self {
            latency: Duration::from_micros(70),
            bandwidth: 100.0e6 / 8.0,
            simulate: false,
        }
    }

    /// The paper's cluster, era-calibrated: a JIAJIA protocol message over
    /// 100 Mbps Ethernet plus the 1999-era UDP/SIGIO software path costs
    /// on the order of a millisecond end to end. 750 µs one-way matches
    /// the synchronization overheads the paper's Table 1 implies (see
    /// EXPERIMENTS.md for the derivation).
    pub fn paper_cluster() -> Self {
        Self {
            latency: Duration::from_micros(750),
            bandwidth: 100.0e6 / 8.0,
            simulate: false,
        }
    }

    /// A zero-cost network (pure shared-memory behaviour).
    pub fn zero() -> Self {
        Self {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            simulate: false,
        }
    }

    /// Turns on real sleeping for modeled costs.
    pub fn simulated(mut self) -> Self {
        self.simulate = true;
        self
    }

    /// Modeled one-way cost of a message of `bytes` bytes. Messages to
    /// self (same node) are free.
    pub fn cost(&self, from: usize, to: usize, bytes: usize) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let transfer = if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::fast_ethernet()
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Link channel discriminator: worker → daemon requests.
pub const CHAN_REQ: u8 = 0;
/// Link channel discriminator: daemon → worker replies.
pub const CHAN_REPLY: u8 = 1;
/// Link channel discriminator: daemon → daemon control traffic.
pub const CHAN_DAEMON: u8 = 2;

/// Identity of one transmission attempt of one message copy on a link.
///
/// A fault injector's verdict must be a pure function of this value (plus
/// its seed), never of wall time or thread schedule — that is what makes
/// chaos runs reproducible: the same seed yields the same loss pattern
/// regardless of how the host schedules the simulated nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkMsg {
    /// Transport source id (worker index, or `nprocs + d` for daemon `d`).
    pub from: usize,
    /// Transport destination id.
    pub to: usize,
    /// Which logical channel ([`CHAN_REQ`], [`CHAN_REPLY`], [`CHAN_DAEMON`]).
    pub chan: u8,
    /// Per-link sequence number of the message.
    pub seq: u64,
    /// Retransmission attempt (0 = original transmission).
    pub attempt: u32,
}

/// What happens to one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitFate {
    /// The copy reaches the receiver.
    Deliver {
        /// Additional queueing delay beyond the modeled link cost. A
        /// non-zero delay on one copy while a later copy sails through is
        /// how the injector produces (virtual-time) reordering.
        extra_delay: Duration,
        /// Extra identical copies delivered right behind this one
        /// (duplication fault).
        duplicates: u8,
    },
    /// The copy is silently lost.
    Drop,
    /// The copy arrives bit-corrupted; the receiver's checksum rejects
    /// the frame, so it behaves like a loss but is counted separately.
    Corrupt,
}

/// A deterministic network fault injector.
///
/// Implementations must be pure: the verdict for a given [`LinkMsg`] may
/// depend only on the injector's own configuration (seed, rates,
/// schedule). The DSM layer consults the injector from multiple threads.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Verdict for one transmission attempt.
    fn fate(&self, link: &LinkMsg) -> TransmitFate;

    /// If worker `node` is scheduled to fail-stop, the ordinal of the
    /// work unit (strategy-defined; chunk for `pre_process`) after which
    /// it crashes. `None` means the node is immortal.
    fn crash_point(&self, node: usize) -> Option<u64> {
        let _ = node;
        None
    }

    /// If a crashed worker `node` is scheduled to rejoin the run, the
    /// number of work units of virtual downtime before it announces
    /// itself. `None` (the default) means the crash is permanent and the
    /// survivors carry the dead node's roles to the end of the run.
    fn rejoin_point(&self, node: usize) -> Option<u64> {
        let _ = node;
        None
    }
}

/// An injector view exposing only another injector's crash/rejoin
/// schedule: every transmission fate is a clean delivery.
///
/// The wire path uses this to split one configured injector in two:
/// link fates go to the [`crate::UdpTransport`], which
/// applies them to the real datagrams, while the fail-stop/rejoin
/// schedule stays with the protocol layer (the worker consults
/// `crash_point`/`rejoin_point` itself). Without the split, simulated
/// fates in virtual time would compound the transport's real ones.
#[derive(Debug)]
pub struct ScheduleOnly(pub std::sync::Arc<dyn FaultInjector>);

impl FaultInjector for ScheduleOnly {
    fn fate(&self, _link: &LinkMsg) -> TransmitFate {
        TransmitFate::Deliver {
            extra_delay: Duration::ZERO,
            duplicates: 0,
        }
    }

    fn crash_point(&self, node: usize) -> Option<u64> {
        self.0.crash_point(node)
    }

    fn rejoin_point(&self, node: usize) -> Option<u64> {
        self.0.rejoin_point(node)
    }
}

/// Timeout/retransmission policy of the reliability sublayer.
///
/// Mirrors a classic UDP request/ack scheme: an attempt that is not
/// acknowledged within the current RTO is retransmitted with the RTO
/// doubled, up to `max_attempts`, after which the transport escalates
/// (here: the simulation delivers the final attempt unconditionally, so a
/// pathological plan cannot wedge a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// First retransmission timeout; should comfortably exceed one RTT.
    pub initial_rto: Duration,
    /// Ceiling for the exponential backoff.
    pub max_rto: Duration,
    /// Total transmission attempts before forced delivery (≥ 1).
    pub max_attempts: u32,
}

impl RetransmitPolicy {
    /// Policy sized for [`NetworkModel::paper_cluster`] latencies:
    /// 3 ms initial RTO (≈ 2× the 1.5 ms round trip), doubling to 48 ms.
    pub fn paper_cluster() -> Self {
        Self {
            initial_rto: Duration::from_millis(3),
            max_rto: Duration::from_millis(48),
            max_attempts: 12,
        }
    }

    /// RTO in force for a given attempt number (exponential backoff).
    pub fn rto(&self, attempt: u32) -> Duration {
        let mut rto = self.initial_rto;
        for _ in 0..attempt {
            rto = (rto * 2).min(self.max_rto);
            if rto == self.max_rto {
                break;
            }
        }
        rto
    }
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_messages_are_free() {
        let n = NetworkModel::fast_ethernet();
        assert_eq!(n.cost(2, 2, 1_000_000), Duration::ZERO);
    }

    #[test]
    fn cost_scales_with_size() {
        let n = NetworkModel::fast_ethernet();
        let small = n.cost(0, 1, 100);
        let big = n.cost(0, 1, 1_000_000);
        assert!(big > small);
        // 1 MB over 12.5 MB/s = 80 ms + latency.
        assert!(big > Duration::from_millis(79));
        assert!(big < Duration::from_millis(82));
    }

    #[test]
    fn zero_model_is_free() {
        let n = NetworkModel::zero();
        assert_eq!(n.cost(0, 1, 12345), Duration::ZERO);
    }

    #[test]
    fn simulated_flag_toggles() {
        assert!(!NetworkModel::fast_ethernet().simulate);
        assert!(NetworkModel::fast_ethernet().simulated().simulate);
    }

    #[test]
    fn rto_backs_off_exponentially_and_caps() {
        let p = RetransmitPolicy {
            initial_rto: Duration::from_millis(2),
            max_rto: Duration::from_millis(10),
            max_attempts: 8,
        };
        assert_eq!(p.rto(0), Duration::from_millis(2));
        assert_eq!(p.rto(1), Duration::from_millis(4));
        assert_eq!(p.rto(2), Duration::from_millis(8));
        assert_eq!(p.rto(3), Duration::from_millis(10));
        assert_eq!(p.rto(30), Duration::from_millis(10));
    }
}
