//! Network cost model.
//!
//! The paper's cluster interconnect is a 100 Mbps switched Ethernet. Our
//! nodes are threads, so real message latency is sub-microsecond; to
//! preserve the *cost structure* of the protocol, every message is
//! charged `latency + bytes/bandwidth` against the sending node's
//! communication account. When [`NetworkModel::simulate`] is set, the
//! requesting worker also really sleeps for the modeled round-trip, so
//! wall-clock experiments feel cluster-like latencies (at the price of a
//! much slower harness — the default only accounts).

use std::time::Duration;

/// Latency/bandwidth cost model for inter-node messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message one-way latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// When true, workers really sleep the modeled cost of their
    /// round-trips; when false the cost is only accounted in the stats.
    pub simulate: bool,
}

impl NetworkModel {
    /// The paper's interconnect: 100 Mbps switched Ethernet, ~70 µs
    /// one-way latency (typical for the era's UDP stacks), accounted only.
    pub fn fast_ethernet() -> Self {
        Self {
            latency: Duration::from_micros(70),
            bandwidth: 100.0e6 / 8.0,
            simulate: false,
        }
    }

    /// The paper's cluster, era-calibrated: a JIAJIA protocol message over
    /// 100 Mbps Ethernet plus the 1999-era UDP/SIGIO software path costs
    /// on the order of a millisecond end to end. 750 µs one-way matches
    /// the synchronization overheads the paper's Table 1 implies (see
    /// EXPERIMENTS.md for the derivation).
    pub fn paper_cluster() -> Self {
        Self {
            latency: Duration::from_micros(750),
            bandwidth: 100.0e6 / 8.0,
            simulate: false,
        }
    }

    /// A zero-cost network (pure shared-memory behaviour).
    pub fn zero() -> Self {
        Self {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            simulate: false,
        }
    }

    /// Turns on real sleeping for modeled costs.
    pub fn simulated(mut self) -> Self {
        self.simulate = true;
        self
    }

    /// Modeled one-way cost of a message of `bytes` bytes. Messages to
    /// self (same node) are free.
    pub fn cost(&self, from: usize, to: usize, bytes: usize) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let transfer = if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::fast_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_messages_are_free() {
        let n = NetworkModel::fast_ethernet();
        assert_eq!(n.cost(2, 2, 1_000_000), Duration::ZERO);
    }

    #[test]
    fn cost_scales_with_size() {
        let n = NetworkModel::fast_ethernet();
        let small = n.cost(0, 1, 100);
        let big = n.cost(0, 1, 1_000_000);
        assert!(big > small);
        // 1 MB over 12.5 MB/s = 80 ms + latency.
        assert!(big > Duration::from_millis(79));
        assert!(big < Duration::from_millis(82));
    }

    #[test]
    fn zero_model_is_free() {
        let n = NetworkModel::zero();
        assert_eq!(n.cost(0, 1, 12345), Duration::ZERO);
    }

    #[test]
    fn simulated_flag_toggles() {
        assert!(!NetworkModel::fast_ethernet().simulate);
        assert!(NetworkModel::fast_ethernet().simulated().simulate);
    }
}
