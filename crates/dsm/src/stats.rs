//! Per-node execution statistics.
//!
//! The paper's Fig. 10 breaks total execution time into computation,
//! communication, lock + condition variable, and barrier. Workers measure
//! the wall time spent blocked in each category; computation is the
//! remainder. The modeled network cost (latency + bandwidth charges) is
//! accumulated separately so experiments can report either real thread
//! timings or cluster-calibrated ones.

use std::time::Duration;

/// Statistics of one node over one run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Wall time spent waiting on page fetches and diff acknowledgements.
    pub communication: Duration,
    /// Wall time spent acquiring locks and waiting on condition variables
    /// (including the release-side flushes attributed to lock/cv calls).
    pub lock_cv: Duration,
    /// Wall time spent in barriers.
    pub barrier: Duration,
    /// Total wall time of the worker closure.
    pub total: Duration,
    /// Modeled network cost accumulated against this node.
    pub modeled_network: Duration,
    /// Measured wall-clock network cost on the real socket transport:
    /// the sum of send→ack round-trip times observed by this machine's
    /// UDP transport. Zero on the in-process channel transport, where
    /// `modeled_network` plays this role.
    pub measured_network: Duration,
    /// Datagrams this machine's socket transport put on the wire
    /// (including retransmissions and chaos duplicates). Zero in-process.
    pub datagrams_sent: u64,
    /// Datagrams this machine's socket transport received and parsed.
    pub datagrams_received: u64,
    /// Malformed datagrams the socket transport rejected with a typed
    /// [`crate::DsmError`] other than a checksum mismatch (truncated,
    /// bad tag, oversize, trailing, undecodable payload). Checksum
    /// rejections count under `corrupt_dropped`.
    pub malformed_dropped: u64,
    /// Number of remote page fetches (access faults on non-resident pages).
    pub page_fetches: u64,
    /// Number of diffs sent home.
    pub diffs_sent: u64,
    /// Number of pages invalidated by received write notices.
    pub invalidations: u64,
    /// Number of pages evicted by the replacement algorithm.
    pub evictions: u64,
    /// Home migrations observed (identical on every node).
    pub migrations: u64,
    /// Messages sent (requests and releases).
    pub msgs_sent: u64,
    /// Estimated bytes sent.
    pub bytes_sent: u64,
    /// Retransmissions performed by the reliability sublayer (worker
    /// request timers plus daemon reply-cache resends).
    pub retransmits: u64,
    /// Duplicate messages suppressed (daemon request dedup plus worker
    /// stale-reply dedup).
    pub dups_dropped: u64,
    /// Frames rejected by the wire-codec checksum (injected corruption).
    pub corrupt_dropped: u64,
    /// Fail-stop crashes this node recovered from.
    pub recoveries: u64,
    /// Virtual time spent down and restoring checkpoints. Reported
    /// separately; within Fig. 10 it is part of the derived computation
    /// remainder.
    pub recovery_time: Duration,
    /// Heartbeats sent to the local daemon (supervision layer).
    pub heartbeats: u64,
    /// Dead-node work units this node adopted and re-executed.
    pub takeovers: u64,
    /// Times this node rejoined the run after a fail-stop (elastic
    /// membership); its virtual downtime is part of `recovery_time`.
    pub rejoins: u64,
    /// Lock leases this machine's daemon broke for dead holders.
    pub leases_broken: u64,
    /// Obituaries this machine's daemon processed.
    pub obituaries: u64,
    /// Cv waiters this machine's daemon woke with `NodeFailed`.
    pub waiters_woken: u64,
}

impl NodeStats {
    /// Computation time: everything not spent blocked on the DSM.
    pub fn computation(&self) -> Duration {
        self.total
            .saturating_sub(self.communication)
            .saturating_sub(self.lock_cv)
            .saturating_sub(self.barrier)
    }

    /// Relative breakdown of the four Fig. 10 categories (sums to ~1).
    pub fn breakdown(&self) -> StatsBreakdown {
        let total = self.total.as_secs_f64().max(f64::MIN_POSITIVE);
        StatsBreakdown {
            computation: self.computation().as_secs_f64() / total,
            communication: self.communication.as_secs_f64() / total,
            lock_cv: self.lock_cv.as_secs_f64() / total,
            barrier: self.barrier.as_secs_f64() / total,
        }
    }

    /// Merges another node's stats into an aggregate (sums everything;
    /// `total` becomes the max, matching "overall time for all nodes").
    pub fn merge(&mut self, other: &NodeStats) {
        self.communication += other.communication;
        self.lock_cv += other.lock_cv;
        self.barrier += other.barrier;
        self.total = self.total.max(other.total);
        self.modeled_network += other.modeled_network;
        self.measured_network += other.measured_network;
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.malformed_dropped += other.malformed_dropped;
        self.page_fetches += other.page_fetches;
        self.diffs_sent += other.diffs_sent;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
        self.migrations = self.migrations.max(other.migrations);
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.retransmits += other.retransmits;
        self.dups_dropped += other.dups_dropped;
        self.corrupt_dropped += other.corrupt_dropped;
        self.recoveries += other.recoveries;
        self.recovery_time += other.recovery_time;
        self.heartbeats += other.heartbeats;
        self.takeovers += other.takeovers;
        self.rejoins += other.rejoins;
        self.leases_broken += other.leases_broken;
        self.obituaries += other.obituaries;
        self.waiters_woken += other.waiters_woken;
    }

    /// Folds a daemon's transport counters into this (same-machine)
    /// node's stats, so the reported per-node totals cover both halves of
    /// the reliability layer.
    pub fn absorb_daemon(&mut self, d: &DaemonStats) {
        self.retransmits += d.retransmits;
        self.dups_dropped += d.dups_dropped;
        self.corrupt_dropped += d.corrupt_dropped;
        self.leases_broken += d.leases_broken;
        self.obituaries += d.obituaries;
        self.waiters_woken += d.waiters_woken;
    }
}

/// Transport counters of one daemon (the receiver half of the
/// reliability layer), returned by the daemon thread at shutdown and
/// folded into its machine's [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Retransmissions performed by the daemon: cached replies resent in
    /// response to retransmitted requests, plus daemon-to-daemon control
    /// messages retransmitted by its own timers.
    pub retransmits: u64,
    /// Duplicate request copies suppressed by sequence-number dedup.
    pub dups_dropped: u64,
    /// Frames rejected by the wire-codec checksum.
    pub corrupt_dropped: u64,
    /// Lock leases broken because their holder was declared dead.
    pub leases_broken: u64,
    /// Obituaries processed (one per dead node per daemon).
    pub obituaries: u64,
    /// Blocked cv waiters woken with `NodeFailed` by obituary handling.
    pub waiters_woken: u64,
}

/// Fractional breakdown over a set of nodes: category sums divided by the
/// sum of node totals (the Fig. 10 bars for a whole run). Unlike
/// aggregating with [`NodeStats::merge`] (which keeps the critical-path
/// `total`), this never exceeds 1.
pub fn breakdown_many(stats: &[NodeStats]) -> StatsBreakdown {
    let total: f64 = stats.iter().map(|s| s.total.as_secs_f64()).sum();
    let total = total.max(f64::MIN_POSITIVE);
    let sum = |f: fn(&NodeStats) -> Duration| -> f64 {
        stats.iter().map(|s| f(s).as_secs_f64()).sum::<f64>() / total
    };
    StatsBreakdown {
        computation: stats
            .iter()
            .map(|s| s.computation().as_secs_f64())
            .sum::<f64>()
            / total,
        communication: sum(|s| s.communication),
        lock_cv: sum(|s| s.lock_cv),
        barrier: sum(|s| s.barrier),
    }
}

/// Fractional execution-time breakdown (the Fig. 10 bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsBreakdown {
    /// Fraction of time computing.
    pub computation: f64,
    /// Fraction of time communicating (page fetches, diffs).
    pub communication: f64,
    /// Fraction of time in lock/cv operations.
    pub lock_cv: f64,
    /// Fraction of time in barriers.
    pub barrier: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computation_is_remainder() {
        let s = NodeStats {
            total: Duration::from_secs(10),
            communication: Duration::from_secs(2),
            lock_cv: Duration::from_secs(1),
            barrier: Duration::from_secs(3),
            ..Default::default()
        };
        assert_eq!(s.computation(), Duration::from_secs(4));
    }

    #[test]
    fn computation_saturates() {
        let s = NodeStats {
            total: Duration::from_secs(1),
            communication: Duration::from_secs(5),
            ..Default::default()
        };
        assert_eq!(s.computation(), Duration::ZERO);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let s = NodeStats {
            total: Duration::from_secs(8),
            communication: Duration::from_secs(2),
            lock_cv: Duration::from_secs(1),
            barrier: Duration::from_secs(1),
            ..Default::default()
        };
        let b = s.breakdown();
        let sum = b.computation + b.communication + b.lock_cv + b.barrier;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.computation - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_takes_max_total_and_sums_counters() {
        let mut a = NodeStats {
            total: Duration::from_secs(5),
            page_fetches: 3,
            ..Default::default()
        };
        let b = NodeStats {
            total: Duration::from_secs(7),
            page_fetches: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total, Duration::from_secs(7));
        assert_eq!(a.page_fetches, 7);
    }
}
