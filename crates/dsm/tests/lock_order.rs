//! Regression: the page-lock / lease-table lock-order inversion.
//!
//! Two nodes acquire the same pair of DSM locks in opposite orders. The
//! acquisitions are serialized by a barrier so the run never actually
//! deadlocks — which is exactly the trap: the inverted order is latent
//! and only wedges under an unlucky interleaving. The runtime lock-order
//! graph must flag it deterministically anyway, on every run. The same
//! discipline is model-checked in `genomedsm-verify`
//! (`models::inversion`), where the checker proves the inverted order
//! deadlocks and replays the failing schedule from its seed — two
//! independent tripwires for one bug.
#![cfg(any(debug_assertions, feature = "lock-order"))]

use genomedsm_dsm::{DsmConfig, DsmSystem, LockOrderMode};

/// Lock id playing the per-page lock on the failure path.
const PAGE_LOCK: u32 = 0;
/// Lock id playing the lease table.
const LEASE_TABLE: u32 = 1;

fn inverted_run(mode: LockOrderMode) -> genomedsm_dsm::DsmRun<()> {
    DsmSystem::run(DsmConfig::new(2).lock_order(mode), |node| {
        if node.id() == 0 {
            // The documented discipline: page lock first, lease table second.
            node.lock(PAGE_LOCK);
            node.lock(LEASE_TABLE);
            node.unlock(LEASE_TABLE);
            node.unlock(PAGE_LOCK);
        }
        node.barrier();
        if node.id() == 1 {
            // The reintroduced bug: lease table before page lock.
            node.lock(LEASE_TABLE);
            node.lock(PAGE_LOCK);
            node.unlock(PAGE_LOCK);
            node.unlock(LEASE_TABLE);
        }
    })
}

#[test]
#[should_panic(expected = "lock-order inversion")]
fn inverted_acquisition_order_panics_in_debug_builds() {
    let _ = inverted_run(LockOrderMode::Panic);
}

#[test]
fn record_mode_reports_the_inversion_with_both_sites() {
    let run = inverted_run(LockOrderMode::Record);
    assert_eq!(run.lock_order_violations.len(), 1);
    let v = &run.lock_order_violations[0];
    assert_eq!(v.edge, (LEASE_TABLE, PAGE_LOCK));
    assert_eq!(v.cycle, vec![PAGE_LOCK, LEASE_TABLE, PAGE_LOCK]);
    // Both acquisition sites point into this test file.
    let text = v.to_string();
    assert!(v.held_site.file().ends_with("lock_order.rs"), "{text}");
    assert!(v.acquire_site.file().ends_with("lock_order.rs"), "{text}");
    assert!(
        !v.prior_edges.is_empty(),
        "the conflicting recorded edge must be shown: {text}"
    );
}

#[test]
fn consistent_acquisition_order_stays_clean() {
    let run = DsmSystem::run(
        DsmConfig::new(2).lock_order(LockOrderMode::Record),
        |node| {
            node.lock(PAGE_LOCK);
            node.lock(LEASE_TABLE);
            node.unlock(LEASE_TABLE);
            node.unlock(PAGE_LOCK);
            node.barrier();
        },
    );
    assert!(run.lock_order_violations.is_empty());
}
