//! Lock-lease recovery sweep: kill the lock holder at *every*
//! acquisition point of a lock-protected counter workload and assert the
//! survivors always agree on the same deterministic final value.
//!
//! Two kill positions are swept for every (victim, round) pair:
//!
//! * **inside** the critical section (after the write, before the
//!   release) — the lease must be broken, the unflushed increment is
//!   lost, and the next waiter is granted the last *released* state;
//! * **after** the release — no lease is held, so no lease break may be
//!   charged, and the flushed increment must survive.
//!
//! Either way every survivor must read the identical expected count, so
//! the recovered run is bit-for-bit equal to a run in which the victim
//! had simply stopped at that point.

use genomedsm_dsm::{DsmConfig, DsmSystem, SupervisionConfig};
use std::time::Duration;

const NPROCS: usize = 3;
const ROUNDS: usize = 3;

fn supervised(nprocs: usize) -> DsmConfig {
    DsmConfig::new(nprocs).supervise(SupervisionConfig {
        enabled: true,
        detect_after: Duration::from_millis(40),
        watchdog: Duration::from_millis(400),
    })
}

/// Runs the counter workload killing `victim` at its `kill_at`-th lock
/// acquisition, inside the critical section or just after the release.
/// Returns per-node final counts (`-1` marks the victim) and the total
/// number of lease breaks charged across all daemons.
fn run_sweep_point(victim: usize, kill_at: usize, inside_cs: bool) -> (Vec<i64>, u64) {
    let run = DsmSystem::run(supervised(NPROCS), move |node| {
        let counter = node.alloc_vec::<i64>(1);
        node.barrier();
        for round in 0..ROUNDS {
            let dies_here = node.id() == victim && round == kill_at;
            node.lock(0);
            let v = node.vec_get(&counter, 0);
            node.vec_set(&counter, 0, v + 1);
            if dies_here && inside_cs {
                // Fail-stop while holding lock 0: no release, no flush.
                node.fail_stop();
                return -1;
            }
            node.unlock(0);
            if dies_here {
                // Fail-stop with the lock released and the write flushed.
                node.fail_stop();
                return -1;
            }
        }
        let dead = node.barrier_wait();
        assert_eq!(dead, vec![victim], "exactly the victim is dead");
        node.lock(0);
        let v = node.vec_get(&counter, 0);
        node.unlock(0);
        v
    });
    let leases = run.stats.iter().map(|s| s.leases_broken).sum();
    (run.results, leases)
}

#[test]
fn holder_killed_inside_critical_section_at_every_acquisition() {
    for victim in 0..NPROCS {
        for kill_at in 0..ROUNDS {
            let (results, leases) = run_sweep_point(victim, kill_at, true);
            // The victim's interrupted increment is lost with the broken
            // lease; its earlier released rounds survive.
            let expect = ((NPROCS - 1) * ROUNDS + kill_at) as i64;
            for (id, v) in results.iter().enumerate() {
                if id == victim {
                    assert_eq!(*v, -1);
                } else {
                    assert_eq!(
                        *v, expect,
                        "victim {victim} killed holding lock at acquisition \
                         {kill_at}: node {id} disagrees on the final count"
                    );
                }
            }
            assert_eq!(
                leases, 1,
                "victim {victim} at acquisition {kill_at}: exactly one lease break"
            );
        }
    }
}

#[test]
fn holder_killed_after_release_at_every_acquisition() {
    for victim in 0..NPROCS {
        for kill_at in 0..ROUNDS {
            let (results, leases) = run_sweep_point(victim, kill_at, false);
            // The round's release flushed, so its increment counts.
            let expect = ((NPROCS - 1) * ROUNDS + kill_at + 1) as i64;
            for (id, v) in results.iter().enumerate() {
                if id == victim {
                    assert_eq!(*v, -1);
                } else {
                    assert_eq!(
                        *v, expect,
                        "victim {victim} killed after release at acquisition \
                         {kill_at}: node {id} disagrees on the final count"
                    );
                }
            }
            assert_eq!(
                leases, 0,
                "victim {victim} at acquisition {kill_at}: lock was free, \
                 no lease may be broken"
            );
        }
    }
}
