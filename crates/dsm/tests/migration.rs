//! JIAJIA's optional home-migration feature (§3.1): correctness and the
//! expected traffic reduction.

use genomedsm_dsm::{DsmConfig, DsmSystem, NetworkModel};

fn config(n: usize) -> DsmConfig {
    DsmConfig::new(n).network(NetworkModel::zero())
}

#[test]
fn single_writer_page_migrates_to_its_writer() {
    // Node 1 repeatedly writes a page homed on node 0; with migration on,
    // the first barrier moves the home to node 1 and subsequent diffs
    // become local (free).
    let run = DsmSystem::run(config(2).home_migration(true), |node| {
        let v = node.alloc_vec::<i64>(64); // page 0, home = node 0
        node.barrier();
        for round in 0..5 {
            if node.id() == 1 {
                node.vec_set(&v, 0, round);
            }
            node.barrier();
        }
        node.vec_get(&v, 0)
    });
    assert_eq!(run.results, vec![4, 4], "values must stay correct");
    assert!(
        run.stats[0].migrations >= 1,
        "the single-writer page should have migrated"
    );
}

#[test]
fn migration_preserves_correctness_under_reader_traffic() {
    // Writer on node 2, readers everywhere; with migration the data must
    // stay exact across the home handoff.
    let run = DsmSystem::run(config(4).home_migration(true), |node| {
        let v = node.alloc_vec::<i64>(256);
        node.barrier();
        let mut sums = Vec::new();
        for round in 1..=6i64 {
            if node.id() == 2 {
                for k in 0..256 {
                    node.vec_set(&v, k, round * 1000 + k as i64);
                }
            }
            node.barrier();
            let s: i64 = node.vec_read_range(&v, 0..256).iter().sum();
            sums.push(s);
            node.barrier();
        }
        sums
    });
    for r in &run.results {
        for (i, &s) in r.iter().enumerate() {
            let round = i as i64 + 1;
            let expect: i64 = (0..256).map(|k| round * 1000 + k as i64).sum();
            assert_eq!(s, expect, "round {round}");
        }
    }
}

#[test]
fn migration_reduces_diff_traffic() {
    // Same workload with and without migration: the writer's modeled
    // network cost must drop once its diffs become local.
    let workload = |node: &mut genomedsm_dsm::Node| {
        let v = node.alloc_vec::<i64>(512);
        node.barrier();
        for round in 0..10i64 {
            if node.id() == 1 {
                for k in 0..512 {
                    node.vec_set(&v, k, round + k as i64);
                }
            }
            node.barrier();
        }
        node.vec_get(&v, 511)
    };
    let base_cfg = DsmConfig::new(2); // fast_ethernet: costs are modeled
    let off = DsmSystem::run(base_cfg.clone(), workload);
    let on = DsmSystem::run(base_cfg.home_migration(true), workload);
    assert_eq!(off.results, on.results);
    let writer_off = off.stats[1].modeled_network;
    let writer_on = on.stats[1].modeled_network;
    assert!(
        writer_on < writer_off,
        "migration should cut the writer's network cost: {writer_on:?} vs {writer_off:?}"
    );
}

#[test]
fn multi_writer_pages_do_not_migrate() {
    // Two nodes write the same page every round: no single writer, so the
    // home stays put and no migrations are recorded.
    let run = DsmSystem::run(config(2).home_migration(true), |node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        for round in 0..4i64 {
            node.vec_set(&v, node.id(), round);
            node.barrier();
        }
        node.stats().migrations
    });
    assert_eq!(run.results, vec![0, 0]);
}

#[test]
fn migration_off_by_default() {
    let run = DsmSystem::run(config(2), |node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        for _ in 0..3 {
            if node.id() == 1 {
                node.vec_set(&v, 0, 9);
            }
            node.barrier();
        }
        node.stats().migrations
    });
    assert_eq!(run.results, vec![0, 0], "JIAJIA features start OFF");
}

#[test]
fn migrated_page_survives_lock_synchronization_too() {
    // After a barrier-driven migration, lock-protected updates keep
    // working (the lock path uses the same overridden home map).
    let run = DsmSystem::run(config(3).home_migration(true), |node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        // Make node 2 the single writer so the page migrates there.
        if node.id() == 2 {
            node.vec_set(&v, 0, 1);
        }
        node.barrier();
        // Now everyone increments under a lock.
        for _ in 0..5 {
            node.lock(0);
            let x = node.vec_get(&v, 0);
            node.vec_set(&v, 0, x + 1);
            node.unlock(0);
        }
        node.barrier();
        node.vec_get(&v, 0)
    });
    assert_eq!(run.results, vec![16, 16, 16]);
}

#[test]
fn chained_migrations_follow_the_writer() {
    // The writer role moves from node to node; the home follows it.
    let run = DsmSystem::run(config(4).home_migration(true), |node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        for writer in 0..4usize {
            for round in 0..2 {
                if node.id() == writer {
                    node.vec_set(&v, 0, (writer * 10 + round) as i64);
                }
                node.barrier();
            }
        }
        (node.vec_get(&v, 0), node.stats().migrations)
    });
    for &(v, migrations) in &run.results {
        assert_eq!(v, 31);
        assert!(migrations >= 2, "home should have chased the writers");
    }
}
