//! The protocol under fire: every synchronization and coherence pattern
//! the strategies rely on must produce results identical to a fault-free
//! run while the injector drops, corrupts, duplicates, and reorders
//! messages — and the reliability counters must show the machinery
//! actually worked.

mod common;

use common::TestFaults;
use genomedsm_dsm::{DsmConfig, DsmSystem, RetransmitPolicy};
use std::sync::Arc;
use std::time::Duration;

fn faulty(nprocs: usize, f: TestFaults) -> DsmConfig {
    DsmConfig::new(nprocs).faults(Arc::new(f))
}

#[test]
fn lock_counter_is_exact_under_loss_and_duplication() {
    const N: usize = 4;
    const ITERS: i64 = 40;
    let workload = |node: &mut genomedsm_dsm::Node| {
        let counter = node.alloc_vec::<i64>(1);
        node.barrier();
        for _ in 0..ITERS {
            node.lock(5);
            let v = node.vec_get(&counter, 0);
            node.vec_set(&counter, 0, v + 1);
            node.unlock(5);
        }
        node.barrier();
        node.vec_get(&counter, 0)
    };
    let run = DsmSystem::run(faulty(N, TestFaults::harsh(1)), workload);
    assert_eq!(run.results, vec![N as i64 * ITERS; N]);
    let agg = run.aggregate_stats();
    assert!(agg.retransmits > 0, "loss must force retransmissions");
    assert!(agg.dups_dropped > 0, "duplicates must be suppressed");
}

#[test]
fn producer_consumer_cv_sees_no_stale_or_double_signals() {
    // The strategy-1 border protocol: a duplicated SetCv must not wake
    // the consumer twice, a lost one must be retransmitted.
    let run = DsmSystem::run(faulty(2, TestFaults::harsh(2)), |node| {
        let slot = node.alloc_vec::<i64>(1);
        node.barrier();
        let mut sum = 0i64;
        if node.id() == 0 {
            for i in 0..30 {
                node.vec_set(&slot, 0, i * i);
                node.setcv(0);
                node.waitcv(1);
            }
        } else {
            for i in 0..30 {
                node.waitcv(0);
                let v = node.vec_get(&slot, 0);
                assert_eq!(v, i * i, "consumer saw stale slot");
                sum += v;
                node.setcv(1);
            }
        }
        node.barrier();
        sum
    });
    assert_eq!(run.results[1], (0..30).map(|i| i * i).sum::<i64>());
}

#[test]
fn barrier_coherence_matches_fault_free_run() {
    let workload = |node: &mut genomedsm_dsm::Node| {
        let v = node.alloc_vec::<i32>(256);
        node.barrier();
        let me = node.id();
        for k in 0..64 {
            node.vec_set(&v, me * 64 + k, (me * 1000 + k) as i32);
        }
        node.barrier();
        node.vec_read_range(&v, 0..256)
    };
    let clean = DsmSystem::run(DsmConfig::new(4), workload);
    let chaotic = DsmSystem::run(faulty(4, TestFaults::harsh(3)), workload);
    assert_eq!(clean.results, chaotic.results);
}

#[test]
fn corruption_is_detected_and_counted() {
    let mut f = TestFaults::drop_rate(4, 0.0);
    f.corrupt = 0.15;
    let run = DsmSystem::run(faulty(4, f), |node| {
        let v = node.alloc_vec::<i64>(512);
        node.barrier();
        if node.id() == 0 {
            for i in 0..512 {
                node.vec_set(&v, i, i as i64);
            }
        }
        node.barrier();
        (0..512).map(|i| node.vec_get(&v, i)).sum::<i64>()
    });
    let expect: i64 = (0..512i64).sum();
    assert_eq!(run.results, vec![expect; 4]);
    let agg = run.aggregate_stats();
    assert!(
        agg.corrupt_dropped > 0,
        "checksum rejections must be counted"
    );
    assert!(
        agg.retransmits > 0,
        "corrupted frames recover by retransmission"
    );
}

#[test]
fn total_blackout_is_survived_by_forced_delivery() {
    // drop = 1.0: every attempt up to the cap is lost; the transport's
    // escalation (deliver the final attempt) must keep the run live
    // rather than spinning forever.
    let f = TestFaults::drop_rate(5, 1.0);
    let policy = RetransmitPolicy {
        initial_rto: Duration::from_millis(1),
        max_rto: Duration::from_millis(4),
        max_attempts: 4,
    };
    let config = faulty(2, f).retransmit(policy);
    let run = DsmSystem::run(config, |node| {
        let v = node.alloc_vec::<i32>(8);
        node.barrier();
        if node.id() == 0 {
            node.vec_set(&v, 3, 99);
        }
        node.barrier();
        node.vec_get(&v, 3)
    });
    assert_eq!(run.results, vec![99, 99]);
    let agg = run.aggregate_stats();
    assert!(agg.retransmits > 0);
}

#[test]
fn same_seed_reproduces_results_and_worker_retransmits() {
    let workload = |node: &mut genomedsm_dsm::Node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        node.vec_set(&v, node.id(), node.id() as i64 + 7);
        node.barrier();
        node.vec_read_range(&v, 0..8)
    };
    let a = DsmSystem::run(faulty(4, TestFaults::harsh(6)), workload);
    let b = DsmSystem::run(faulty(4, TestFaults::harsh(6)), workload);
    assert_eq!(a.results, b.results);
}

#[test]
fn retransmission_overhead_is_charged_to_virtual_time() {
    // Same workload, same seed-free network model: the faulty run's
    // blocked time (and thus total) must exceed the fault-free run's,
    // because RTO waits are charged to the waiting operation's bucket.
    let workload = |node: &mut genomedsm_dsm::Node| {
        let v = node.alloc_vec::<i64>(1024);
        node.barrier();
        if node.id() == 0 {
            for i in 0..1024 {
                node.vec_set(&v, i, 1);
            }
        }
        node.barrier();
        (0..1024).map(|i| node.vec_get(&v, i)).sum::<i64>()
    };
    let clean = DsmSystem::run(DsmConfig::new(2), workload);
    let chaotic = DsmSystem::run(faulty(2, TestFaults::drop_rate(7, 0.3)), workload);
    assert_eq!(clean.results, chaotic.results);
    let ct = clean.aggregate_stats();
    let ft = chaotic.aggregate_stats();
    assert!(
        ft.communication + ft.lock_cv + ft.barrier > ct.communication + ct.lock_cv + ct.barrier,
        "fault recovery must cost virtual time (clean {:?} vs faulty {:?})",
        ct.communication + ct.lock_cv + ct.barrier,
        ft.communication + ft.lock_cv + ft.barrier,
    );
}
