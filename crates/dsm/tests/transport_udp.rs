//! End-to-end tests of the UDP socket transport: several ranks, each
//! with its own socket and its own `DsmSystem::run_wire` call, run in one
//! test process (a `UdpTransport` is per-rank self-contained, so threads
//! standing in for processes exercises exactly the multi-process path).

use genomedsm_dsm::{
    ClusterCtx, ClusterManifest, DsmConfig, DsmRun, DsmSystem, NetworkModel, Node,
};
use std::net::UdpSocket;
use std::sync::Arc;

/// Reserves `n` distinct loopback ports by binding ephemeral sockets,
/// then releasing them for the transports to rebind.
fn fresh_manifest(n: usize) -> ClusterManifest {
    let holds: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let nodes = holds
        .iter()
        .map(|s| s.local_addr().expect("local addr"))
        .collect();
    drop(holds);
    ClusterManifest::new(nodes)
}

/// Runs `f` on `n` socket-connected ranks (threads standing in for
/// processes) and returns every rank's full gathered `DsmRun`.
fn run_cluster<R, F>(
    n: usize,
    session: u64,
    make_config: fn(usize) -> DsmConfig,
    f: F,
) -> Vec<DsmRun<R>>
where
    R: genomedsm_dsm::Wire + Send + 'static,
    F: Fn(&mut Node) -> R + Send + Sync + Copy + 'static,
{
    let manifest = fresh_manifest(n);
    let mut handles = Vec::new();
    for rank in 0..n {
        let manifest = manifest.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = ClusterCtx::new(rank, manifest, session).expect("ctx");
            let config = make_config(n).cluster(ctx);
            DsmSystem::run_wire(config, f)
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

fn lock_counter_workload(node: &mut Node) -> Vec<i64> {
    const ITERS: i64 = 10;
    let counter = node.alloc_vec::<i64>(1);
    let slots = node.alloc_vec::<i64>(node.nprocs());
    node.barrier();
    for _ in 0..ITERS {
        node.lock(3);
        let v = node.vec_get(&counter, 0);
        node.vec_set(&counter, 0, v + 1);
        node.unlock(3);
    }
    node.vec_set(&slots, node.id(), node.id() as i64 * 100);
    node.barrier();
    let mut out = vec![node.vec_get(&counter, 0)];
    out.extend(node.vec_read_range(&slots, 0..node.nprocs()));
    node.barrier();
    out
}

#[test]
fn four_ranks_over_udp_match_in_process_run() {
    let runs = run_cluster(4, 1, DsmConfig::new, lock_counter_workload);
    let reference = DsmSystem::run(DsmConfig::new(4), lock_counter_workload);
    for (rank, run) in runs.iter().enumerate() {
        assert_eq!(
            run.results, reference.results,
            "rank {rank}'s gathered results diverge from the in-process run"
        );
    }
    // Every rank decoded the same shared bytes: identical across ranks.
    for run in &runs[1..] {
        assert_eq!(run.results, runs[0].results);
    }
    // The socket path really moved datagrams and measured round trips.
    let s = &runs[0].stats[0];
    assert!(s.datagrams_sent > 0, "no datagrams left rank 0");
    assert!(s.datagrams_received > 0, "no datagrams reached rank 0");
    assert!(
        s.measured_network > std::time::Duration::ZERO,
        "no RTT was measured"
    );
}

#[test]
fn scattered_writes_over_udp_merge_like_phase2() {
    fn workload(node: &mut Node) -> Vec<i64> {
        let p = node.nprocs();
        let v = node.alloc_vec::<i64>(257); // several pages, odd length
        node.barrier();
        let mut i = node.id();
        while i < 257 {
            node.vec_set(&v, i, (i * i) as i64);
            i += p;
        }
        node.barrier();
        let out = node.vec_read_range(&v, 0..257);
        node.barrier();
        out
    }
    let runs = run_cluster(3, 2, |n| DsmConfig::new(n).page_size(256), workload);
    for run in &runs {
        for r in &run.results {
            for (i, &x) in r.iter().enumerate() {
                assert_eq!(x, (i * i) as i64);
            }
        }
    }
}

#[test]
fn large_payloads_fragment_and_reassemble() {
    // One page far above MAX_FRAG_PAYLOAD (32 KiB): page fetches and
    // diffs must fragment into many datagrams and reassemble exactly.
    fn workload(node: &mut Node) -> i64 {
        let v = node.alloc_vec::<i64>(16 * 1024); // 128 KiB in one page
        node.barrier();
        if node.id() == 0 {
            for i in 0..16 * 1024 {
                node.vec_set(&v, i, i as i64);
            }
        }
        node.barrier();
        let sum = node.vec_read_range(&v, 0..16 * 1024).iter().sum();
        node.barrier();
        sum
    }
    let runs = run_cluster(2, 3, |n| DsmConfig::new(n).page_size(128 * 1024), workload);
    let expect: i64 = (0..16 * 1024i64).sum();
    for run in &runs {
        assert_eq!(run.results, vec![expect, expect]);
    }
}

#[test]
fn chaos_over_real_datagrams_is_exactly_once() {
    // 15% datagram loss plus corruption/duplication/reordering on the
    // wire: the reliability layer must still deliver exactly-once and
    // the results must match a clean run bit for bit.
    fn make_config(n: usize) -> DsmConfig {
        let plan =
            genomedsm_chaos::FaultPlan::parse("seed=7,drop=0.15,corrupt=0.03,dup=0.05,reorder=0.1")
                .expect("plan");
        let injector = Arc::new(genomedsm_chaos::SeededFaults::new(plan, n));
        DsmConfig::new(n)
            .network(NetworkModel::zero())
            .faults(injector)
    }
    let clean = run_cluster(
        3,
        4,
        |n| DsmConfig::new(n).network(NetworkModel::zero()),
        lock_counter_workload,
    );
    let chaotic = run_cluster(3, 5, make_config, lock_counter_workload);
    for (c, k) in clean.iter().zip(&chaotic) {
        assert_eq!(c.results, k.results, "chaos changed the computed results");
    }
    // The adversity must actually have happened and been repaired.
    let total: u64 = chaotic
        .iter()
        .map(|r| {
            let s = &r.stats[r
                .stats
                .iter()
                .position(|s| s.datagrams_sent > 0)
                .unwrap_or(0)];
            s.retransmits
        })
        .sum();
    assert!(total > 0, "chaos plan injected nothing (no retransmits)");
}

#[test]
fn stale_sessions_do_not_cross_runs() {
    // Two DSM runs back to back on the SAME manifest: session numbers
    // fence them, so run 2's sequence spaces start clean.
    let manifest = fresh_manifest(2);
    for session in [10u64, 20u64] {
        let mut handles = Vec::new();
        for rank in 0..2 {
            let manifest = manifest.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ClusterCtx::new(rank, manifest, session).expect("ctx");
                let config = DsmConfig::new(2).cluster(ctx);
                DsmSystem::run_wire(config, |node| {
                    let v = node.alloc_vec::<i64>(64);
                    node.barrier();
                    node.vec_set(&v, node.id() * 32, 7);
                    node.barrier();
                    let s: i64 = node.vec_read_range(&v, 0..64).iter().sum();
                    node.barrier();
                    s
                })
            }));
        }
        for h in handles {
            let run = h.join().expect("rank panicked");
            assert_eq!(run.results, vec![14, 14], "session {session}");
        }
    }
}
