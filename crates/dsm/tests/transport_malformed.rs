//! Satellite-3 hostile-input coverage for the UDP receive path: every
//! truncated, oversized, bit-flipped, or plain-garbage datagram must
//! surface as a typed `DsmError` plus a stat counter — never a panic,
//! never a hang — both through the pure parser and through a real
//! socket being blasted mid-run.

use genomedsm_dsm::transport::udp::{parse_datagram, Datagram, TPT_ACK, TPT_DATA};
use genomedsm_dsm::{ClusterCtx, ClusterManifest, DsmConfig, DsmSystem, FrameWriter, Node};
use proptest::prelude::*;
use std::net::UdpSocket;

/// A syntactically valid data datagram built by hand (the transport's
/// encoder is private; the wire format is DESIGN.md §5.12's contract).
fn valid_data_frame(session: u64, from: usize, chan: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = FrameWriter::new(TPT_DATA);
    w.u64(session);
    w.usize(from);
    w.u8(chan);
    w.u64(seq);
    w.u32(0); // frag_idx
    w.u32(1); // frag_count
    w.u64(0); // env_seq
    w.u64(0); // arrive_ns
    w.bytes(payload);
    w.finish()
}

fn valid_ack_frame(session: u64, from: usize, chan: u8, seq: u64) -> Vec<u8> {
    let mut w = FrameWriter::new(TPT_ACK);
    w.u64(session);
    w.usize(from);
    w.u8(chan);
    w.u64(seq);
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: the parser returns Ok or a typed error, never
    /// panics. (A random blob passing the length+checksum gate is
    /// astronomically unlikely but would still be structurally valid.)
    #[test]
    fn parser_is_total_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = parse_datagram(&bytes);
    }

    /// Single bit flips anywhere in a valid frame are always rejected:
    /// the additive checksum cannot absorb a one-byte change.
    #[test]
    fn single_byte_flips_never_parse(
        seq in 0u64..1000,
        idx in 0usize..64,
        bit in 0u8..8,
    ) {
        let frame = valid_data_frame(7, 1, 0, seq, &[0xab; 32]);
        let mut bad = frame.clone();
        let at = idx % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(parse_datagram(&bad).is_err(), "flip at {at} accepted");
    }

    /// Truncations at every prefix length are typed errors.
    #[test]
    fn truncations_never_parse(cut_seed in 0u64..10_000) {
        let frame = valid_ack_frame(3, 0, 1, 99);
        let cut = (cut_seed as usize) % frame.len();
        prop_assert!(parse_datagram(&frame[..cut]).is_err());
    }

    /// Frames that re-checksum correctly after appending garbage still
    /// fail (trailing bytes are part of the checksummed region, and the
    /// reader demands full consumption).
    #[test]
    fn oversized_frames_never_parse(extra in proptest::collection::vec(0u8..=255, 1..64)) {
        let mut frame = valid_data_frame(1, 0, 2, 5, b"xyz");
        frame.extend_from_slice(&extra);
        prop_assert!(parse_datagram(&frame).is_err());
    }
}

#[test]
fn hand_built_frames_parse_back() {
    // The hand encoder above matches the transport's real decoder — the
    // premise all the negative tests rest on.
    match parse_datagram(&valid_data_frame(9, 2, 1, 44, b"hello")) {
        Ok(Datagram::Data(d)) => {
            assert_eq!((d.session, d.from, d.chan, d.seq), (9, 2, 1, 44));
            assert_eq!(d.payload, b"hello");
        }
        other => panic!("expected Data, got {other:?}"),
    }
    match parse_datagram(&valid_ack_frame(9, 1, 0, 7)) {
        Ok(Datagram::Ack(a)) => assert_eq!((a.session, a.from, a.chan, a.seq), (9, 1, 0, 7)),
        other => panic!("expected Ack, got {other:?}"),
    }
}

fn fresh_manifest(n: usize) -> ClusterManifest {
    let holds: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let nodes = holds
        .iter()
        .map(|s| s.local_addr().expect("local addr"))
        .collect();
    drop(holds);
    ClusterManifest::new(nodes)
}

/// Blasts a live cluster's rank-0 socket with every category of hostile
/// datagram while a real run is in flight: the run must complete with
/// correct results and the garbage must show up in the drop counters.
#[test]
fn live_socket_survives_garbage_blast() {
    const SESSION: u64 = 77;
    let manifest = fresh_manifest(2);
    let target = manifest.nodes[0];

    let mut rank_handles = Vec::new();
    for rank in 0..2 {
        let manifest = manifest.clone();
        rank_handles.push(std::thread::spawn(move || {
            let ctx = ClusterCtx::new(rank, manifest, SESSION).expect("ctx");
            let config = DsmConfig::new(2).cluster(ctx);
            DsmSystem::run_wire(config, |node: &mut Node| {
                let v = node.alloc_vec::<i64>(512);
                node.barrier();
                // Enough rounds that the blast overlaps the run.
                for round in 0..30 {
                    node.lock(0);
                    let x = node.vec_get(&v, 0);
                    node.vec_set(&v, 0, x + 1);
                    node.unlock(0);
                    node.vec_set(&v, 1 + node.id() * 32 + (round % 32), round as i64);
                    node.barrier();
                }
                let s: i64 = node.vec_read_range(&v, 0..512).iter().sum();
                node.barrier();
                s
            })
        }));
    }

    // The attacker: raw garbage, truncated frames, corrupted frames,
    // stale sessions, impossible senders — all at rank 0's real socket.
    let attacker = UdpSocket::bind("127.0.0.1:0").expect("bind attacker");
    let mut corrupted = valid_data_frame(SESSION, 1, 0, 0, &[1; 64]);
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xff;
    let volleys: Vec<Vec<u8>> = vec![
        vec![0xde, 0xad, 0xbe, 0xef],
        vec![],
        vec![0; 1400],
        valid_data_frame(SESSION, 1, 0, 3, b"x")[..10].to_vec(), // truncated
        corrupted,                                               // checksum fails
        valid_data_frame(SESSION + 1, 1, 0, 0, b"stale"),        // wrong session
        valid_data_frame(SESSION, 9, 0, 0, b"badfrom"),          // rank out of range
        valid_data_frame(SESSION, 1, 7, 0, b"badchan"),          // unknown channel
        valid_ack_frame(SESSION + 2, 1, 0, 0),                   // stale ack
        FrameWriter::new(0x13).finish(),                         // unknown tag
    ];
    for _ in 0..40 {
        for v in &volleys {
            let _ = attacker.send_to(v, target);
        }
        std::thread::yield_now();
    }

    let runs: Vec<_> = rank_handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked under garbage blast"))
        .collect();
    // Correctness unharmed: both ranks agree and the lock counter holds.
    assert_eq!(runs[0].results, runs[1].results);
    let expect: i64 = 2 * 30 + (0..30i64).map(|r| r % 32).sum::<i64>() * 2;
    assert_eq!(runs[0].results[0], expect);
    // The hostile input was seen and counted on rank 0 (malformed +
    // stale categories both fold into `malformed_dropped`; the corrupted
    // frame lands in `corrupt_dropped`).
    let s0 = &runs[0].stats[0];
    assert!(
        s0.malformed_dropped > 0,
        "garbage blast left no malformed_dropped trace: {s0:?}"
    );
    assert!(
        s0.corrupt_dropped > 0,
        "corrupted frame was not counted: {s0:?}"
    );
}
