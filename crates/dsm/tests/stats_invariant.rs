//! Property test for the paper's Fig. 10 accounting identity: for every
//! node, `computation + communication + lock_cv + barrier == total`.
//! Computation is defined as the remainder, so the invariant is real
//! only if the three blocked-time buckets never overshoot the total —
//! i.e. no operation double-charges the virtual clock. This must hold
//! both fault-free and under injected loss/duplication/reordering,
//! where RTO waits are charged to the waiting operation's bucket.

mod common;

use common::TestFaults;
use genomedsm_dsm::{DsmConfig, DsmSystem, NodeStats};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Exercises all three blocked-time buckets: page fetches + diffs
/// (communication), a contended lock counter (lock_cv), and barriers.
fn workload(iters: usize) -> impl Fn(&mut genomedsm_dsm::Node) -> i64 + Send + Sync {
    move |node| {
        let shared = node.alloc_vec::<i64>(128);
        node.barrier();
        let me = node.id();
        for i in 0..iters {
            node.lock(1);
            let v = node.vec_get(&shared, 0);
            node.vec_set(&shared, 0, v + 1);
            node.unlock(1);
            node.vec_set(&shared, 1 + me * 16 + (i % 16), (me * 100 + i) as i64);
            node.barrier();
        }
        (0..128).map(|i| node.vec_get(&shared, i)).sum()
    }
}

fn assert_fig10_identity(stats: &[NodeStats]) {
    for (id, s) in stats.iter().enumerate() {
        let blocked = s.communication + s.lock_cv + s.barrier;
        assert!(
            blocked <= s.total,
            "node {id}: blocked time {blocked:?} exceeds total {total:?} \
             (a bucket double-charged the clock)",
            total = s.total,
        );
        assert_eq!(
            s.computation() + s.communication + s.lock_cv + s.barrier,
            s.total,
            "node {id}: Fig. 10 identity broken",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fig10_identity_holds_fault_free(
        nprocs in 2usize..=4,
        iters in 1usize..=8,
    ) {
        let run = DsmSystem::run(DsmConfig::new(nprocs), workload(iters));
        prop_assert_eq!(run.stats.len(), nprocs);
        assert_fig10_identity(&run.stats);
    }

    #[test]
    fn fig10_identity_holds_under_faults(
        nprocs in 2usize..=4,
        iters in 1usize..=6,
        seed in 0u64..1_000,
        drop in proptest::sample::select(vec![0.02f64, 0.08, 0.15]),
    ) {
        let mut faults = TestFaults::drop_rate(seed, drop);
        faults.corrupt = 0.02;
        faults.duplicate = 0.05;
        faults.reorder = 0.05;
        faults.max_delay = Duration::from_millis(2);
        let config = DsmConfig::new(nprocs).faults(Arc::new(faults));
        let run = DsmSystem::run(config, workload(iters));
        prop_assert_eq!(run.stats.len(), nprocs);
        assert_fig10_identity(&run.stats);
        // The faulty run must also still compute the right answer: the
        // lock counter reaches nprocs * iters and every slot is visible
        // to every node identically.
        let first = run.results[0];
        prop_assert!(run.results.iter().all(|&r| r == first));
    }
}
