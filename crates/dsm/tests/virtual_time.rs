//! Validation of the virtual-time simulation: the clock arithmetic that
//! execution times and speed-ups are derived from.

use genomedsm_dsm::{DsmConfig, DsmSystem, NetworkModel};
use std::time::Duration;

fn zero_net(n: usize) -> DsmConfig {
    DsmConfig::new(n).network(NetworkModel::zero())
}

#[test]
fn advance_accumulates_into_total() {
    let run = DsmSystem::run(zero_net(1), |node| {
        node.advance(Duration::from_millis(25));
        node.advance(Duration::from_millis(17));
        node.now()
    });
    assert_eq!(run.results[0], Duration::from_millis(42));
    assert_eq!(run.stats[0].total, Duration::from_millis(42));
    assert_eq!(run.stats[0].computation(), Duration::from_millis(42));
}

#[test]
fn barrier_waits_for_the_slowest_node() {
    // Node i computes i*10 ms; after the barrier every clock is at the
    // maximum (plus zero network cost).
    let run = DsmSystem::run(zero_net(4), |node| {
        node.advance(Duration::from_millis(node.id() as u64 * 10));
        node.barrier();
        node.now()
    });
    for (id, &t) in run.results.iter().enumerate() {
        assert_eq!(t, Duration::from_millis(30), "node {id}");
    }
    // The fastest node waited the longest.
    assert_eq!(run.stats[0].barrier, Duration::from_millis(30));
    assert_eq!(run.stats[3].barrier, Duration::ZERO);
}

#[test]
fn barrier_includes_network_cost() {
    let latency = Duration::from_millis(2);
    let config = DsmConfig::new(2).network(NetworkModel {
        latency,
        bandwidth: f64::INFINITY,
        simulate: false,
    });
    let run = DsmSystem::run(config, |node| {
        node.barrier();
        node.now()
    });
    // Node 1's barrier message travels to node 0 (+2 ms) and the grant
    // travels back (+2 ms); node 0's messages are local (free).
    assert_eq!(run.results[1], Duration::from_millis(4));
    assert_eq!(run.results[0], Duration::from_millis(2)); // remote arrival gates it
}

#[test]
fn lock_grant_respects_previous_release() {
    // Two nodes take the same lock; the second acquirer's clock must pass
    // the first holder's release time.
    let run = DsmSystem::run(zero_net(2), |node| {
        node.barrier();
        if node.id() == 0 {
            node.lock(0);
            node.advance(Duration::from_millis(50)); // long critical section
            node.unlock(0);
        } else {
            // Give node 0 the lock first in *real* execution order.
            std::thread::sleep(std::time::Duration::from_millis(50));
            node.lock(0);
            node.unlock(0);
        }
        node.barrier();
        node.now()
    });
    // Node 1 could not hold the lock before node 0 released at t=50ms.
    assert!(
        run.results[1] >= Duration::from_millis(50),
        "lock grant ignored the release time: {:?}",
        run.results[1]
    );
}

#[test]
fn cv_waiter_clock_reaches_signal_time() {
    let run = DsmSystem::run(zero_net(2), |node| {
        node.barrier();
        if node.id() == 0 {
            node.advance(Duration::from_millis(30));
            node.setcv(5);
        } else {
            node.waitcv(5);
        }
        node.now()
    });
    assert!(run.results[1] >= Duration::from_millis(30));
    assert!(run.stats[1].lock_cv >= Duration::from_millis(30));
}

#[test]
fn cv_signal_after_wait_still_pairs_correctly() {
    // The waiter waits (real) first; the signal arrives later with a
    // larger virtual stamp; the waiter's clock must land on it.
    let run = DsmSystem::run(zero_net(2), |node| {
        node.barrier();
        if node.id() == 1 {
            node.waitcv(9);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(20));
            node.advance(Duration::from_millis(77));
            node.setcv(9);
        }
        node.now()
    });
    assert!(run.results[1] >= Duration::from_millis(77));
}

#[test]
fn page_fetch_charges_communication_bucket() {
    let latency = Duration::from_millis(1);
    let config = DsmConfig::new(2).network(NetworkModel {
        latency,
        bandwidth: f64::INFINITY,
        simulate: false,
    });
    let run = DsmSystem::run(config, |node| {
        // Pages are homed round-robin; touch several so at least half the
        // fetches are remote for each node.
        let v = node.alloc_vec::<i64>(4096);
        let mut sum = 0;
        for k in 0..8 {
            sum += node.vec_get(&v, k * 512);
        }
        node.barrier();
        sum
    });
    for s in &run.stats {
        assert!(
            s.communication >= Duration::from_millis(4),
            "remote fetches must cost round trips: {:?}",
            s.communication
        );
    }
}

#[test]
fn wavefront_speedup_emerges_in_virtual_time() {
    // The point of the whole exercise: a pipelined producer/consumer
    // chain shows real parallel overlap in virtual time even on a
    // single-core host. Each of 4 nodes does 10 units of work per round,
    // handing a token down the chain; with P nodes and R rounds the
    // critical path is (P-1 + R) units, not P*R.
    const ROUNDS: u64 = 50;
    const WORK: Duration = Duration::from_millis(10);
    let run = DsmSystem::run(zero_net(4), |node| {
        let p = node.id();
        node.barrier();
        for round in 0..ROUNDS {
            if p > 0 {
                node.waitcv((p - 1) as u32);
            }
            node.advance(WORK);
            if p < 3 {
                node.setcv(p as u32);
            }
            let _ = round;
        }
        node.barrier();
        node.now()
    });
    let total = run.results[3];
    // Critical path: node 0 streams 50 rounds; node 3 lags 3 stages.
    let expect = WORK * (ROUNDS as u32 + 3);
    assert_eq!(total, expect, "pipeline virtual time wrong");
    // Far below the serialized 4 * 50 * 10ms = 2s.
    assert!(total < Duration::from_millis(600));
}

#[test]
fn total_equals_bucket_sum() {
    // computation + communication + lock_cv + barrier == total, exactly.
    let run = DsmSystem::run(zero_net(3), |node| {
        let v = node.alloc_vec::<i32>(2000);
        node.barrier();
        node.advance(Duration::from_millis(node.id() as u64 * 3 + 1));
        if node.id() == 0 {
            for i in 0..2000 {
                node.vec_set(&v, i, 1);
            }
        }
        node.lock(2);
        node.unlock(2);
        node.barrier();
        let _ = node.vec_get(&v, 1999);
        node.barrier();
    });
    for s in &run.stats {
        let sum = s.computation() + s.communication + s.lock_cv + s.barrier;
        assert_eq!(sum, s.total);
    }
}

#[test]
fn bandwidth_charges_scale_with_page_size() {
    let config = DsmConfig::new(2).page_size(8192).network(NetworkModel {
        latency: Duration::ZERO,
        bandwidth: 1.0e6, // 1 MB/s: one 8K page ≈ 8 ms
        simulate: false,
    });
    let run = DsmSystem::run(config, |node| {
        let v = node.alloc_vec::<i64>(1024); // one page
        node.barrier();
        let _ = node.vec_get(&v, 0);
        node.now()
    });
    // One of the two nodes is remote from the page's home and pays the
    // transfer time.
    let max = run.results.iter().max().unwrap();
    assert!(
        *max >= Duration::from_millis(8),
        "transfer not charged: {max:?}"
    );
}

#[test]
fn heterogeneous_speeds_scale_computation() {
    let config = zero_net(2).speeds(vec![1.0, 0.5]);
    let run = DsmSystem::run(config, |node| {
        node.advance(Duration::from_millis(10));
        node.now()
    });
    assert_eq!(run.results[0], Duration::from_millis(10));
    assert_eq!(run.results[1], Duration::from_millis(20)); // half speed
}

#[test]
fn slow_node_gates_the_barrier() {
    let config = zero_net(4).speeds(vec![1.0, 1.0, 1.0, 0.25]);
    let run = DsmSystem::run(config, |node| {
        node.advance(Duration::from_millis(10));
        node.barrier();
        node.now()
    });
    for &t in &run.results {
        assert_eq!(t, Duration::from_millis(40)); // the 0.25x node's time
    }
}

#[test]
#[should_panic(expected = "one speed per node")]
fn speeds_length_checked() {
    let _ = zero_net(3).speeds(vec![1.0]);
}
