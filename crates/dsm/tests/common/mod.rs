//! Shared helpers for the dsm integration tests: a deterministic inline
//! fault injector. The production injector lives in `genomedsm-chaos`
//! (which depends on this crate), so tests here use an equivalent
//! hash-based one to avoid a dependency cycle.

// Each integration-test binary compiles this module separately and uses
// a different subset of the constructors.
#![allow(dead_code)]

use genomedsm_dsm::{FaultInjector, LinkMsg, TransmitFate};
use std::time::Duration;

/// Hash-seeded fault injector: every verdict is a pure function of the
/// seed and the transmission identity.
#[derive(Debug, Clone)]
pub struct TestFaults {
    pub seed: u64,
    pub drop: f64,
    pub corrupt: f64,
    pub duplicate: f64,
    pub reorder: f64,
    pub max_delay: Duration,
    pub crash: Option<(usize, u64)>,
}

impl TestFaults {
    pub fn drop_rate(seed: u64, p: f64) -> Self {
        Self {
            seed,
            drop: p,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_delay: Duration::ZERO,
            crash: None,
        }
    }

    /// A harsh mixed plan: loss, corruption, duplication, reordering.
    pub fn harsh(seed: u64) -> Self {
        Self {
            seed,
            drop: 0.1,
            corrupt: 0.03,
            duplicate: 0.08,
            reorder: 0.08,
            max_delay: Duration::from_millis(2),
            crash: None,
        }
    }

    fn draw(&self, link: &LinkMsg, salt: u64) -> f64 {
        let mut h = self.seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
        for field in [
            link.from as u64,
            link.to as u64,
            link.chan as u64,
            link.seq,
            link.attempt as u64,
        ] {
            h = h.wrapping_add(field).wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FaultInjector for TestFaults {
    fn fate(&self, link: &LinkMsg) -> TransmitFate {
        let loss = self.draw(link, 1);
        if loss < self.drop {
            return TransmitFate::Drop;
        }
        if loss < self.drop + self.corrupt {
            return TransmitFate::Corrupt;
        }
        let duplicates = u8::from(self.draw(link, 2) < self.duplicate);
        let extra_delay = if self.draw(link, 3) < self.reorder {
            self.max_delay.mul_f64(self.draw(link, 4))
        } else {
            Duration::ZERO
        };
        TransmitFate::Deliver {
            extra_delay,
            duplicates,
        }
    }

    fn crash_point(&self, node: usize) -> Option<u64> {
        match self.crash {
            Some((n, unit)) if n == node => Some(unit),
            _ => None,
        }
    }
}
