//! Supervision-layer coverage at the DSM level: a fail-stopped node's
//! obituary must break its lock leases (granting the next waiter the
//! last *released* state), wake blocked cv waiters with a typed
//! `NodeFailed` instead of deadlocking, complete barriers over the
//! survivors, and surface heartbeat-staleness suspicion on probes.

use genomedsm_dsm::{DsmConfig, DsmError, DsmSystem, SupervisionConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn supervised(nprocs: usize) -> DsmConfig {
    DsmConfig::new(nprocs).supervise(SupervisionConfig {
        enabled: true,
        detect_after: Duration::from_millis(100),
        watchdog: Duration::from_millis(500),
    })
}

#[test]
fn dead_lock_holder_lease_is_broken_and_survivors_finish() {
    // Node 1 fail-stops *while holding* lock 0. Without supervision every
    // other node deadlocks in acquire; with it, the manager breaks the
    // lease and grants the next waiter. The dead node's unreleased
    // critical-section write is lost (fail-stop), so the counter ends at
    // the survivors' total.
    let run = DsmSystem::run(supervised(4), |node| {
        let counter = node.alloc_vec::<i64>(1);
        node.barrier();
        for round in 0..3 {
            if node.id() == 1 && round == 1 {
                node.lock(0);
                let v = node.vec_get(&counter, 0);
                node.vec_set(&counter, 0, v + 1);
                // Dies inside the critical section: no release, no flush.
                node.fail_stop();
                return -1;
            }
            node.lock(0);
            let v = node.vec_get(&counter, 0);
            node.vec_set(&counter, 0, v + 1);
            node.unlock(0);
        }
        let dead = node.barrier_wait();
        assert_eq!(dead, vec![1], "round's dead set is reported");
        node.lock(0);
        let v = node.vec_get(&counter, 0);
        node.unlock(0);
        v
    });
    // 3 survivors × 3 rounds, plus node 1's completed round 0; its
    // unflushed round-1 increment is lost with the broken lease.
    for (id, v) in run.results.iter().enumerate() {
        if id == 1 {
            assert_eq!(*v, -1);
        } else {
            assert_eq!(*v, 10, "node {id} saw a wrong final count");
        }
    }
    let total: u64 = run.stats.iter().map(|s| s.leases_broken).sum();
    assert_eq!(total, 1, "exactly one lease break");
    assert_eq!(run.stats.iter().map(|s| s.obituaries).sum::<u64>(), 4);
}

#[test]
fn blocked_cv_waiter_is_woken_with_typed_node_failed() {
    // Node 0 waits on a cv that only node 1 would signal; node 1 dies
    // after the wait is registered. The waiter must unwind with
    // DsmError::NodeFailed, not hang. The flag + sleep order the WaitCv
    // frame ahead of the obituary at cv 7's manager so the obituary
    // wake-up path (not the slower probe watchdog) is exercised.
    let parked = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&parked);
    let run = DsmSystem::run(supervised(2), move |node| {
        node.barrier();
        if node.id() == 1 {
            while !flag.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(50));
            node.fail_stop();
            return 0;
        }
        flag.store(true, Ordering::Release);
        match node.try_waitcv(7) {
            Err(DsmError::NodeFailed { node: dead }) => {
                assert_eq!(dead, 1);
                assert_eq!(node.known_dead(), vec![1]);
                1
            }
            other => panic!("expected NodeFailed, got {other:?}"),
        }
    });
    assert_eq!(run.results[0], 1);
    assert!(run.stats.iter().map(|s| s.waiters_woken).sum::<u64>() >= 1);
}

#[test]
fn pending_signals_survive_a_node_failed_wakeup() {
    // Counting semantics across recovery: a signal sent before the death
    // wake-up is not lost — a re-wait after the NodeFailed consumes it.
    let run = DsmSystem::run(supervised(3), |node| {
        node.barrier();
        match node.id() {
            2 => {
                node.fail_stop();
                0
            }
            1 => {
                // Signal once, then park on a cv nobody signals; the
                // obituary wake-up must not consume cv 0's pending signal.
                node.setcv(0);
                match node.try_waitcv(5) {
                    Err(DsmError::NodeFailed { .. }) => {}
                    other => panic!("expected NodeFailed, got {other:?}"),
                }
                1
            }
            _ => {
                // Consume the pending signal, possibly after a NodeFailed
                // wake-up raced it.
                loop {
                    match node.try_waitcv(0) {
                        Ok(()) => break,
                        Err(DsmError::NodeFailed { .. }) => continue,
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                }
                2
            }
        }
    });
    assert_eq!(run.results, vec![2, 1, 0]);
}

#[test]
fn barrier_completes_over_survivors_and_reports_dead() {
    let run = DsmSystem::run(supervised(4), |node| {
        node.barrier();
        if node.id() == 3 {
            node.fail_stop();
            return Vec::new();
        }
        // The dead node never arrives; survivors still pass.
        node.barrier_wait()
    });
    for id in 0..3 {
        assert_eq!(run.results[id], vec![3]);
    }
}

#[test]
fn stale_heartbeats_surface_as_suspicion_not_death() {
    let run = DsmSystem::run(supervised(2), |node| {
        let v = node.alloc_vec::<i64>(1);
        if node.id() == 1 {
            // Touch node 0's daemon early (heartbeat gossip piggybacks
            // on request traffic), then go silent.
            let _ = node.vec_get(&v, 0);
        }
        node.barrier();
        if node.id() == 0 {
            // Virtually long after node 1's last contact with daemon 0.
            node.advance(Duration::from_secs(1));
            let suspects = node.probe_suspects();
            assert_eq!(suspects, vec![1], "stale node 1 must be suspected");
            assert!(node.known_dead().is_empty(), "suspicion is not death");
        }
        node.barrier();
        node.id() as i64
    });
    assert_eq!(run.results, vec![0, 1]);
}

#[test]
fn rejoined_node_is_admitted_and_clears_the_dead_view() {
    // Node 2 fail-stops, then rejoins after 200 ms of virtual downtime
    // and publishes a write. Every node loops on `barrier_wait` until the
    // round's dead vector is empty — the strategy sweep's convergence
    // pattern — which tolerates both admission orderings (before or after
    // the survivors' round completes). On exit everyone must agree the
    // cluster is whole again and see the joiner's post-rejoin write.
    let run = DsmSystem::run(supervised(3), |node| {
        let v = node.alloc_vec::<i64>(3);
        node.barrier();
        if node.id() == 2 {
            node.fail_stop();
            assert!(node.failed());
            // The boundary round is the one the cluster is already at,
            // so the admission is immediate.
            let dead = node.rejoin(Duration::from_millis(200), node.round(), 0);
            assert!(!node.failed());
            assert_eq!(node.incarnation(), 1);
            assert!(dead.is_empty(), "joiner's post-admission dead view");
            node.vec_set(&v, 2, 42);
        }
        while !node.barrier_wait().is_empty() {}
        assert!(node.known_dead().is_empty(), "dead view cleared on rejoin");
        node.vec_get(&v, 2)
    });
    assert_eq!(run.results, vec![42, 42, 42]);
    assert_eq!(run.stats.iter().map(|s| s.rejoins).sum::<u64>(), 1);
    assert_eq!(run.stats.iter().map(|s| s.obituaries).sum::<u64>(), 3);
    assert!(run.stats[2].recovery_time >= Duration::from_millis(200));
}

#[test]
fn admission_is_deferred_to_the_agreed_boundary_round() {
    // The joiner announces immediately but names a boundary two rounds
    // ahead; daemon 0 parks the announcement, the survivors' mid-workload
    // rounds complete under dead-credit (their grants still report the
    // rank dead), and the admission takes effect exactly when the
    // boundary round starts — the joiner's first arrival lands there.
    let run = DsmSystem::run(supervised(3), |node| {
        node.barrier();
        let base = node.round();
        if node.id() == 2 {
            node.fail_stop();
            let dead = node.rejoin(Duration::from_millis(100), base + 2, 0);
            assert!(dead.is_empty(), "joiner's post-admission dead view");
            assert_eq!(node.round(), base + 2, "epoch resyncs to the boundary");
            node.barrier_wait()
        } else {
            assert_eq!(node.barrier_wait(), vec![2], "mid-workload round 1");
            assert_eq!(node.barrier_wait(), vec![2], "mid-workload round 2");
            node.barrier_wait()
        }
    });
    for id in 0..3 {
        assert!(
            run.results[id].is_empty(),
            "boundary grant must be clean for node {id}"
        );
    }
    assert_eq!(run.stats.iter().map(|s| s.rejoins).sum::<u64>(), 1);
}

#[test]
fn late_announcement_is_redeferred_to_the_next_boundary_multiple() {
    // The announcement names a boundary that has *already passed* by the
    // time daemon 0 sees it (a host gate holds it back while the
    // survivors complete two dead-credited rounds). Admitting it
    // immediately would hand the role back mid-workload — two live
    // owners — so the daemon must re-defer to the next multiple of the
    // announced stride strictly in the future, and the joiner's first
    // arrival lands exactly there.
    let gate = std::sync::Arc::new(std::sync::Barrier::new(3));
    let run = DsmSystem::run(supervised(3), move |node| {
        node.barrier();
        let base = node.round();
        if node.id() == 2 {
            node.fail_stop();
            gate.wait(); // survivors are already ≥ 2 rounds past `base`
            let dead = node.rejoin(Duration::from_millis(50), base, 2);
            assert!(dead.is_empty(), "joiner's post-admission dead view");
            let admitted = node.round();
            assert!(
                admitted >= base + 4 && (admitted - base) % 2 == 0,
                "late admission lands on a future stride multiple, got +{}",
                admitted - base
            );
        } else {
            assert_eq!(node.barrier_wait(), vec![2], "mid-workload round 1");
            assert_eq!(node.barrier_wait(), vec![2], "mid-workload round 2");
            gate.wait();
        }
        // Pad dead-credited rounds until the admission clears the view;
        // the joiner's first wait is already clean.
        while !node.barrier_wait().is_empty() {}
        node.id() as i64
    });
    assert_eq!(run.results, vec![0, 1, 2]);
    assert_eq!(run.stats.iter().map(|s| s.rejoins).sum::<u64>(), 1);
}

#[test]
fn rejoined_rank_is_not_suspect_after_admission() {
    // Stall-watchdog regression: admission must refresh the joiner's
    // heartbeat entry. Without it, the joiner's `last_heard` stays at its
    // pre-death traffic, and a probe right after the handback barrier
    // reports the freshly-admitted rank as suspect for a whole
    // `detect_after` window.
    let run = DsmSystem::run(supervised(2), |node| {
        let v = node.alloc_vec::<i64>(1);
        if node.id() == 1 {
            // Touch node 0's daemon so last_heard[1] is non-zero there.
            let _ = node.vec_get(&v, 0);
        }
        node.barrier();
        if node.id() == 1 {
            node.fail_stop();
            // A downtime much longer than detect_after: a stale heartbeat
            // entry from before the death is guaranteed suspect.
            node.rejoin(Duration::from_secs(1), node.round(), 0);
        }
        while !node.barrier_wait().is_empty() {}
        if node.id() == 0 {
            let suspects = node.probe_suspects();
            assert!(
                !suspects.contains(&1),
                "rejoined rank 1 must not be suspect, got {suspects:?}"
            );
            assert!(node.known_dead().is_empty());
            assert!(
                node.membership_epoch() >= 2,
                "death + admission bump the membership epoch twice"
            );
        }
        node.barrier();
        node.id() as i64
    });
    assert_eq!(run.results, vec![0, 1]);
}

#[test]
fn heartbeats_are_counted_and_free_of_failures() {
    let run = DsmSystem::run(supervised(2), |node| {
        for _ in 0..5 {
            node.heartbeat();
        }
        node.barrier();
        0
    });
    assert_eq!(run.stats.iter().map(|s| s.heartbeats).sum::<u64>(), 10);
    assert_eq!(run.stats.iter().map(|s| s.obituaries).sum::<u64>(), 0);
}

#[test]
fn unsupervised_runs_pay_nothing() {
    // With supervision disabled (the default), no heartbeats are sent
    // and the sync ops take the plain blocking path.
    let run = DsmSystem::run(DsmConfig::new(2), |node| {
        node.heartbeat(); // no-op
        node.barrier();
        node.id()
    });
    assert_eq!(run.stats.iter().map(|s| s.heartbeats).sum::<u64>(), 0);
}
