//! Supervision-layer coverage at the DSM level: a fail-stopped node's
//! obituary must break its lock leases (granting the next waiter the
//! last *released* state), wake blocked cv waiters with a typed
//! `NodeFailed` instead of deadlocking, complete barriers over the
//! survivors, and surface heartbeat-staleness suspicion on probes.

use genomedsm_dsm::{DsmConfig, DsmError, DsmSystem, SupervisionConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn supervised(nprocs: usize) -> DsmConfig {
    DsmConfig::new(nprocs).supervise(SupervisionConfig {
        enabled: true,
        detect_after: Duration::from_millis(100),
        watchdog: Duration::from_millis(500),
    })
}

#[test]
fn dead_lock_holder_lease_is_broken_and_survivors_finish() {
    // Node 1 fail-stops *while holding* lock 0. Without supervision every
    // other node deadlocks in acquire; with it, the manager breaks the
    // lease and grants the next waiter. The dead node's unreleased
    // critical-section write is lost (fail-stop), so the counter ends at
    // the survivors' total.
    let run = DsmSystem::run(supervised(4), |node| {
        let counter = node.alloc_vec::<i64>(1);
        node.barrier();
        for round in 0..3 {
            if node.id() == 1 && round == 1 {
                node.lock(0);
                let v = node.vec_get(&counter, 0);
                node.vec_set(&counter, 0, v + 1);
                // Dies inside the critical section: no release, no flush.
                node.fail_stop();
                return -1;
            }
            node.lock(0);
            let v = node.vec_get(&counter, 0);
            node.vec_set(&counter, 0, v + 1);
            node.unlock(0);
        }
        let dead = node.barrier_wait();
        assert_eq!(dead, vec![1], "round's dead set is reported");
        node.lock(0);
        let v = node.vec_get(&counter, 0);
        node.unlock(0);
        v
    });
    // 3 survivors × 3 rounds, plus node 1's completed round 0; its
    // unflushed round-1 increment is lost with the broken lease.
    for (id, v) in run.results.iter().enumerate() {
        if id == 1 {
            assert_eq!(*v, -1);
        } else {
            assert_eq!(*v, 10, "node {id} saw a wrong final count");
        }
    }
    let total: u64 = run.stats.iter().map(|s| s.leases_broken).sum();
    assert_eq!(total, 1, "exactly one lease break");
    assert_eq!(run.stats.iter().map(|s| s.obituaries).sum::<u64>(), 4);
}

#[test]
fn blocked_cv_waiter_is_woken_with_typed_node_failed() {
    // Node 0 waits on a cv that only node 1 would signal; node 1 dies
    // after the wait is registered. The waiter must unwind with
    // DsmError::NodeFailed, not hang. The flag + sleep order the WaitCv
    // frame ahead of the obituary at cv 7's manager so the obituary
    // wake-up path (not the slower probe watchdog) is exercised.
    let parked = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&parked);
    let run = DsmSystem::run(supervised(2), move |node| {
        node.barrier();
        if node.id() == 1 {
            while !flag.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(50));
            node.fail_stop();
            return 0;
        }
        flag.store(true, Ordering::Release);
        match node.try_waitcv(7) {
            Err(DsmError::NodeFailed { node: dead }) => {
                assert_eq!(dead, 1);
                assert_eq!(node.known_dead(), vec![1]);
                1
            }
            other => panic!("expected NodeFailed, got {other:?}"),
        }
    });
    assert_eq!(run.results[0], 1);
    assert!(run.stats.iter().map(|s| s.waiters_woken).sum::<u64>() >= 1);
}

#[test]
fn pending_signals_survive_a_node_failed_wakeup() {
    // Counting semantics across recovery: a signal sent before the death
    // wake-up is not lost — a re-wait after the NodeFailed consumes it.
    let run = DsmSystem::run(supervised(3), |node| {
        node.barrier();
        match node.id() {
            2 => {
                node.fail_stop();
                0
            }
            1 => {
                // Signal once, then park on a cv nobody signals; the
                // obituary wake-up must not consume cv 0's pending signal.
                node.setcv(0);
                match node.try_waitcv(5) {
                    Err(DsmError::NodeFailed { .. }) => {}
                    other => panic!("expected NodeFailed, got {other:?}"),
                }
                1
            }
            _ => {
                // Consume the pending signal, possibly after a NodeFailed
                // wake-up raced it.
                loop {
                    match node.try_waitcv(0) {
                        Ok(()) => break,
                        Err(DsmError::NodeFailed { .. }) => continue,
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                }
                2
            }
        }
    });
    assert_eq!(run.results, vec![2, 1, 0]);
}

#[test]
fn barrier_completes_over_survivors_and_reports_dead() {
    let run = DsmSystem::run(supervised(4), |node| {
        node.barrier();
        if node.id() == 3 {
            node.fail_stop();
            return Vec::new();
        }
        // The dead node never arrives; survivors still pass.
        node.barrier_wait()
    });
    for id in 0..3 {
        assert_eq!(run.results[id], vec![3]);
    }
}

#[test]
fn stale_heartbeats_surface_as_suspicion_not_death() {
    let run = DsmSystem::run(supervised(2), |node| {
        let v = node.alloc_vec::<i64>(1);
        if node.id() == 1 {
            // Touch node 0's daemon early (heartbeat gossip piggybacks
            // on request traffic), then go silent.
            let _ = node.vec_get(&v, 0);
        }
        node.barrier();
        if node.id() == 0 {
            // Virtually long after node 1's last contact with daemon 0.
            node.advance(Duration::from_secs(1));
            let suspects = node.probe_suspects();
            assert_eq!(suspects, vec![1], "stale node 1 must be suspected");
            assert!(node.known_dead().is_empty(), "suspicion is not death");
        }
        node.barrier();
        node.id() as i64
    });
    assert_eq!(run.results, vec![0, 1]);
}

#[test]
fn heartbeats_are_counted_and_free_of_failures() {
    let run = DsmSystem::run(supervised(2), |node| {
        for _ in 0..5 {
            node.heartbeat();
        }
        node.barrier();
        0
    });
    assert_eq!(run.stats.iter().map(|s| s.heartbeats).sum::<u64>(), 10);
    assert_eq!(run.stats.iter().map(|s| s.obituaries).sum::<u64>(), 0);
}

#[test]
fn unsupervised_runs_pay_nothing() {
    // With supervision disabled (the default), no heartbeats are sent
    // and the sync ops take the plain blocking path.
    let run = DsmSystem::run(DsmConfig::new(2), |node| {
        node.heartbeat(); // no-op
        node.barrier();
        node.id()
    });
    assert_eq!(run.stats.iter().map(|s| s.heartbeats).sum::<u64>(), 0);
}
