//! Protocol edge cases: page-boundary access, eviction under pressure,
//! lock manager distribution, notice bookkeeping, and counter accuracy.

use genomedsm_dsm::{DsmConfig, DsmSystem, NetworkModel};

fn config(n: usize) -> DsmConfig {
    DsmConfig::new(n).network(NetworkModel::zero())
}

#[test]
fn values_spanning_page_boundaries_round_trip() {
    // With 64-byte pages, an i64 written every 60 bytes regularly crosses
    // page boundaries.
    let run = DsmSystem::run(config(2).page_size(64), |node| {
        let base = node.alloc_bytes(4096);
        node.barrier();
        if node.id() == 0 {
            for k in 0..60 {
                node.write::<i64>(base.offset(k * 60), &(k as i64 * 1_000_003));
            }
        }
        node.barrier();
        (0..60)
            .map(|k| node.read::<i64>(base.offset(k * 60)))
            .collect::<Vec<i64>>()
    });
    for r in &run.results {
        for (k, &v) in r.iter().enumerate() {
            assert_eq!(v, k as i64 * 1_000_003);
        }
    }
}

#[test]
fn locks_are_distributed_across_managers() {
    // Locks 0..8 on 4 nodes: managers are id % 4. All must work from any
    // node, including self-managed locks.
    let run = DsmSystem::run(config(4), |node| {
        let v = node.alloc_vec::<i64>(8);
        node.barrier();
        for lock in 0..8u32 {
            node.lock(lock);
            let i = lock as usize;
            let x = node.vec_get(&v, i);
            node.vec_set(&v, i, x + 1);
            node.unlock(lock);
        }
        node.barrier();
        node.vec_read_range(&v, 0..8)
    });
    for r in &run.results {
        assert_eq!(r, &vec![4i64; 8]);
    }
}

#[test]
fn eviction_of_modified_pages_preserves_writes() {
    // Cache of 2 pages, writes to 32 pages: every write-back must survive
    // eviction (the replacement algorithm flushes dirty victims).
    let run = DsmSystem::run(config(2).page_size(256).cache_pages(2), |node| {
        let v = node.alloc_vec::<i32>(2048); // 32 pages of 64 ints
        node.barrier();
        if node.id() == 1 {
            for i in 0..2048 {
                node.vec_set(&v, i, i as i32 ^ 0x5A5A);
            }
        }
        node.barrier();
        let mut ok = true;
        for i in 0..2048 {
            ok &= node.vec_get(&v, i) == i as i32 ^ 0x5A5A;
        }
        node.barrier();
        ok
    });
    assert_eq!(run.results, vec![true, true]);
}

#[test]
fn interleaved_condition_variables_do_not_cross_talk() {
    let run = DsmSystem::run(config(3), |node| {
        node.barrier();
        match node.id() {
            0 => {
                for _ in 0..10 {
                    node.setcv(10);
                    node.setcv(11);
                }
                0
            }
            1 => {
                let mut n = 0;
                for _ in 0..10 {
                    node.waitcv(10);
                    n += 1;
                }
                n
            }
            _ => {
                let mut n = 0;
                for _ in 0..10 {
                    node.waitcv(11);
                    n += 1;
                }
                n
            }
        }
    });
    assert_eq!(run.results, vec![0, 10, 10]);
}

#[test]
fn stats_counters_are_exact_for_a_scripted_run() {
    let run = DsmSystem::run(config(2).page_size(4096), |node| {
        let v = node.alloc_vec::<i32>(512); // 2048 B: one page, home node 0
        node.barrier();
        if node.id() == 1 {
            // One remote fetch (write fault), one diff at the barrier.
            node.vec_set(&v, 0, 7);
        }
        node.barrier();
        if node.id() == 1 {
            // Cached and not invalidated (we were the writer): no fetch.
            let _ = node.vec_get(&v, 0);
        }
        node.barrier();
    });
    let s1 = &run.stats[1];
    assert_eq!(s1.page_fetches, 1, "exactly one fault expected");
    assert_eq!(s1.diffs_sent, 1, "exactly one diff expected");
    let s0 = &run.stats[0];
    assert_eq!(s0.page_fetches, 0, "node 0 never touched the page");
}

#[test]
fn writer_keeps_its_copy_after_release() {
    // Scope consistency: the releaser's page stays valid (downgraded to
    // read-only), so re-reading it costs no new fetch.
    let run = DsmSystem::run(config(2), |node| {
        let v = node.alloc_vec::<i64>(64);
        node.barrier();
        if node.id() == 0 {
            node.lock(0);
            node.vec_set(&v, 3, 42);
            node.unlock(0);
            let fetches_before = node.stats().page_fetches;
            let x = node.vec_get(&v, 3);
            let fetches_after = node.stats().page_fetches;
            (x, fetches_after - fetches_before)
        } else {
            (0, 0)
        }
    });
    // Node 0 reads its own write without re-fetching.
    assert_eq!(run.results[0], (42, 0));
}

#[test]
fn eight_node_all_to_all_notices() {
    // Every node writes its own page; after the barrier every node reads
    // all pages. Tests notice fan-out at the paper's cluster size.
    const N: usize = 8;
    let run = DsmSystem::run(config(N), |node| {
        let v = node.alloc_vec::<i64>(N * 512); // one page per node
                                                // Cache everything (so invalidations have something to do).
        let _ = node.vec_read_range(&v, 0..N * 512);
        node.barrier();
        node.vec_set(&v, node.id() * 512, node.id() as i64 + 100);
        node.barrier();
        (0..N)
            .map(|k| node.vec_get(&v, k * 512))
            .collect::<Vec<i64>>()
    });
    for r in &run.results {
        let expect: Vec<i64> = (0..N as i64).map(|k| k + 100).collect();
        assert_eq!(r, &expect);
    }
}

#[test]
fn empty_allocation_is_harmless() {
    let run = DsmSystem::run(config(2), |node| {
        let v = node.alloc_vec::<i32>(0);
        node.barrier();
        node.vec_read_range(&v, 0..0).len()
    });
    assert_eq!(run.results, vec![0, 0]);
}

#[test]
fn sequential_lock_reuse_by_one_node() {
    let run = DsmSystem::run(config(1), |node| {
        for i in 0..100 {
            node.lock(5);
            node.unlock(5);
            let _ = i;
        }
        true
    });
    assert!(run.results[0]);
}

#[test]
#[should_panic(expected = "does not hold")]
fn unlock_without_lock_panics() {
    let _ = DsmSystem::run(config(1), |node| {
        node.unlock(9);
    });
}

#[test]
fn write_bytes_across_many_pages_then_read_back() {
    let run = DsmSystem::run(config(2).page_size(128), |node| {
        let base = node.alloc_bytes(10_000);
        node.barrier();
        let payload: Vec<u8> = (0..9_000).map(|i| (i % 251) as u8).collect();
        if node.id() == 0 {
            node.write_bytes(base.offset(500), &payload);
        }
        node.barrier();
        let mut buf = vec![0u8; 9_000];
        node.read_bytes(base.offset(500), &mut buf);
        buf == payload
    });
    assert_eq!(run.results, vec![true, true]);
}
