//! Deterministic export of the runtime lock-order graph.
//!
//! Runs a disciplined nested-lock workload and dumps the recorded
//! acquisition edges as the sorted `file:line -> file:line` list that
//! `genomedsm-analyze --crosscheck` consumes. CI points
//! `GENOMEDSM_LOCK_EDGES_OUT` at an artifact path; when the variable is
//! unset the test still verifies determinism and the wire format.
#![cfg(any(debug_assertions, feature = "lock-order"))]

use genomedsm_dsm::{DsmConfig, DsmRun, DsmSystem, LockOrderMode};

/// Lock ids named for the roles they play in the workload.
const PAGE_LOCK: u32 = 0;
const LEASE_TABLE: u32 = 1;
const LEDGER: u32 = 2;

/// A consistent-order workload touching three locks in nested pairs:
/// page -> lease, page -> ledger (nested under page only), and
/// page -> lease -> ledger on node 0.
fn disciplined_run() -> DsmRun<()> {
    DsmSystem::run(
        DsmConfig::new(2).lock_order(LockOrderMode::Record),
        |node| {
            node.lock(PAGE_LOCK);
            node.lock(LEASE_TABLE);
            if node.id() == 0 {
                node.lock(LEDGER);
                node.unlock(LEDGER);
            }
            node.unlock(LEASE_TABLE);
            node.unlock(PAGE_LOCK);
            node.barrier();
            node.lock(PAGE_LOCK);
            node.lock(LEDGER);
            node.unlock(LEDGER);
            node.unlock(PAGE_LOCK);
            node.barrier();
        },
    )
}

fn dump(run: &DsmRun<()>) -> Vec<String> {
    run.lock_order_edges
        .iter()
        .map(genomedsm_dsm::LockOrderEdge::wire_format)
        .collect()
}

#[test]
fn edge_dump_is_deterministic_and_well_formed() {
    let a = disciplined_run();
    let b = disciplined_run();
    assert!(a.lock_order_violations.is_empty());

    let lines_a = dump(&a);
    let lines_b = dump(&b);
    assert_eq!(lines_a, lines_b, "same workload must dump identical edges");
    assert!(
        !lines_a.is_empty(),
        "the workload holds locks while acquiring"
    );

    // Sorted, and every line is `file:line -> file:line` pointing here.
    let mut sorted = lines_a.clone();
    sorted.sort();
    assert_eq!(lines_a, sorted);
    for line in &lines_a {
        let (from, to) = line.split_once(" -> ").expect("arrow separator");
        for site in [from, to] {
            let (file, lineno) = site.rsplit_once(':').expect("file:line");
            assert!(file.ends_with("lock_order_dump.rs"), "{line}");
            assert!(lineno.parse::<u32>().is_ok(), "{line}");
        }
    }

    // The edge set matches the lock nesting above: page->lease,
    // page->ledger, lease->ledger.
    let pairs: std::collections::BTreeSet<(u32, u32)> = a
        .lock_order_edges
        .iter()
        .map(|e| (e.from_lock, e.to_lock))
        .collect();
    let expect: std::collections::BTreeSet<(u32, u32)> = [
        (PAGE_LOCK, LEASE_TABLE),
        (PAGE_LOCK, LEDGER),
        (LEASE_TABLE, LEDGER),
    ]
    .into_iter()
    .collect();
    assert_eq!(pairs, expect);

    // CI artifact for the static/runtime superset gate.
    if let Ok(path) = std::env::var("GENOMEDSM_LOCK_EDGES_OUT") {
        let mut text = lines_a.join("\n");
        text.push('\n');
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create artifact dir");
        }
        std::fs::write(&path, text).expect("write lock-order edge artifact");
    }
}
