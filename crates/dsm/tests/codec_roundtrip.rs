//! Wire-codec coverage: every `Msg` and `Reply` variant must survive
//! encode → decode bit-exactly, decoding must never panic on arbitrary
//! or mutated bytes (typed `DsmError` only), and frames must decode
//! identically regardless of delivery order or duplication — the codec
//! is stateless, which is what lets the transport layer dedup above it.

use genomedsm_dsm::codec::{decode_msg, decode_reply, encode_msg, encode_reply};
use genomedsm_dsm::msg::{Msg, Notice, Patch, Reply};

fn notices() -> Vec<Notice> {
    vec![
        Notice {
            page: 0,
            writer: 0,
            home: 0,
        },
        Notice {
            page: u64::MAX,
            writer: 7,
            home: 3,
        },
    ]
}

/// One representative of every request variant, with edge-case payloads.
fn all_msgs() -> Vec<Msg> {
    vec![
        Msg::GetPage {
            page: 42,
            from: 3,
            epoch: 9,
        },
        Msg::Diff {
            page: u64::MAX,
            from: 7,
            patches: vec![
                Patch {
                    offset: 0,
                    data: vec![],
                },
                Patch {
                    offset: 4090,
                    data: vec![0xff; 300],
                },
            ],
            epoch: 1,
        },
        Msg::Diff {
            page: 0,
            from: 0,
            patches: vec![],
            epoch: 0,
        },
        Msg::Acquire {
            lock: u32::MAX,
            from: 0,
            last_seq: u64::MAX,
        },
        Msg::Release {
            lock: 3,
            from: 1,
            notices: notices(),
        },
        Msg::SetCv {
            cv: 0,
            from: 5,
            notices: vec![],
        },
        Msg::WaitCv {
            cv: 11,
            from: 2,
            last_seq: 17,
        },
        Msg::Barrier {
            from: 6,
            notices: notices(),
        },
        Msg::MigrationNotice {
            epoch: 4,
            incoming: vec![1, 2, u64::MAX],
        },
        Msg::MigrateOut { page: 12, to: 5 },
        Msg::AdoptPage {
            page: 9,
            data: vec![7; 4096],
        },
        Msg::Shutdown,
        Msg::Heartbeat { node: 3 },
        Msg::Obituary {
            node: 7,
            incarnation: 1,
        },
        Msg::Rejoin {
            node: 7,
            incarnation: 2,
            admit_at_round: 19,
            stride: 4,
        },
        Msg::ProbeFailures {
            from: 1,
            cancel_waits: true,
            known: vec![2, 4],
        },
        Msg::ProbeFailures {
            from: 0,
            cancel_waits: false,
            known: vec![],
        },
    ]
}

/// One representative of every reply variant.
fn all_replies() -> Vec<Reply> {
    vec![
        Reply::Page {
            page: 3,
            data: vec![1, 2, 3],
        },
        Reply::Page {
            page: 0,
            data: vec![],
        },
        Reply::DiffAck,
        Reply::LockGranted {
            notices: notices(),
            seq: 88,
        },
        Reply::CvGranted {
            notices: vec![],
            seq: 0,
        },
        Reply::BarrierDone {
            notices: notices(),
            migrations: vec![(5, 1), (u64::MAX, 7)],
            dead: vec![],
        },
        Reply::BarrierDone {
            notices: vec![],
            migrations: vec![],
            dead: vec![2, 5],
        },
        Reply::NodeFailed { node: 6 },
        Reply::FailureReport {
            dead: vec![1, 4],
            suspects: vec![2],
            canceled: true,
            epoch: 3,
        },
        Reply::FailureReport {
            dead: vec![],
            suspects: vec![],
            canceled: false,
            epoch: 0,
        },
        Reply::RejoinAck {
            round: 9,
            dead: vec![2, 5],
            migrations: vec![(17, 3), (u64::MAX, 0)],
        },
        Reply::RejoinAck {
            round: 0,
            dead: vec![],
            migrations: vec![],
        },
    ]
}

#[test]
fn every_msg_variant_roundtrips() {
    for m in all_msgs() {
        let frame = encode_msg(&m);
        assert_eq!(decode_msg(&frame).unwrap(), m, "roundtrip failed for {m:?}");
    }
}

#[test]
fn every_reply_variant_roundtrips() {
    for r in all_replies() {
        let frame = encode_reply(&r);
        assert_eq!(
            decode_reply(&frame).unwrap(),
            r,
            "roundtrip failed for {r:?}"
        );
    }
}

#[test]
fn duplicated_and_reordered_delivery_decodes_identically() {
    // The codec is stateless: a retransmitted or queue-delayed frame
    // decodes to the same message no matter where it lands in the
    // delivery order. Simulate a shuffled, duplicated delivery schedule.
    let frames: Vec<(Msg, Vec<u8>)> = all_msgs()
        .into_iter()
        .map(|m| {
            let f = encode_msg(&m);
            (m, f)
        })
        .collect();
    let n = frames.len();
    // Deterministic "network schedule": each frame delivered twice, in a
    // stride permutation of the send order.
    for round in 0..2 {
        for k in 0..n {
            let i = (k * 5 + round * 3) % n;
            let (msg, frame) = &frames[i];
            assert_eq!(&decode_msg(frame).unwrap(), msg);
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn fuzz_arbitrary_bytes_never_panic() {
    // Seeded fuzz loop: random garbage of random lengths must produce a
    // typed error (or, vanishingly unlikely, a valid message) — never a
    // panic or an allocation blow-up.
    let mut rng = 0x5eed_u64;
    for _ in 0..5_000 {
        let len = (splitmix(&mut rng) % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| splitmix(&mut rng) as u8).collect();
        let _ = decode_msg(&bytes);
        let _ = decode_reply(&bytes);
    }
}

#[test]
fn fuzz_mutated_valid_frames_never_panic_and_single_flips_are_caught() {
    let msgs = all_msgs();
    let replies = all_replies();
    let mut rng = 0xfeed_u64;
    for i in 0..2_000 {
        if i % 2 == 0 {
            let m = &msgs[(splitmix(&mut rng) as usize) % msgs.len()];
            let mut frame = encode_msg(m);
            let idx = (splitmix(&mut rng) as usize) % frame.len();
            let flip = (splitmix(&mut rng) as u8) | 1; // non-zero XOR
            frame[idx] ^= flip;
            assert!(
                decode_msg(&frame).is_err(),
                "single-byte corruption of {m:?} at {idx} went undetected"
            );
        } else {
            let r = &replies[(splitmix(&mut rng) as usize) % replies.len()];
            let mut frame = encode_reply(r);
            let idx = (splitmix(&mut rng) as usize) % frame.len();
            let flip = (splitmix(&mut rng) as u8) | 1;
            frame[idx] ^= flip;
            assert!(
                decode_reply(&frame).is_err(),
                "single-byte corruption of {r:?} at {idx} went undetected"
            );
        }
    }
}

#[test]
fn truncations_of_every_variant_are_typed_errors() {
    for m in all_msgs() {
        let frame = encode_msg(&m);
        for cut in 0..frame.len() {
            assert!(decode_msg(&frame[..cut]).is_err());
        }
    }
    for r in all_replies() {
        let frame = encode_reply(&r);
        for cut in 0..frame.len() {
            assert!(decode_reply(&frame[..cut]).is_err());
        }
    }
}
