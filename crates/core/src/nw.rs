//! Global alignment (§2.3) entry points used by phase 2.
//!
//! Phase 2 of the pipeline (§4.4) retrieves the actual alignments: for each
//! similar region found in phase 1, the corresponding subsequences are
//! aligned globally with the Needleman–Wunsch algorithm. Subsequences are
//! small (~300 bp on the paper's data), so the full-matrix method is fine;
//! [`align_global`] switches to Hirschberg's linear-space method above a
//! size threshold so callers never accidentally allocate quadratic memory
//! on a huge region.

use crate::alignment::{GlobalAlignment, LocalRegion};
use crate::linear::nw_last_row;
use crate::matrix::nw_align;
use crate::scoring::Scoring;

/// Above this many matrix cells, [`align_global`] uses Hirschberg instead
/// of the full matrix (16M cells ≈ 80 MB of score+arrow storage).
const FULL_MATRIX_CELL_LIMIT: usize = 16 << 20;

/// Global alignment score in linear space (no traceback).
pub fn nw_score(s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
    nw_last_row(s, t, scoring)[t.len()]
}

/// Global alignment with traceback, choosing full-matrix or Hirschberg by
/// problem size.
pub fn align_global(s: &[u8], t: &[u8], scoring: &Scoring) -> GlobalAlignment {
    if (s.len() + 1).saturating_mul(t.len() + 1) <= FULL_MATRIX_CELL_LIMIT {
        nw_align(s, t, scoring)
    } else {
        crate::hirschberg::hirschberg_align(s, t, scoring)
    }
}

/// The phase-2 unit of work: globally aligns the subsequences named by a
/// phase-1 region (§4.4). Output mirrors Fig. 16: region coordinates, the
/// similarity score, and the two aligned rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAlignment {
    /// The phase-1 region that selected the subsequences.
    pub region: LocalRegion,
    /// The global alignment of `s[region.s_begin..s_end]` against
    /// `t[region.t_begin..t_end]`.
    pub alignment: GlobalAlignment,
}

/// Globally aligns the subsequences of one phase-1 region.
///
/// # Panics
/// Panics if the region's coordinates exceed the sequences.
pub fn align_region(
    s: &[u8],
    t: &[u8],
    region: &LocalRegion,
    scoring: &Scoring,
) -> RegionAlignment {
    let sub_s = &s[region.s_begin..region.s_end];
    let sub_t = &t[region.t_begin..region.t_end];
    RegionAlignment {
        region: *region,
        alignment: align_global(sub_s, sub_t, scoring),
    }
}

/// Renders a [`RegionAlignment`] in the paper's Fig. 16 format.
pub fn render_region_alignment(ra: &RegionAlignment) -> String {
    let ((sb, tb), (se, te)) = ra.region.paper_coords();
    let mut out = String::new();
    out.push_str(&format!("initial_x: {sb} final_x: {se}\n"));
    out.push_str(&format!("initial_y: {tb} final_y: {te}\n"));
    out.push_str(&format!("similarity: {}\n", ra.alignment.score));
    for chunk in ra.alignment.aligned_s.chunks(32) {
        out.push_str(&format!(
            "align_s: {}\n",
            std::str::from_utf8(chunk).expect("ASCII")
        ));
    }
    for chunk in ra.alignment.aligned_t.chunks(32) {
        out.push_str(&format!(
            "align_t: {}\n",
            std::str::from_utf8(chunk).expect("ASCII")
        ));
    }
    out
}

/// A banded global alignment: only cells with `|i − j| <= band` are
/// considered. Returns `None` if the band cannot connect the two corners
/// (`|m − n| > band`). Used by the BlastN-like baseline's gapped extension,
/// where seeds guarantee the optimum stays near the diagonal.
pub fn nw_banded(s: &[u8], t: &[u8], scoring: &Scoring, band: usize) -> Option<GlobalAlignment> {
    let (m, n) = (s.len(), t.len());
    if m.abs_diff(n) > band {
        return None;
    }
    const NEG: i32 = i32::MIN / 4;
    let width = 2 * band + 1;
    // score[i][k] where k = j - i + band ∈ 0..width
    let mut score = vec![NEG; (m + 1) * width];
    let mut dir = vec![0u8; (m + 1) * width];
    let idx = |i: usize, k: usize| i * width + k;
    let col = |i: usize, j: usize| -> Option<usize> {
        let k = j as isize - i as isize + band as isize;
        (0..width as isize).contains(&k).then_some(k as usize)
    };
    for i in 0..=m {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(n);
        for j in j_lo..=j_hi {
            let k = col(i, j).expect("in band");
            if i == 0 && j == 0 {
                score[idx(0, k)] = 0;
                continue;
            }
            let mut best = NEG;
            let mut d = 0u8;
            if i > 0 && j > 0 {
                if let Some(pk) = col(i - 1, j - 1) {
                    let v = score[idx(i - 1, pk)] + scoring.subst(s[i - 1], t[j - 1]);
                    if v > best {
                        best = v;
                        d = crate::matrix::DIAG;
                    }
                }
            }
            if i > 0 {
                if let Some(pk) = col(i - 1, j) {
                    let v = score[idx(i - 1, pk)] + scoring.gap;
                    if v > best {
                        best = v;
                        d = crate::matrix::UP;
                    }
                }
            }
            if j > 0 {
                if let Some(pk) = col(i, j - 1) {
                    let v = score[idx(i, pk)] + scoring.gap;
                    if v > best {
                        best = v;
                        d = crate::matrix::LEFT;
                    }
                }
            }
            score[idx(i, k)] = best;
            dir[idx(i, k)] = d;
        }
    }
    let end_k = col(m, n)?;
    if score[idx(m, end_k)] <= NEG / 2 {
        return None;
    }
    // Traceback within the band.
    let (mut i, mut j) = (m, n);
    let mut rs = Vec::new();
    let mut rt = Vec::new();
    while i > 0 || j > 0 {
        let k = col(i, j).expect("in band during traceback");
        match dir[idx(i, k)] {
            d if d & crate::matrix::DIAG != 0 => {
                i -= 1;
                j -= 1;
                rs.push(s[i]);
                rt.push(t[j]);
            }
            d if d & crate::matrix::UP != 0 => {
                i -= 1;
                rs.push(s[i]);
                rt.push(b'-');
            }
            d if d & crate::matrix::LEFT != 0 => {
                j -= 1;
                rs.push(b'-');
                rt.push(t[j]);
            }
            _ => unreachable!("reached a dead cell during banded traceback"),
        }
    }
    rs.reverse();
    rt.reverse();
    Some(GlobalAlignment {
        aligned_s: rs,
        aligned_t: rt,
        score: score[idx(m, end_k)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn nw_score_matches_full_alignment() {
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        assert_eq!(nw_score(s, t, &SC), nw_align(s, t, &SC).score);
        assert_eq!(nw_score(s, t, &SC), 6);
    }

    #[test]
    fn align_global_small_uses_exact_score() {
        let g = align_global(b"ACGTACGT", b"ACTTACGT", &SC);
        assert_eq!(g.score, nw_score(b"ACGTACGT", b"ACTTACGT", &SC));
    }

    #[test]
    fn align_region_extracts_subsequences() {
        let s = b"TTTTGACGGATTAGTTTT";
        let t = b"AAAAGATCGGAATAGAAAA";
        let region = LocalRegion {
            s_begin: 4,
            s_end: 14,
            t_begin: 4,
            t_end: 15,
            score: 6,
        };
        let ra = align_region(s, t, &region, &SC);
        assert_eq!(ra.alignment.score, 6);
        let s_chars: Vec<u8> = ra
            .alignment
            .aligned_s
            .iter()
            .copied()
            .filter(|&c| c != b'-')
            .collect();
        assert_eq!(&s_chars, b"GACGGATTAG");
    }

    #[test]
    fn render_matches_fig16_shape() {
        let region = LocalRegion {
            s_begin: 4,
            s_end: 14,
            t_begin: 4,
            t_end: 15,
            score: 6,
        };
        let ra = align_region(b"TTTTGACGGATTAGTTTT", b"AAAAGATCGGAATAGAAAA", &region, &SC);
        let text = render_region_alignment(&ra);
        assert!(text.contains("initial_x: 5"));
        assert!(text.contains("similarity: 6"));
        assert!(text.contains("align_s:"));
        assert!(text.contains("align_t:"));
    }

    #[test]
    fn banded_equals_full_when_band_wide_enough() {
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        let banded = nw_banded(s, t, &SC, t.len()).expect("band covers all");
        assert_eq!(banded.score, nw_align(s, t, &SC).score);
    }

    #[test]
    fn banded_rejects_impossible_band() {
        assert!(nw_banded(b"AAAAAAAA", b"AA", &SC, 2).is_none());
    }

    #[test]
    fn banded_narrow_band_still_aligns_near_diagonal() {
        let s = b"ACGTACGTACGTACGT";
        let t = b"ACGTACCTACGTACGT"; // one substitution
        let g = nw_banded(s, t, &SC, 2).expect("near-diagonal");
        assert_eq!(g.score, 14); // 15 matches, 1 mismatch
    }

    #[test]
    fn banded_with_indel_inside_band() {
        let s = b"ACGTACGTACGT";
        let t = b"ACGTACGGTACGT"; // one insertion in t
        let g = nw_banded(s, t, &SC, 3).expect("indel within band");
        assert_eq!(g.score, nw_align(s, t, &SC).score);
    }

    #[test]
    fn banded_empty_sequences() {
        let g = nw_banded(b"", b"", &SC, 0).expect("trivial");
        assert_eq!(g.score, 0);
        assert!(nw_banded(b"", b"AC", &SC, 2).unwrap().score == -4);
    }
}
