//! Linear-space Smith–Waterman scoring (§4.1, opening paragraphs).
//!
//! "It is possible to simulate the filling of the original bi-dimensional
//! array using only two rows of memory, because in order to compute entry
//! `A[i,j]` we require only the values of `A[i−1,j]`, `A[i−1,j−1]` and
//! `A[i,j−1]`." Space complexity O(n), time O(n²).
//!
//! This module provides the plain-score version (no candidate-alignment
//! metadata): it finds the best score and its end point, optionally every
//! end point over a threshold, and counts threshold hits — which is exactly
//! the information the pre-process strategy (§5) keeps.

use crate::scoring::Scoring;

/// Result of a linear-space SW pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSwResult {
    /// Best score in the whole (virtual) array.
    pub best_score: i32,
    /// End point of the best score: `(i, j)` with `i` over `s`, `j` over
    /// `t`, 0-based *matrix* coordinates (so `i ∈ 1..=|s|` when the best
    /// score is positive; `(0, 0)` when everything scored zero).
    pub best_end: (usize, usize),
    /// Number of cells whose score was `>= threshold` (the pre-process
    /// strategy's "hit" count).
    pub hits: u64,
}

/// Runs the SW recurrence over `s` (rows) and `t` (columns) keeping two
/// rows, returning the best score, its end point, and the number of cells
/// scoring at least `threshold`.
pub fn sw_score_linear(s: &[u8], t: &[u8], scoring: &Scoring, threshold: i32) -> LinearSwResult {
    let n = t.len();
    let mut prev = vec![0i32; n + 1];
    let mut cur = vec![0i32; n + 1];
    let mut best = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: 0,
    };
    for (i, &sc) in s.iter().enumerate() {
        cur[0] = 0;
        for j in 1..=n {
            let diag = prev[j - 1] + scoring.subst(sc, t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            let v = diag.max(up).max(left).max(0);
            cur[j] = v;
            if v >= threshold && threshold > 0 {
                best.hits += 1;
            }
            if v > best.best_score {
                best.best_score = v;
                best.best_end = (i + 1, j);
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// All end points whose score is at least `min_score`, as
/// `(i, j, score)` in matrix coordinates. This is the "detected alignments
/// of desired score" input to the Section-6 reverse pass (Algorithm 1,
/// line 2). Overlapping end points on the same diagonal are kept — the
/// caller deduplicates after start recovery.
pub fn sw_ends_over(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    min_score: i32,
) -> Vec<(usize, usize, i32)> {
    assert!(min_score > 0, "min_score must be positive for local ends");
    let n = t.len();
    let mut prev = vec![0i32; n + 1];
    let mut cur = vec![0i32; n + 1];
    let mut ends = Vec::new();
    for (i, &sc) in s.iter().enumerate() {
        cur[0] = 0;
        for j in 1..=n {
            let diag = prev[j - 1] + scoring.subst(sc, t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            let v = diag.max(up).max(left).max(0);
            cur[j] = v;
            if v >= min_score {
                ends.push((i + 1, j, v));
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    ends
}

/// One row of the global-alignment (NW) score array in linear space:
/// returns row `|s|` of the `nw_matrix(s, t)` array. This is the
/// building block of Hirschberg's divide-and-conquer.
pub fn nw_last_row(s: &[u8], t: &[u8], scoring: &Scoring) -> Vec<i32> {
    let n = t.len();
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * scoring.gap).collect();
    let mut cur = vec![0i32; n + 1];
    for &sc in s {
        cur[0] = prev[0] + scoring.gap;
        for j in 1..=n {
            let diag = prev[j - 1] + scoring.subst(sc, t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{nw_matrix, sw_matrix};

    const SC: Scoring = Scoring::paper();

    #[test]
    fn linear_matches_full_matrix_best() {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let full = sw_matrix(s, t, &SC);
        let (i, j, best) = full.maximum();
        let lin = sw_score_linear(s, t, &SC, 1);
        assert_eq!(lin.best_score, best);
        assert_eq!(lin.best_end, (i, j));
        assert_eq!(best, 6);
    }

    #[test]
    fn hit_count_matches_full_matrix() {
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        for threshold in 1..=6 {
            let full = sw_matrix(s, t, &SC).cells_at_least(threshold).len() as u64;
            let lin = sw_score_linear(s, t, &SC, threshold);
            assert_eq!(lin.hits, full, "threshold {threshold}");
        }
    }

    #[test]
    fn empty_sequences_score_zero() {
        let r = sw_score_linear(b"", b"ACGT", &SC, 1);
        assert_eq!(r.best_score, 0);
        assert_eq!(r.hits, 0);
        let r = sw_score_linear(b"ACGT", b"", &SC, 1);
        assert_eq!(r.best_score, 0);
    }

    #[test]
    fn identical_sequences_score_is_length() {
        let r = sw_score_linear(b"ACGTACGT", b"ACGTACGT", &SC, 1);
        assert_eq!(r.best_score, 8);
        assert_eq!(r.best_end, (8, 8));
    }

    #[test]
    fn ends_over_includes_best_end() {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let ends = sw_ends_over(s, t, &SC, 6);
        assert!(ends.contains(&(14, 15, 6)));
        // Every reported end's score really is >= 6 per the oracle.
        let full = sw_matrix(s, t, &SC);
        for &(i, j, v) in &ends {
            assert_eq!(full.get(i, j), v);
            assert!(v >= 6);
        }
    }

    #[test]
    #[should_panic(expected = "min_score")]
    fn ends_over_rejects_nonpositive_threshold() {
        let _ = sw_ends_over(b"A", b"A", &SC, 0);
    }

    #[test]
    fn nw_last_row_matches_full_matrix() {
        let s = b"ATAGCT";
        let t = b"GATATGCA";
        let full = nw_matrix(s, t, &SC);
        let row = nw_last_row(s, t, &SC);
        for j in 0..=t.len() {
            assert_eq!(row[j], full.get(s.len(), j), "column {j}");
        }
    }

    #[test]
    fn nw_last_row_empty_s_is_gap_ramp() {
        let row = nw_last_row(b"", b"ACG", &SC);
        assert_eq!(row, vec![0, -2, -4, -6]);
    }
}
