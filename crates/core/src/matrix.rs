//! The full O(m·n)-space similarity array of §2.1–2.3, with traceback
//! arrows (Figs. 3–4).
//!
//! Rows are indexed by `s` (`i ∈ 0..=m`), columns by `t` (`j ∈ 0..=n`).
//! Cell `(i, j)` holds `sim(s[1..i], t[1..j])`. Arrows record where the
//! maximum came from:
//!
//! * **west** (`LEFT`, from `(i, j−1)`) — a space in `s` matching `t[j]`;
//! * **north** (`UP`, from `(i−1, j)`) — `s[i]` matching a space in `t`;
//! * **north-west** (`DIAG`) — `s[i]` matching `t[j]`.
//!
//! This module exists for small inputs (retrieving actual alignments) and
//! as the oracle the linear-space and parallel implementations are tested
//! against. The quadratic memory is exactly what the paper's strategies
//! are designed to avoid.

use crate::alignment::{GlobalAlignment, LocalRegion};
use crate::scoring::Scoring;

/// Arrow bit: the cell value came from the north-west neighbour.
pub const DIAG: u8 = 0b001;
/// Arrow bit: the cell value came from the north neighbour (gap in `t`).
pub const UP: u8 = 0b010;
/// Arrow bit: the cell value came from the west neighbour (gap in `s`).
pub const LEFT: u8 = 0b100;

/// A dense `(m+1) × (n+1)` similarity array with arrows.
#[derive(Debug, Clone)]
pub struct DpMatrix {
    m: usize,
    n: usize,
    score: Vec<i32>,
    dir: Vec<u8>,
}

impl DpMatrix {
    /// Number of rows minus one (= `|s|`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of columns minus one (= `|t|`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Score at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        self.score[i * (self.n + 1) + j]
    }

    /// Arrow bits at `(i, j)` (union of [`DIAG`], [`UP`], [`LEFT`]).
    #[inline]
    pub fn arrows(&self, i: usize, j: usize) -> u8 {
        self.dir[i * (self.n + 1) + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: i32, d: u8) {
        let idx = i * (self.n + 1) + j;
        self.score[idx] = v;
        self.dir[idx] = d;
    }

    /// Position and value of the array maximum (first occurrence in
    /// row-major order). For SW this is the end point of a best local
    /// alignment.
    pub fn maximum(&self) -> (usize, usize, i32) {
        let mut best = (0, 0, i32::MIN);
        for i in 0..=self.m {
            for j in 0..=self.n {
                let v = self.get(i, j);
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        best
    }

    /// All cells whose score is `>= threshold`, as `(i, j, score)`.
    pub fn cells_at_least(&self, threshold: i32) -> Vec<(usize, usize, i32)> {
        let mut out = Vec::new();
        for i in 0..=self.m {
            for j in 0..=self.n {
                let v = self.get(i, j);
                if v >= threshold {
                    out.push((i, j, v));
                }
            }
        }
        out
    }
}

/// Builds the local-alignment (Smith–Waterman) array of §2.1: first row and
/// column are zero and every entry is clamped at zero (Eq. 1).
pub fn sw_matrix(s: &[u8], t: &[u8], scoring: &Scoring) -> DpMatrix {
    let (m, n) = (s.len(), t.len());
    let mut a = DpMatrix {
        m,
        n,
        score: vec![0; (m + 1) * (n + 1)],
        dir: vec![0; (m + 1) * (n + 1)],
    };
    for i in 1..=m {
        for j in 1..=n {
            let diag = a.get(i - 1, j - 1) + scoring.subst(s[i - 1], t[j - 1]);
            let up = a.get(i - 1, j) + scoring.gap;
            let left = a.get(i, j - 1) + scoring.gap;
            let best = diag.max(up).max(left).max(0);
            let mut d = 0u8;
            if best > 0 {
                if diag == best {
                    d |= DIAG;
                }
                if up == best {
                    d |= UP;
                }
                if left == best {
                    d |= LEFT;
                }
            }
            a.set(i, j, best, d);
        }
    }
    a
}

/// Builds the global-alignment (Needleman–Wunsch) array of §2.3: negative
/// values allowed, first row and column filled with the gap penalty
/// (Fig. 4).
pub fn nw_matrix(s: &[u8], t: &[u8], scoring: &Scoring) -> DpMatrix {
    let (m, n) = (s.len(), t.len());
    let mut a = DpMatrix {
        m,
        n,
        score: vec![0; (m + 1) * (n + 1)],
        dir: vec![0; (m + 1) * (n + 1)],
    };
    for i in 1..=m {
        a.set(i, 0, i as i32 * scoring.gap, UP);
    }
    for j in 1..=n {
        a.set(0, j, j as i32 * scoring.gap, LEFT);
    }
    for i in 1..=m {
        for j in 1..=n {
            let diag = a.get(i - 1, j - 1) + scoring.subst(s[i - 1], t[j - 1]);
            let up = a.get(i - 1, j) + scoring.gap;
            let left = a.get(i, j - 1) + scoring.gap;
            let best = diag.max(up).max(left);
            let mut d = 0u8;
            if diag == best {
                d |= DIAG;
            }
            if up == best {
                d |= UP;
            }
            if left == best {
                d |= LEFT;
            }
            a.set(i, j, best, d);
        }
    }
    a
}

/// Follows arrows from `(i, j)` back to a cell with no arrow (or, for SW, a
/// zero cell), building the alignment right to left (§2.2). Arrow
/// preference when several are present: `DIAG`, then `UP`, then `LEFT`
/// (deterministic; any choice yields an optimal alignment).
///
/// Returns the alignment plus the start cell `(i0, j0)`.
pub fn traceback(
    a: &DpMatrix,
    s: &[u8],
    t: &[u8],
    mut i: usize,
    mut j: usize,
) -> (GlobalAlignment, (usize, usize)) {
    let score = a.get(i, j);
    let mut rs = Vec::new();
    let mut rt = Vec::new();
    loop {
        let d = a.arrows(i, j);
        if d == 0 {
            break;
        }
        if d & DIAG != 0 {
            i -= 1;
            j -= 1;
            rs.push(s[i]);
            rt.push(t[j]);
        } else if d & UP != 0 {
            i -= 1;
            rs.push(s[i]);
            rt.push(b'-');
        } else {
            j -= 1;
            rs.push(b'-');
            rt.push(t[j]);
        }
    }
    rs.reverse();
    rt.reverse();
    (
        GlobalAlignment {
            aligned_s: rs,
            aligned_t: rt,
            score,
        },
        (i, j),
    )
}

/// Computes the best local alignment of `s` and `t` by the full-matrix
/// method: build the SW array, find the maximum, trace back. Returns the
/// alignment and its region coordinates.
pub fn sw_align(s: &[u8], t: &[u8], scoring: &Scoring) -> (GlobalAlignment, LocalRegion) {
    let a = sw_matrix(s, t, scoring);
    let (ei, ej, score) = a.maximum();
    let (alignment, (bi, bj)) = traceback(&a, s, t, ei, ej);
    (
        alignment,
        LocalRegion {
            s_begin: bi,
            s_end: ei,
            t_begin: bj,
            t_end: ej,
            score,
        },
    )
}

/// Computes the global alignment of `s` and `t` by the full-matrix method.
pub fn nw_align(s: &[u8], t: &[u8], scoring: &Scoring) -> GlobalAlignment {
    let a = nw_matrix(s, t, scoring);
    let (alignment, start) = traceback(&a, s, t, s.len(), t.len());
    debug_assert_eq!(start, (0, 0), "global traceback must reach the origin");
    alignment
}

/// Renders the similarity array as text (rows = `s`, columns = `t`),
/// mirroring the layout of the paper's Figs. 3–4 for small examples.
pub fn render(a: &DpMatrix, s: &[u8], t: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("      ");
    for &c in t {
        let _ = write!(out, "{:>4}", c as char);
    }
    out.push('\n');
    for i in 0..=a.m() {
        if i == 0 {
            out.push_str("  ");
        } else {
            let _ = write!(out, "{} ", s[i - 1] as char);
        }
        for j in 0..=a.n() {
            let _ = write!(out, "{:>4}", a.get(i, j));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    /// §2.1's example: s = ATAGCT, t = GATATGCA. The array's maximum is the
    /// best local alignment score.
    #[test]
    fn fig3_example_best_local_score() {
        let s = b"ATAGCT";
        let t = b"GATATGCA";
        let a = sw_matrix(s, t, &SC);
        let (_, _, best) = a.maximum();
        // Best local alignment score is 3: e.g. s[1..5] = ATA-GC against
        // t[2..7] = ATATGC (5 matches, 1 space). The paper states the best
        // value appears at A[7,5] with rows indexed by t — (i=5, j=7) in
        // our (s, t) orientation. Score 3 is also reached earlier in
        // row-major order (ATA against ATA at (3,4)), so check the paper's
        // cell holds the maximum rather than where `maximum()` lands.
        assert_eq!(best, 3);
        assert_eq!(a.get(5, 7), 3);
    }

    #[test]
    fn sw_first_row_and_column_zero() {
        let a = sw_matrix(b"ACGT", b"TGCA", &SC);
        for i in 0..=4 {
            assert_eq!(a.get(i, 0), 0);
            assert_eq!(a.get(0, i), 0);
        }
    }

    #[test]
    fn sw_never_negative() {
        let a = sw_matrix(b"AAAA", b"TTTT", &SC);
        for i in 0..=4 {
            for j in 0..=4 {
                assert!(a.get(i, j) >= 0);
            }
        }
    }

    #[test]
    fn nw_borders_are_gap_multiples() {
        let a = nw_matrix(b"ATAGCT", b"GATATGCA", &SC);
        for i in 0..=6 {
            assert_eq!(a.get(i, 0), -2 * i as i32);
        }
        for j in 0..=8 {
            assert_eq!(a.get(0, j), -2 * j as i32);
        }
    }

    /// Fig. 1: aligning s = GACGGATTAG and t = GATCGGAATAG globally gives
    /// score 6 (nine matches, one mismatch, one space).
    #[test]
    fn fig1_global_alignment_score() {
        let g = nw_align(b"GACGGATTAG", b"GATCGGAATAG", &SC);
        assert_eq!(g.score, 6);
        let (m, x, gaps) = g.column_stats();
        assert_eq!(m, 9);
        assert_eq!(x, 1);
        assert_eq!(gaps, 1);
        assert_eq!(g.recompute_score(&SC), 6);
    }

    /// §6's worked example: the SW maximum is 6, "finishing at positions 14
    /// and 15 of s and t" (1-based), where s and t are the Table 5 strings.
    #[test]
    fn table5_example_score_and_end() {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let a = sw_matrix(s, t, &SC);
        let (i, j, best) = a.maximum();
        assert_eq!(best, 6);
        assert_eq!((i, j), (14, 15));
    }

    /// Tracing back from the Table 5 end point yields an optimal local
    /// alignment of score 6. The paper's Fig. 1 renders the longer variant
    /// GA-CGGATTAG / GATCGGAATAG starting at (5, 5); our DIAG-first
    /// traceback stops at the first zero cell, giving the equally optimal
    /// *minimal-length* variant CGGATTAG / CGGAATAG starting at (7, 8)
    /// (1-based) — the Theorem-6.2 "maximal positions" choice.
    #[test]
    fn table5_traceback_matches_fig1() {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let a = sw_matrix(s, t, &SC);
        let (g, (bi, bj)) = traceback(&a, s, t, 14, 15);
        assert_eq!(g.score, 6);
        assert_eq!((bi, bj), (6, 7)); // covers s[7..14], t[8..15] 1-based
        assert_eq!(g.column_stats(), (7, 1, 0));
        assert_eq!(g.recompute_score(&SC), 6);
    }

    #[test]
    fn sw_align_returns_consistent_region() {
        let (g, r) = sw_align(b"TCTCGACGGATTAGTATATATATA", b"ATATGATCGGAATAGCTCT", &SC);
        assert_eq!(r.score, 6);
        assert_eq!((r.s_end, r.t_end), (14, 15));
        assert_eq!((r.s_begin, r.t_begin), (6, 7));
        // The rendered rows must project onto exactly the region.
        let s_chars = g.aligned_s.iter().filter(|&&c| c != b'-').count();
        let t_chars = g.aligned_t.iter().filter(|&&c| c != b'-').count();
        assert_eq!(s_chars, r.s_len());
        assert_eq!(t_chars, r.t_len());
    }

    #[test]
    fn nw_identical_sequences() {
        let g = nw_align(b"ACGTACGT", b"ACGTACGT", &SC);
        assert_eq!(g.score, 8);
        assert_eq!(g.column_stats(), (8, 0, 0));
    }

    #[test]
    fn nw_empty_vs_nonempty_is_all_gaps() {
        let g = nw_align(b"", b"ACG", &SC);
        assert_eq!(g.score, -6);
        assert_eq!(g.aligned_s, b"---".to_vec());
        assert_eq!(g.aligned_t, b"ACG".to_vec());
    }

    #[test]
    fn nw_both_empty() {
        let g = nw_align(b"", b"", &SC);
        assert_eq!(g.score, 0);
        assert_eq!(g.columns(), 0);
    }

    #[test]
    fn sw_empty_inputs() {
        let (g, r) = sw_align(b"", b"ACGT", &SC);
        assert_eq!(g.score, 0);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn symmetry_of_best_score() {
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        let a = sw_matrix(s, t, &SC).maximum().2;
        let b = sw_matrix(t, s, &SC).maximum().2;
        assert_eq!(a, b);
    }

    #[test]
    fn arrows_present_only_on_positive_sw_cells() {
        let a = sw_matrix(b"ACGT", b"ACGT", &SC);
        for i in 0..=4 {
            for j in 0..=4 {
                if a.get(i, j) == 0 {
                    assert_eq!(a.arrows(i, j), 0);
                } else {
                    assert_ne!(a.arrows(i, j), 0);
                }
            }
        }
    }

    #[test]
    fn render_contains_sequences_and_scores() {
        let a = sw_matrix(b"AC", b"AG", &SC);
        let txt = render(&a, b"AC", b"AG");
        assert!(txt.contains('A'));
        assert!(txt.contains('1'));
    }

    #[test]
    fn cells_at_least_finds_threshold_hits() {
        let a = sw_matrix(b"ACGT", b"ACGT", &SC);
        let hits = a.cells_at_least(4);
        assert_eq!(hits, vec![(4, 4, 4)]);
        assert!(a.cells_at_least(1).len() > 4);
    }
}
