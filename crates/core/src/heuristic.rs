//! The Martins-style candidate-alignment heuristic of §4.1.
//!
//! The linear-space recurrence of [`crate::linear`] finds scores but loses
//! the alignments. To keep O(n) space *and* recover alignment coordinates,
//! the paper augments every cell with metadata ([`HCell`]):
//!
//! * the current score `A[i,j]`,
//! * initial alignment coordinates (`beg`),
//! * maximal and minimal score seen along the carried candidate,
//! * gaps / matches / mismatches counters,
//! * a flag saying whether the cell carries an open candidate alignment.
//!
//! Rules (§4.1, our reading of the ambiguous points documented inline):
//!
//! * A candidate **opens** when the flag is 0 and `max >= min + open`,
//!   where `open` is the user's "minimum value for opening". The initial
//!   coordinates are set to the current position.
//! * A candidate **closes** when the flag is 1 and the current score drops
//!   to `max − close` or below. The candidate (begin, end, max score) is
//!   pushed onto the queue when its score clears `min_score`, and the flag
//!   returns to 0. *Interpretation:* we also reset the min/max envelope to
//!   the current score at close time so a later rise can re-open a fresh
//!   candidate; without this the stale maximum would block re-opening.
//!   The gap/match/mismatch counters are **not** reset (the paper is
//!   explicit about that).
//! * When the maximum of Eq. (1) is reached by several predecessors, the
//!   one with the largest `2·matches + 2·mismatches + gaps` wins; if that
//!   still ties, preference is horizontal (west), then vertical (north),
//!   then diagonal — "a trial to keep the gaps together".
//! * A zero cell carries no candidate: its state is fully reset
//!   (*interpretation:* a zero means no alignment passes through, so the
//!   counters restart; the paper's "not reset" clause concerns closing,
//!   not zero cells).
//!
//! [`RowKernel::process_row_segment`] processes a contiguous block of one
//! row given the previous row and a left-border cell. The serial driver
//! [`heuristic_align`] and both parallel strategies (in
//! `genomedsm-strategies`) are thin loops around it, so the sequential and
//! parallel implementations compute byte-identical cells.

use crate::alignment::{finalize_queue, LocalRegion};
use crate::scoring::Scoring;

/// Per-cell candidate-alignment state (§4.1). `score` is `A[i,j]`; the
/// remaining fields describe the candidate alignment carried through this
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct HCell {
    /// Current similarity score `A[i,j]`.
    pub score: i32,
    /// Maximal score seen along the carried candidate.
    pub max: i32,
    /// Minimal score seen along the carried candidate.
    pub min: i32,
    /// Row coordinate where the candidate opened (matrix coords, 1-based).
    pub beg_i: u32,
    /// Column coordinate where the candidate opened.
    pub beg_j: u32,
    /// Gap counter (not reset on close).
    pub gaps: u32,
    /// Match counter (not reset on close).
    pub matches: u32,
    /// Mismatch counter (not reset on close).
    pub mismatches: u32,
    /// Candidate-open flag.
    pub open: bool,
}

impl HCell {
    /// Number of bytes in the portable encoding.
    pub const ENCODED_LEN: usize = 33;

    /// A cell carrying no candidate (score 0, everything reset). This is
    /// the state of the initial row/column and of any zero cell.
    pub const fn fresh() -> Self {
        Self {
            score: 0,
            max: 0,
            min: 0,
            beg_i: 0,
            beg_j: 0,
            gaps: 0,
            matches: 0,
            mismatches: 0,
            open: false,
        }
    }

    /// The tie-break priority of §4.1: `2·matches + 2·mismatches + gaps`
    /// ("gaps are penalized while matches and mismatches are rewarded" —
    /// the larger value wins as the origin of the current entry).
    #[inline]
    pub fn priority(&self) -> u64 {
        2 * self.matches as u64 + 2 * self.mismatches as u64 + self.gaps as u64
    }

    /// Serializes to a fixed-size little-endian byte layout (for moving
    /// cells through DSM pages).
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= Self::ENCODED_LEN);
        out[0..4].copy_from_slice(&self.score.to_le_bytes());
        out[4..8].copy_from_slice(&self.max.to_le_bytes());
        out[8..12].copy_from_slice(&self.min.to_le_bytes());
        out[12..16].copy_from_slice(&self.beg_i.to_le_bytes());
        out[16..20].copy_from_slice(&self.beg_j.to_le_bytes());
        out[20..24].copy_from_slice(&self.gaps.to_le_bytes());
        out[24..28].copy_from_slice(&self.matches.to_le_bytes());
        out[28..32].copy_from_slice(&self.mismatches.to_le_bytes());
        out[32] = self.open as u8;
    }

    /// Deserializes from [`Self::encode`]'s layout.
    pub fn decode(buf: &[u8]) -> Self {
        assert!(buf.len() >= Self::ENCODED_LEN);
        let le32 = |r: std::ops::Range<usize>| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&buf[r]);
            b
        };
        Self {
            score: i32::from_le_bytes(le32(0..4)),
            max: i32::from_le_bytes(le32(4..8)),
            min: i32::from_le_bytes(le32(8..12)),
            beg_i: u32::from_le_bytes(le32(12..16)),
            beg_j: u32::from_le_bytes(le32(16..20)),
            gaps: u32::from_le_bytes(le32(20..24)),
            matches: u32::from_le_bytes(le32(24..28)),
            mismatches: u32::from_le_bytes(le32(28..32)),
            open: buf[32] != 0,
        }
    }
}

/// User parameters of the heuristic (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicParams {
    /// "Minimum value for opening this alignment as a candidate":
    /// a candidate opens when `max >= min + open_threshold`.
    pub open_threshold: i32,
    /// "Value for closing an alignment": a candidate closes when the
    /// current score is `<= max − close_threshold`.
    pub close_threshold: i32,
    /// Minimal (maximum) score a closed candidate needs to enter the
    /// queue of reported alignments.
    pub min_score: i32,
}

impl HeuristicParams {
    /// Defaults tuned for the synthetic workloads: open at +15, close on a
    /// −15 drop, report alignments scoring at least 50 (≈ 75 bp of 90%
    /// identity under the +1/−1/−2 scheme — comfortably above the random
    /// background on multi-kBP inputs).
    pub fn default_for_dna() -> Self {
        Self {
            open_threshold: 15,
            close_threshold: 15,
            min_score: 50,
        }
    }

    fn validate(&self) {
        assert!(self.open_threshold > 0, "open_threshold must be positive");
        assert!(self.close_threshold > 0, "close_threshold must be positive");
    }
}

/// Which predecessor produced the current cell (tie-break order:
/// horizontal ≻ vertical ≻ diagonal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Horizontal,
    Vertical,
    Diagonal,
}

/// The reusable row-block kernel shared by the serial driver and both
/// parallel strategies.
#[derive(Debug, Clone, Copy)]
pub struct RowKernel {
    /// Column scoring scheme.
    pub scoring: Scoring,
    /// Open/close/report thresholds.
    pub params: HeuristicParams,
}

impl RowKernel {
    /// Creates a kernel, validating the parameters.
    pub fn new(scoring: Scoring, params: HeuristicParams) -> Self {
        params.validate();
        Self { scoring, params }
    }

    /// Computes one cell at matrix position `(i, j)` from its three
    /// predecessors, appending any closed candidate to `queue`.
    #[inline]
    #[allow(clippy::too_many_arguments)] // the DP stencil really has 3 predecessors
    pub fn update_cell(
        &self,
        s_char: u8,
        t_char: u8,
        i: usize,
        j: usize,
        diag: &HCell,
        up: &HCell,
        left: &HCell,
        queue: &mut Vec<LocalRegion>,
    ) -> HCell {
        let cd = diag.score + self.scoring.subst(s_char, t_char);
        let cu = up.score + self.scoring.gap;
        let cl = left.score + self.scoring.gap;
        let best = cd.max(cu).max(cl).max(0);
        if best == 0 {
            return HCell::fresh();
        }

        // Candidate origins in preference order (horizontal, vertical,
        // diagonal); among achievers of `best` the largest priority wins,
        // ties resolved by that order.
        let mut chosen: Option<(Origin, &HCell)> = None;
        for (origin, value, cell) in [
            (Origin::Horizontal, cl, left),
            (Origin::Vertical, cu, up),
            (Origin::Diagonal, cd, diag),
        ] {
            if value == best {
                match chosen {
                    Some((_, c)) if c.priority() >= cell.priority() => {}
                    _ => chosen = Some((origin, cell)),
                }
            }
        }
        let (origin, pred) = chosen.expect("best > 0 implies an achiever");

        let mut cell = *pred;
        cell.score = best;
        match origin {
            Origin::Diagonal => {
                if s_char == t_char {
                    cell.matches += 1;
                } else {
                    cell.mismatches += 1;
                }
            }
            Origin::Horizontal | Origin::Vertical => cell.gaps += 1,
        }
        cell.max = cell.max.max(best);
        cell.min = cell.min.min(best);

        // Open on a *rise*: the current score has climbed open_threshold
        // above the running minimum. (The paper's wording compares the
        // maximal score to the minimum; taken literally that also fires
        // while the score *decays* after a close — the stale maximum keeps
        // the envelope wide — flooding the queue with one candidate per
        // decaying path. Since the score equals the maximum during a
        // genuine rise, this reading agrees with the paper's on rises and
        // only differs by not opening on decay.)
        if !cell.open && cell.score >= cell.min + self.params.open_threshold {
            cell.open = true;
            cell.beg_i = i as u32;
            cell.beg_j = j as u32;
            // The candidate's score envelope starts fresh at the opening
            // point; a stale maximum from before the open would otherwise
            // close the new candidate instantly.
            cell.max = cell.score;
            cell.min = cell.score;
        }
        if cell.open && cell.score <= cell.max - self.params.close_threshold {
            self.close_candidate(&cell, i, j, queue);
            cell.open = false;
            // Restart the envelope so a later rise can re-open. The
            // gap/match/mismatch counters stay, per the paper.
            cell.max = cell.score;
            cell.min = cell.score;
        }
        cell
    }

    /// Pushes the candidate carried by `cell` (ending at `(i, j)`) onto the
    /// queue if it clears `min_score`.
    fn close_candidate(&self, cell: &HCell, i: usize, j: usize, queue: &mut Vec<LocalRegion>) {
        if cell.max >= self.params.min_score {
            queue.push(LocalRegion {
                s_begin: (cell.beg_i as usize).saturating_sub(1),
                s_end: i,
                t_begin: (cell.beg_j as usize).saturating_sub(1),
                t_end: j,
                score: cell.max,
            });
        }
    }

    /// Reports a still-open candidate when the sweep runs off the edge of
    /// the matrix (end of the last row / rightmost column). The paper
    /// leaves boundary flushing implicit; without it, alignments touching
    /// the sequence ends would never close.
    pub fn flush_open(&self, cell: &HCell, i: usize, j: usize, queue: &mut Vec<LocalRegion>) {
        if cell.open {
            self.close_candidate(cell, i, j, queue);
        }
    }

    /// Processes columns `j0 ..= j0 + len − 1` (1-based matrix columns) of
    /// row `i`.
    ///
    /// Layout convention shared with the parallel strategies: `prev` and
    /// `cur` have length `len + 1`; index `k` corresponds to matrix column
    /// `j0 − 1 + k`, so index 0 is the *border column* owned by the left
    /// neighbour. `prev` must hold row `i − 1`; on entry `cur[0]` must
    /// already hold this row's left-border cell; on exit `cur[1..]` holds
    /// the computed cells.
    #[allow(clippy::too_many_arguments)] // the DP stencil's natural arity
    pub fn process_row_segment(
        &self,
        i: usize,
        s_char: u8,
        t: &[u8],
        j0: usize,
        prev: &[HCell],
        cur: &mut [HCell],
        queue: &mut Vec<LocalRegion>,
    ) {
        let len = cur.len() - 1;
        assert_eq!(prev.len(), cur.len(), "row slices must align");
        assert!(j0 >= 1 && j0 + len - 1 <= t.len(), "segment out of range");
        for k in 1..=len {
            let j = j0 - 1 + k;
            let cell = self.update_cell(
                s_char,
                t[j - 1],
                i,
                j,
                &prev[k - 1],
                &prev[k],
                &cur[k - 1],
                queue,
            );
            cur[k] = cell;
        }
    }
}

/// Serial phase-1 driver: runs the heuristic over the whole matrix with two
/// rows of memory and returns the finalized queue of candidate local
/// alignments (sorted by size, deduplicated).
pub fn heuristic_align(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
) -> Vec<LocalRegion> {
    let kernel = RowKernel::new(*scoring, *params);
    let n = t.len();
    let mut queue = Vec::new();
    if s.is_empty() || n == 0 {
        return queue;
    }
    let mut prev = vec![HCell::fresh(); n + 1];
    let mut cur = vec![HCell::fresh(); n + 1];
    for (idx, &sc) in s.iter().enumerate() {
        let i = idx + 1;
        cur[0] = HCell::fresh();
        kernel.process_row_segment(i, sc, t, 1, &prev, &mut cur, &mut queue);
        // Rightmost column: a candidate running off the right edge.
        kernel.flush_open(&cur[n], i, n, &mut queue);
        std::mem::swap(&mut prev, &mut cur);
    }
    // Bottom row: candidates running off the bottom edge. `prev` holds the
    // final row after the last swap. The corner cell was already flushed.
    for j in 1..n {
        kernel.flush_open(&prev[j], s.len(), j, &mut queue);
    }
    finalize_queue(queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::sw_matrix;

    const SC: Scoring = Scoring::paper();

    fn params(open: i32, close: i32, min: i32) -> HeuristicParams {
        HeuristicParams {
            open_threshold: open,
            close_threshold: close,
            min_score: min,
        }
    }

    #[test]
    fn hcell_encode_decode_round_trip() {
        let c = HCell {
            score: -7,
            max: 42,
            min: -3,
            beg_i: 123,
            beg_j: 456,
            gaps: 7,
            matches: 8,
            mismatches: 9,
            open: true,
        };
        let mut buf = [0u8; HCell::ENCODED_LEN];
        c.encode(&mut buf);
        assert_eq!(HCell::decode(&buf), c);
    }

    #[test]
    fn fresh_cell_round_trips() {
        let mut buf = [0u8; HCell::ENCODED_LEN];
        HCell::fresh().encode(&mut buf);
        assert_eq!(HCell::decode(&buf), HCell::fresh());
    }

    #[test]
    fn scores_match_plain_linear_sw() {
        // The metadata must not change the computed scores: run the
        // heuristic keeping full rows and compare cell scores to the
        // full-matrix oracle.
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let kernel = RowKernel::new(SC, params(3, 3, 4));
        let full = sw_matrix(s, t, &SC);
        let n = t.len();
        let mut queue = Vec::new();
        let mut prev = vec![HCell::fresh(); n + 1];
        let mut cur = vec![HCell::fresh(); n + 1];
        for (idx, &sc) in s.iter().enumerate() {
            let i = idx + 1;
            cur[0] = HCell::fresh();
            kernel.process_row_segment(i, sc, t, 1, &prev, &mut cur, &mut queue);
            for j in 1..=n {
                assert_eq!(cur[j].score, full.get(i, j), "cell ({i},{j})");
            }
            std::mem::swap(&mut prev, &mut cur);
        }
    }

    #[test]
    fn finds_the_planted_fig1_alignment() {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let regions = heuristic_align(s, t, &SC, &params(3, 3, 5));
        // The best local alignment (score 6, ending at (14, 15)) must be
        // reported.
        let hit = regions
            .iter()
            .find(|r| r.score >= 5 && r.s_end >= 13 && r.t_end >= 14);
        assert!(hit.is_some(), "regions: {regions:?}");
    }

    #[test]
    fn long_identical_run_reported_once() {
        // One perfect 60-bp repeat inside random context.
        let core: Vec<u8> =
            b"ACGTGCTAGCTTAGGCATCGATCGGATTACAGGCATGCATGGCTAGCTAGGCTAGCTAAG".to_vec();
        let mut s = b"TTTTTTTTTT".to_vec();
        s.extend_from_slice(&core);
        s.extend_from_slice(b"CCCCCCCCCC");
        let mut t = b"GGGGGGGGGG".to_vec();
        t.extend_from_slice(&core);
        t.extend_from_slice(b"AAAAAAAAAA");
        let regions = heuristic_align(&s, &t, &SC, &params(10, 8, 30));
        assert!(!regions.is_empty());
        let best = &regions[0];
        assert!(best.score >= 40, "score {}", best.score);
        // Coordinates point inside the planted repeat: opening clips the
        // first ~open_threshold columns (the paper's rule) and closing
        // overshoots the end by up to close_threshold/2 mismatch columns.
        assert!(best.s_begin >= 10 && best.s_end <= 10 + core.len() + 8);
        assert!(best.t_begin >= 10 && best.t_end <= 10 + core.len() + 8);
    }

    #[test]
    fn empty_inputs_yield_empty_queue() {
        assert!(heuristic_align(b"", b"ACGT", &SC, &params(3, 3, 1)).is_empty());
        assert!(heuristic_align(b"ACGT", b"", &SC, &params(3, 3, 1)).is_empty());
    }

    #[test]
    fn pure_random_pair_yields_no_high_scores() {
        // With threshold far above what random 200-bp sequences reach,
        // nothing is reported. (Use a real PRNG: modular patterns are
        // periodic and align almost perfectly.)
        let mut x: u64 = 0x243F6A8885A308D3;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let s: Vec<u8> = (0..200).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        let t: Vec<u8> = (0..200).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        let regions = heuristic_align(&s, &t, &SC, &params(15, 12, 60));
        assert!(regions.is_empty(), "unexpected: {regions:?}");
    }

    #[test]
    fn candidate_closes_after_score_drop() {
        let kernel = RowKernel::new(SC, params(2, 2, 2));
        let mut queue = Vec::new();
        // Manually walk a diagonal of matches followed by mismatches.
        let mut cell = HCell::fresh();
        for i in 1..=4 {
            cell = kernel.update_cell(
                b'A',
                b'A',
                i,
                i,
                &cell,
                &HCell::fresh(),
                &HCell::fresh(),
                &mut queue,
            );
        }
        assert!(cell.open);
        assert_eq!(cell.score, 4);
        // Two mismatches drop the score by 2: close fires.
        for i in 5..=6 {
            cell = kernel.update_cell(
                b'A',
                b'C',
                i,
                i,
                &cell,
                &HCell::fresh(),
                &HCell::fresh(),
                &mut queue,
            );
        }
        assert!(!cell.open);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].score, 4);
    }

    #[test]
    fn tie_break_prefers_higher_priority_then_horizontal() {
        let kernel = RowKernel::new(SC, params(100, 100, 100));
        let mut queue = Vec::new();
        // Build predecessors that tie on value but differ in counters.
        let lo = HCell {
            score: 2,
            matches: 1,
            ..HCell::fresh()
        };
        let hi = HCell {
            score: 2,
            matches: 5,
            ..HCell::fresh()
        };
        // left and up tie (2 - 2 = 0 each would be clamped; use scores so
        // both reach the same best): diag gives 2 + 1 = 3; up gives 5 - 2 = 3.
        let diag = HCell {
            score: 2,
            matches: 2,
            ..HCell::fresh()
        };
        let up = HCell {
            score: 5,
            matches: 9,
            ..HCell::fresh()
        };
        let cell = kernel.update_cell(b'A', b'A', 3, 3, &diag, &up, &lo, &mut queue);
        // up's priority (18) beats diag's (4): the gap path wins.
        assert_eq!(cell.score, 3);
        assert_eq!(cell.gaps, 1);
        assert_eq!(cell.matches, 9);
        let _ = hi;
    }

    #[test]
    fn horizontal_preferred_on_full_tie() {
        let kernel = RowKernel::new(SC, params(100, 100, 100));
        let mut queue = Vec::new();
        let p = HCell {
            score: 5,
            matches: 3,
            ..HCell::fresh()
        };
        // All three candidates reach 3 with equal priorities.
        let diag = HCell {
            score: 4,
            matches: 3,
            ..HCell::fresh()
        };
        let cell = kernel.update_cell(b'A', b'C', 2, 2, &diag, &p, &p, &mut queue);
        assert_eq!(cell.score, 3);
        // Horizontal chosen: gap counter incremented, and the begin
        // coordinates/metadata come from `left` (= p).
        assert_eq!(cell.gaps, 1);
        assert_eq!(cell.matches, 3);
    }

    #[test]
    fn flush_reports_open_candidate_at_edges() {
        // A perfect repeat that runs to the very end of both sequences.
        let s = b"TTTTTACGTGCTAGCTTAGGCATCGATCG";
        let t = b"GGGGGACGTGCTAGCTTAGGCATCGATCG";
        let regions = heuristic_align(s, t, &SC, &params(5, 5, 10));
        assert!(!regions.is_empty(), "edge alignment must be flushed");
        assert!(regions[0].score >= 15);
        assert_eq!(regions[0].s_end, s.len());
    }

    #[test]
    #[should_panic(expected = "open_threshold")]
    fn invalid_params_rejected() {
        let _ = RowKernel::new(SC, params(0, 3, 1));
    }

    #[test]
    fn segment_processing_equals_whole_row() {
        // Splitting a row into two segments with a carried border must give
        // the same cells as one full-row call.
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        let kernel = RowKernel::new(SC, params(3, 3, 3));
        let n = t.len();
        let mut q1 = Vec::new();
        let mut q2 = Vec::new();

        let mut prev_full = vec![HCell::fresh(); n + 1];
        let mut cur_full = vec![HCell::fresh(); n + 1];
        let mut prev_split = vec![HCell::fresh(); n + 1];
        let mut cur_split = vec![HCell::fresh(); n + 1];
        let half = n / 2;
        for (idx, &sc) in s.iter().enumerate() {
            let i = idx + 1;
            cur_full[0] = HCell::fresh();
            kernel.process_row_segment(i, sc, t, 1, &prev_full, &mut cur_full, &mut q1);

            cur_split[0] = HCell::fresh();
            kernel.process_row_segment(
                i,
                sc,
                t,
                1,
                &prev_split[..half + 1],
                &mut cur_split[..half + 1],
                &mut q2,
            );
            kernel.process_row_segment(
                i,
                sc,
                t,
                half + 1,
                &prev_split[half..],
                &mut cur_split[half..],
                &mut q2,
            );
            assert_eq!(cur_full, cur_split, "row {i}");
            std::mem::swap(&mut prev_full, &mut cur_full);
            std::mem::swap(&mut prev_split, &mut cur_split);
        }
        assert_eq!(q1, q2);
    }
}
