//! Substitution matrices for protein scoring — a production extension.
//!
//! DNA paths score columns with a match/mismatch pair ([`crate::scoring`]);
//! protein alignment replaces that pair with a full residue-pair matrix
//! (BLOSUM/PAM families). This module provides:
//!
//! * the canonical 24-letter amino-acid alphabet ([`AA_ALPHABET`]) —
//!   the 20 standard residues plus the ambiguity codes `B` (Asx), `Z`
//!   (Glx), `X` (any), and the stop/translation marker `*`;
//! * a total byte → alphabet-index map ([`aa_index`]) with fixed
//!   canonical representatives for the rare codes (`U` → `C`, `J` → `L`,
//!   `O` → `K`), mirroring the deterministic-representative rule of the
//!   DNA layer's IUPAC folding;
//! * [`SubstMatrix`]: a dense 24 × 24 score table, `Copy` so it can ride
//!   inside engine configs that are passed by value, with BLOSUM62,
//!   BLOSUM50, and PAM250 baked in and arbitrary matrices loadable from
//!   NCBI-format text ([`SubstMatrix::parse_ncbi`]);
//! * [`MatrixScoring`]: the full protein scoring scheme — a matrix plus
//!   affine gap penalties under the same convention as
//!   [`crate::affine::AffineScoring`] (a gap run of length `k` costs
//!   `gap_open + (k-1) * gap_extend`).

use std::fmt;

/// The canonical residue alphabet, in NCBI matrix order.
pub const AA_ALPHABET: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Number of letters in [`AA_ALPHABET`].
pub const AA_N: usize = 24;

/// Alphabet index of the unknown-residue code `X`.
pub const AA_X: usize = 22;

const fn build_index() -> [u8; 256] {
    let mut idx = [AA_X as u8; 256];
    let mut i = 0;
    while i < AA_N {
        let c = AA_ALPHABET[i];
        idx[c as usize] = i as u8;
        idx[c.to_ascii_lowercase() as usize] = i as u8;
        i += 1;
    }
    // Fixed canonical representatives for the rare IUPAC codes, chosen
    // once so every layer folds identically (the DNA layer's N→A rule).
    idx[b'U' as usize] = 4; // selenocysteine scores as cysteine
    idx[b'u' as usize] = 4;
    idx[b'J' as usize] = 10; // Ile-or-Leu scores as leucine
    idx[b'j' as usize] = 10;
    idx[b'O' as usize] = 11; // pyrrolysine scores as lysine
    idx[b'o' as usize] = 11;
    idx
}

/// Total byte → alphabet-index map; bytes outside the alphabet fold to
/// `X` so scoring is defined for every input.
const AA_INDEX: [u8; 256] = build_index();

/// Alphabet index of residue byte `b` (total: unknown bytes fold to `X`).
#[inline(always)]
pub fn aa_index(b: u8) -> usize {
    AA_INDEX[b as usize] as usize
}

/// A dense residue-pair substitution matrix over [`AA_ALPHABET`].
///
/// Scores are addressed `scores[query_residue][target_residue]` —
/// relevant only for asymmetric custom matrices; the baked-in BLOSUM/PAM
/// tables are symmetric. The struct is plain arrays (`Copy`, ~1.2 KB) so
/// engine configs carrying it stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstMatrix {
    scores: [[i16; AA_N]; AA_N],
}

impl SubstMatrix {
    /// BLOSUM62 — the default protein matrix (BLAST's default).
    pub const fn blosum62() -> Self {
        Self { scores: BLOSUM62 }
    }

    /// BLOSUM50 — softer clustering, for more divergent proteins.
    pub const fn blosum50() -> Self {
        Self { scores: BLOSUM50 }
    }

    /// PAM250 — the classic Dayhoff matrix for distant homologs.
    pub const fn pam250() -> Self {
        Self { scores: PAM250 }
    }

    /// A baked-in matrix by its canonical lowercase name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "blosum62" => Some(Self::blosum62()),
            "blosum50" => Some(Self::blosum50()),
            "pam250" => Some(Self::pam250()),
            _ => None,
        }
    }

    /// A matrix from an explicit score table.
    pub const fn from_scores(scores: [[i16; AA_N]; AA_N]) -> Self {
        Self { scores }
    }

    /// Score of aligning query residue `a` against target residue `b`
    /// (total: any byte folds through [`aa_index`]).
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i16 {
        self.scores[aa_index(a)][aa_index(b)]
    }

    /// Score at alphabet indices (callers that pre-fold bytes).
    #[inline(always)]
    pub fn score_at(&self, ai: usize, bi: usize) -> i16 {
        self.scores[ai][bi]
    }

    /// The raw 24 × 24 table, row-major in alphabet order.
    pub fn table(&self) -> &[[i16; AA_N]; AA_N] {
        &self.scores
    }

    /// Largest entry anywhere in the table (the per-column score cap the
    /// i16 admission rule and the index prefilter both build on).
    pub fn max_score(&self) -> i16 {
        let mut best = i16::MIN;
        for row in &self.scores {
            for &v in row {
                best = best.max(v);
            }
        }
        best
    }

    /// Smallest entry anywhere in the table (the admission rule bounds it
    /// away from the kernels' padding sentinel).
    pub fn min_score(&self) -> i16 {
        let mut worst = i16::MAX;
        for row in &self.scores {
            for &v in row {
                worst = worst.min(v);
            }
        }
        worst
    }

    /// A stable 64-bit fingerprint of the table contents (FNV-1a over the
    /// score bytes) — cache keys include it so answers computed under
    /// different matrices can never be confused.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for row in &self.scores {
            for &v in row {
                for b in v.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }

    /// Parses an NCBI-format matrix: `#` comment lines, a header row of
    /// residue letters, then one row per residue (`letter` followed by
    /// one integer per header column).
    ///
    /// Pairs the file does not mention default to the smallest parsed
    /// score (the conservative choice: an unlisted pairing can never beat
    /// a listed one).
    ///
    /// # Errors
    /// [`MatrixError`] describing the first malformed line.
    pub fn parse_ncbi(text: &str) -> Result<Self, MatrixError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or(MatrixError::Empty)?;
        let cols: Vec<usize> = header
            .split_whitespace()
            .map(|tok| {
                let mut chars = tok.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) if c.is_ascii() => Ok(aa_index(c as u8)),
                    _ => Err(MatrixError::BadHeader {
                        token: tok.to_string(),
                    }),
                }
            })
            .collect::<Result<_, _>>()?;
        if cols.is_empty() {
            return Err(MatrixError::Empty);
        }
        let mut entries: Vec<(usize, usize, i16)> = Vec::new();
        let mut floor = i16::MAX;
        for line in lines {
            let mut toks = line.split_whitespace();
            let row_tok = toks.next().ok_or(MatrixError::Empty)?;
            let mut chars = row_tok.chars();
            let row = match (chars.next(), chars.next()) {
                (Some(c), None) if c.is_ascii() => aa_index(c as u8),
                _ => {
                    return Err(MatrixError::BadHeader {
                        token: row_tok.to_string(),
                    })
                }
            };
            let scores: Vec<i16> = toks
                .map(|tok| {
                    tok.parse::<i16>().map_err(|_| MatrixError::BadNumber {
                        token: tok.to_string(),
                    })
                })
                .collect::<Result<_, _>>()?;
            if scores.len() != cols.len() {
                return Err(MatrixError::RowMismatch {
                    row: AA_ALPHABET[row] as char,
                    expected: cols.len(),
                    got: scores.len(),
                });
            }
            for (&col, &v) in cols.iter().zip(&scores) {
                floor = floor.min(v);
                entries.push((row, col, v));
            }
        }
        if entries.is_empty() {
            return Err(MatrixError::Empty);
        }
        let mut scores = [[floor; AA_N]; AA_N];
        for (r, c, v) in entries {
            scores[r][c] = v;
        }
        Ok(Self { scores })
    }

    /// Renders the table in the NCBI text format [`Self::parse_ncbi`]
    /// reads — round-trips exactly.
    pub fn to_ncbi_text(&self) -> String {
        let mut out = String::new();
        out.push(' ');
        for &c in AA_ALPHABET {
            out.push_str(&format!(" {:>3}", c as char));
        }
        out.push('\n');
        for (r, row) in self.scores.iter().enumerate() {
            out.push(AA_ALPHABET[r] as char);
            for &v in row {
                out.push_str(&format!(" {v:>3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Typed error of [`SubstMatrix::parse_ncbi`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// No header or no score rows.
    Empty,
    /// A header or row token was not a single residue letter.
    BadHeader {
        /// The offending token.
        token: String,
    },
    /// A score token was not an i16 integer.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// A row listed a different number of scores than the header.
    RowMismatch {
        /// Row residue letter.
        row: char,
        /// Header column count.
        expected: usize,
        /// Scores found on the row.
        got: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Empty => write!(f, "matrix text has no header or score rows"),
            MatrixError::BadHeader { token } => {
                write!(f, "`{token}` is not a single residue letter")
            }
            MatrixError::BadNumber { token } => write!(f, "`{token}` is not an integer score"),
            MatrixError::RowMismatch { row, expected, got } => {
                write!(f, "row {row}: expected {expected} scores, found {got}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// The full protein scoring scheme: a substitution matrix plus affine gap
/// penalties (same convention as [`crate::affine::AffineScoring`]: a gap
/// run of length `k` costs `gap_open + (k-1) * gap_extend`, both
/// negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixScoring {
    /// The residue-pair score table.
    pub matrix: SubstMatrix,
    /// Penalty for the first space of a gap run (negative).
    pub gap_open: i32,
    /// Penalty for each subsequent space (negative, `>= gap_open`).
    pub gap_extend: i32,
}

impl MatrixScoring {
    /// The default protein scheme: BLOSUM62 with −11/−1 gaps.
    pub const fn blosum62() -> Self {
        Self {
            matrix: SubstMatrix::blosum62(),
            gap_open: -11,
            gap_extend: -1,
        }
    }

    /// A scheme over `matrix` with the given gap penalties.
    pub const fn new(matrix: SubstMatrix, gap_open: i32, gap_extend: i32) -> Self {
        Self {
            matrix,
            gap_open,
            gap_extend,
        }
    }

    /// A stable fingerprint over the matrix contents and both gap
    /// penalties (cache keying).
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.matrix.fingerprint();
        for v in [self.gap_open, self.gap_extend] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

impl Default for MatrixScoring {
    fn default() -> Self {
        Self::blosum62()
    }
}

// Row/column order: A R N D C Q E G H I L K M F P S T W Y V B Z X *.
#[rustfmt::skip]
const BLOSUM62: [[i16; AA_N]; AA_N] = [
    [ 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0,-2,-1, 0,-4],
    [-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3,-1, 0,-1,-4],
    [-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3, 3, 0,-1,-4],
    [-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3, 4, 1,-1,-4],
    [ 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1,-3,-3,-2,-4],
    [-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2, 0, 3,-1,-4],
    [-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4],
    [ 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3,-1,-2,-1,-4],
    [-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3, 0, 0,-1,-4],
    [-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3,-3,-3,-1,-4],
    [-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1,-4,-3,-1,-4],
    [-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2, 0, 1,-1,-4],
    [-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1,-3,-1,-1,-4],
    [-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1,-3,-3,-1,-4],
    [-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2,-2,-1,-2,-4],
    [ 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2, 0, 0, 0,-4],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0,-1,-1, 0,-4],
    [-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3,-4,-3,-2,-4],
    [-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1,-3,-2,-1,-4],
    [ 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4,-3,-2,-1,-4],
    [-2,-1, 3, 4,-3, 0, 1,-1, 0,-3,-4, 0,-3,-3,-2, 0,-1,-4,-3,-3, 4, 1,-1,-4],
    [-1, 0, 0, 1,-3, 3, 4,-2, 0,-3,-3, 1,-1,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4],
    [ 0,-1,-1,-1,-2,-1,-1,-1,-1,-1,-1,-1,-1,-1,-2, 0, 0,-2,-1,-1,-1,-1,-1,-4],
    [-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4, 1],
];

#[rustfmt::skip]
const BLOSUM50: [[i16; AA_N]; AA_N] = [
    [ 5,-2,-1,-2,-1,-1,-1, 0,-2,-1,-2,-1,-1,-3,-1, 1, 0,-3,-2, 0,-2,-1,-1,-5],
    [-2, 7,-1,-2,-4, 1, 0,-3, 0,-4,-3, 3,-2,-3,-3,-1,-1,-3,-1,-3,-1, 0,-1,-5],
    [-1,-1, 7, 2,-2, 0, 0, 0, 1,-3,-4, 0,-2,-4,-2, 1, 0,-4,-2,-3, 4, 0,-1,-5],
    [-2,-2, 2, 8,-4, 0, 2,-1,-1,-4,-4,-1,-4,-5,-1, 0,-1,-5,-3,-4, 5, 1,-1,-5],
    [-1,-4,-2,-4,13,-3,-3,-3,-3,-2,-2,-3,-2,-2,-4,-1,-1,-5,-3,-1,-3,-3,-2,-5],
    [-1, 1, 0, 0,-3, 7, 2,-2, 1,-3,-2, 2, 0,-4,-1, 0,-1,-1,-1,-3, 0, 4,-1,-5],
    [-1, 0, 0, 2,-3, 2, 6,-3, 0,-4,-3, 1,-2,-3,-1,-1,-1,-3,-2,-3, 1, 5,-1,-5],
    [ 0,-3, 0,-1,-3,-2,-3, 8,-2,-4,-4,-2,-3,-4,-2, 0,-2,-3,-3,-4,-1,-2,-2,-5],
    [-2, 0, 1,-1,-3, 1, 0,-2,10,-4,-3, 0,-1,-1,-2,-1,-2,-3, 2,-4, 0, 0,-1,-5],
    [-1,-4,-3,-4,-2,-3,-4,-4,-4, 5, 2,-3, 2, 0,-3,-3,-1,-3,-1, 4,-4,-3,-1,-5],
    [-2,-3,-4,-4,-2,-2,-3,-4,-3, 2, 5,-3, 3, 1,-4,-3,-1,-2,-1, 1,-4,-3,-1,-5],
    [-1, 3, 0,-1,-3, 2, 1,-2, 0,-3,-3, 6,-2,-4,-1, 0,-1,-3,-2,-3, 0, 1,-1,-5],
    [-1,-2,-2,-4,-2, 0,-2,-3,-1, 2, 3,-2, 7, 0,-3,-2,-1,-1, 0, 1,-3,-1,-1,-5],
    [-3,-3,-4,-5,-2,-4,-3,-4,-1, 0, 1,-4, 0, 8,-4,-3,-2, 1, 4,-1,-4,-4,-2,-5],
    [-1,-3,-2,-1,-4,-1,-1,-2,-2,-3,-4,-1,-3,-4,10,-1,-1,-4,-3,-3,-2,-1,-2,-5],
    [ 1,-1, 1, 0,-1, 0,-1, 0,-1,-3,-3, 0,-2,-3,-1, 5, 2,-4,-2,-2, 0, 0,-1,-5],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 2, 5,-3,-2, 0, 0,-1, 0,-5],
    [-3,-3,-4,-5,-5,-1,-3,-3,-3,-3,-2,-3,-1, 1,-4,-4,-3,15, 2,-3,-5,-2,-3,-5],
    [-2,-1,-2,-3,-3,-1,-2,-3, 2,-1,-1,-2, 0, 4,-3,-2,-2, 2, 8,-1,-3,-2,-1,-5],
    [ 0,-3,-3,-4,-1,-3,-3,-4,-4, 4, 1,-3, 1,-1,-3,-2, 0,-3,-1, 5,-4,-3,-1,-5],
    [-2,-1, 4, 5,-3, 0, 1,-1, 0,-4,-4, 0,-3,-4,-2, 0, 0,-5,-3,-4, 5, 2,-1,-5],
    [-1, 0, 0, 1,-3, 4, 5,-2, 0,-3,-3, 1,-1,-4,-1, 0,-1,-2,-2,-3, 2, 5,-1,-5],
    [-1,-1,-1,-1,-2,-1,-1,-2,-1,-1,-1,-1,-1,-2,-2,-1, 0,-3,-1,-1,-1,-1,-1,-5],
    [-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5,-5, 1],
];

#[rustfmt::skip]
const PAM250: [[i16; AA_N]; AA_N] = [
    [ 2,-2, 0, 0,-2, 0, 0, 1,-1,-1,-2,-1,-1,-3, 1, 1, 1,-6,-3, 0, 0, 0, 0,-8],
    [-2, 6, 0,-1,-4, 1,-1,-3, 2,-2,-3, 3, 0,-4, 0, 0,-1, 2,-4,-2,-1, 0,-1,-8],
    [ 0, 0, 2, 2,-4, 1, 1, 0, 2,-2,-3, 1,-2,-3, 0, 1, 0,-4,-2,-2, 2, 1, 0,-8],
    [ 0,-1, 2, 4,-5, 2, 3, 1, 1,-2,-4, 0,-3,-6,-1, 0, 0,-7,-4,-2, 3, 3,-1,-8],
    [-2,-4,-4,-5,12,-5,-5,-3,-3,-2,-6,-5,-5,-4,-3, 0,-2,-8, 0,-2,-4,-5,-3,-8],
    [ 0, 1, 1, 2,-5, 4, 2,-1, 3,-2,-2, 1,-1,-5, 0,-1,-1,-5,-4,-2, 1, 3,-1,-8],
    [ 0,-1, 1, 3,-5, 2, 4, 0, 1,-2,-3, 0,-2,-5,-1, 0, 0,-7,-4,-2, 3, 3,-1,-8],
    [ 1,-3, 0, 1,-3,-1, 0, 5,-2,-3,-4,-2,-3,-5, 0, 1, 0,-7,-5,-1, 0, 0,-1,-8],
    [-1, 2, 2, 1,-3, 3, 1,-2, 6,-2,-2, 0,-2,-2, 0,-1,-1,-3, 0,-2, 1, 2,-1,-8],
    [-1,-2,-2,-2,-2,-2,-2,-3,-2, 5, 2,-2, 2, 1,-2,-1, 0,-5,-1, 4,-2,-2,-1,-8],
    [-2,-3,-3,-4,-6,-2,-3,-4,-2, 2, 6,-3, 4, 2,-3,-3,-2,-2,-1, 2,-3,-3,-1,-8],
    [-1, 3, 1, 0,-5, 1, 0,-2, 0,-2,-3, 5, 0,-5,-1, 0, 0,-3,-4,-2, 1, 0,-1,-8],
    [-1, 0,-2,-3,-5,-1,-2,-3,-2, 2, 4, 0, 6, 0,-2,-2,-1,-4,-2, 2,-2,-2,-1,-8],
    [-3,-4,-3,-6,-4,-5,-5,-5,-2, 1, 2,-5, 0, 9,-5,-3,-3, 0, 7,-1,-4,-5,-2,-8],
    [ 1, 0, 0,-1,-3, 0,-1, 0, 0,-2,-3,-1,-2,-5, 6, 1, 0,-6,-5,-1,-1, 0,-1,-8],
    [ 1, 0, 1, 0, 0,-1, 0, 1,-1,-1,-3, 0,-2,-3, 1, 2, 1,-2,-3,-1, 0, 0, 0,-8],
    [ 1,-1, 0, 0,-2,-1, 0, 0,-1, 0,-2, 0,-1,-3, 0, 1, 3,-5,-3, 0, 0,-1, 0,-8],
    [-6, 2,-4,-7,-8,-5,-7,-7,-3,-5,-2,-3,-4, 0,-6,-2,-5,17, 0,-6,-5,-6,-4,-8],
    [-3,-4,-2,-4, 0,-4,-4,-5, 0,-1,-1,-4,-2, 7,-5,-3,-3, 0,10,-2,-3,-4,-2,-8],
    [ 0,-2,-2,-2,-2,-2,-2,-1,-2, 4, 2,-2, 2,-1,-1,-1, 0,-6,-2, 4,-2,-2,-1,-8],
    [ 0,-1, 2, 3,-4, 1, 3, 0, 1,-2,-3, 1,-2,-4,-1, 0, 0,-5,-3,-2, 3, 2,-1,-8],
    [ 0, 0, 1, 3,-5, 3, 3, 0, 2,-2,-3, 0,-2,-5, 0, 0,-1,-6,-4,-2, 2, 3,-1,-8],
    [ 0,-1, 0,-1,-3,-1,-1,-1,-1,-1,-1,-1,-1,-2,-1, 0, 0,-4,-2,-1,-1,-1,-1,-8],
    [-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8,-8, 1],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_indices_round_trip() {
        for (i, &c) in AA_ALPHABET.iter().enumerate() {
            assert_eq!(aa_index(c), i);
            assert_eq!(aa_index(c.to_ascii_lowercase()), i);
        }
    }

    #[test]
    fn rare_codes_fold_to_fixed_representatives() {
        assert_eq!(aa_index(b'U'), aa_index(b'C'));
        assert_eq!(aa_index(b'J'), aa_index(b'L'));
        assert_eq!(aa_index(b'O'), aa_index(b'K'));
        // Anything else is X.
        assert_eq!(aa_index(b'1'), AA_X);
        assert_eq!(aa_index(b'-'), AA_X);
    }

    #[test]
    fn builtin_matrices_are_symmetric_with_positive_diagonal() {
        for (name, m) in [
            ("blosum62", SubstMatrix::blosum62()),
            ("blosum50", SubstMatrix::blosum50()),
            ("pam250", SubstMatrix::pam250()),
        ] {
            for a in 0..AA_N {
                for b in 0..AA_N {
                    assert_eq!(
                        m.score_at(a, b),
                        m.score_at(b, a),
                        "{name}: {} vs {}",
                        AA_ALPHABET[a] as char,
                        AA_ALPHABET[b] as char
                    );
                }
            }
            for a in 0..AA_N {
                // Every self-pair scores at least as well as the alphabet
                // minimum; standard residues score themselves positively.
                if a < 20 {
                    assert!(m.score_at(a, a) > 0, "{name}: diag {a}");
                }
            }
        }
    }

    #[test]
    fn blosum62_spot_checks() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.score(b'W', b'W'), 11);
        assert_eq!(m.score(b'A', b'A'), 4);
        assert_eq!(m.score(b'E', b'K'), 1);
        assert_eq!(m.score(b'W', b'P'), -4);
        assert_eq!(m.score(b'*', b'*'), 1);
        assert_eq!(m.max_score(), 11);
    }

    #[test]
    fn ncbi_text_round_trips_every_builtin() {
        for m in [
            SubstMatrix::blosum62(),
            SubstMatrix::blosum50(),
            SubstMatrix::pam250(),
        ] {
            let text = m.to_ncbi_text();
            let back = SubstMatrix::parse_ncbi(&text).expect("round trip");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert_eq!(SubstMatrix::parse_ncbi(""), Err(MatrixError::Empty));
        assert_eq!(
            SubstMatrix::parse_ncbi("# only comments\n"),
            Err(MatrixError::Empty)
        );
        assert!(matches!(
            SubstMatrix::parse_ncbi("A R\nA 1\n"),
            Err(MatrixError::RowMismatch { row: 'A', .. })
        ));
        assert!(matches!(
            SubstMatrix::parse_ncbi("A R\nA 1 x\n"),
            Err(MatrixError::BadNumber { .. })
        ));
        assert!(matches!(
            SubstMatrix::parse_ncbi("AB R\nA 1 2\n"),
            Err(MatrixError::BadHeader { .. })
        ));
    }

    #[test]
    fn partial_matrix_fills_unlisted_pairs_with_the_floor() {
        let m = SubstMatrix::parse_ncbi("  A C\nA 5 -2\nC -2 6\n").expect("parse");
        assert_eq!(m.score(b'A', b'A'), 5);
        assert_eq!(m.score(b'A', b'C'), -2);
        // W was never listed: both directions carry the floor (-2).
        assert_eq!(m.score(b'W', b'W'), -2);
        assert_eq!(m.score(b'A', b'W'), -2);
    }

    #[test]
    fn fingerprints_differ_across_builtins_and_gaps() {
        let a = MatrixScoring::blosum62();
        let b = MatrixScoring::new(SubstMatrix::pam250(), -11, -1);
        let c = MatrixScoring::new(SubstMatrix::blosum62(), -10, -1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), MatrixScoring::blosum62().fingerprint());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# BLOSUM62\n\n{}", SubstMatrix::blosum62().to_ncbi_text());
        assert_eq!(
            SubstMatrix::parse_ncbi(&text).expect("parse"),
            SubstMatrix::blosum62()
        );
    }
}
