//! Result types shared by all strategies.
//!
//! Phase 1 (any of the three strategies) produces a queue of
//! [`LocalRegion`]s — begin/end coordinates of candidate local alignments
//! plus their score. The queue is post-processed per §4.1: sorted by
//! subsequence size and stripped of repeated alignments
//! ([`finalize_queue`]). Phase 2 turns selected regions into full
//! [`GlobalAlignment`]s.

use std::fmt;

/// A candidate local alignment: coordinates into `s` and `t` (0-based,
/// half-open: `s[s_begin..s_end]` aligns with `t[t_begin..t_end]`) and the
/// score reached at its end point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalRegion {
    /// Start offset in `s` (inclusive).
    pub s_begin: usize,
    /// End offset in `s` (exclusive).
    pub s_end: usize,
    /// Start offset in `t` (inclusive).
    pub t_begin: usize,
    /// End offset in `t` (exclusive).
    pub t_end: usize,
    /// Alignment score at the end point.
    pub score: i32,
}

impl LocalRegion {
    /// The "subsequence size" used to sort the queue (§4.1): the larger of
    /// the two projected lengths.
    pub fn size(&self) -> usize {
        self.s_len().max(self.t_len())
    }

    /// Length of the `s` projection.
    pub fn s_len(&self) -> usize {
        self.s_end.saturating_sub(self.s_begin)
    }

    /// Length of the `t` projection.
    pub fn t_len(&self) -> usize {
        self.t_end.saturating_sub(self.t_begin)
    }

    /// Whether the two regions overlap in both projections.
    pub fn overlaps(&self, other: &Self) -> bool {
        self.s_begin < other.s_end
            && other.s_begin < self.s_end
            && self.t_begin < other.t_end
            && other.t_begin < self.t_end
    }

    /// Whether `other` is completely contained in `self` in both
    /// projections.
    pub fn contains(&self, other: &Self) -> bool {
        self.s_begin <= other.s_begin
            && other.s_end <= self.s_end
            && self.t_begin <= other.t_begin
            && other.t_end <= self.t_end
    }

    /// 1-based inclusive coordinates, the convention the paper's tables
    /// use, as `((s_begin, t_begin), (s_end, t_end))`.
    pub fn paper_coords(&self) -> ((usize, usize), (usize, usize)) {
        (
            (self.s_begin + 1, self.t_begin + 1),
            (self.s_end, self.t_end),
        )
    }
}

impl fmt::Display for LocalRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ((sb, tb), (se, te)) = self.paper_coords();
        write!(f, "begin ({sb},{tb}) end ({se},{te}) score {}", self.score)
    }
}

/// A fully rendered alignment of two (sub)sequences: the two rows with `-`
/// in gap positions, plus the score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAlignment {
    /// The `s` row, with `b'-'` for spaces.
    pub aligned_s: Vec<u8>,
    /// The `t` row, with `b'-'` for spaces.
    pub aligned_t: Vec<u8>,
    /// Total column score.
    pub score: i32,
}

impl GlobalAlignment {
    /// Number of alignment columns.
    pub fn columns(&self) -> usize {
        self.aligned_s.len()
    }

    /// Counts `(matches, mismatches, spaces)` over the columns.
    pub fn column_stats(&self) -> (usize, usize, usize) {
        let mut m = 0;
        let mut x = 0;
        let mut g = 0;
        for (&a, &b) in self.aligned_s.iter().zip(&self.aligned_t) {
            if a == b'-' || b == b'-' {
                g += 1;
            } else if a == b {
                m += 1;
            } else {
                x += 1;
            }
        }
        (m, x, g)
    }

    /// Recomputes the score from the columns under `scoring`; used by tests
    /// to validate that `score` is consistent with the rendered rows.
    pub fn recompute_score(&self, scoring: &crate::scoring::Scoring) -> i32 {
        let (m, x, g) = self.column_stats();
        m as i32 * scoring.matches + x as i32 * scoring.mismatch + g as i32 * scoring.gap
    }

    /// Renders the alignment as two lines with a match/mismatch marker line
    /// between them, in blocks of `width` columns.
    pub fn pretty(&self, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        let n = self.columns();
        let mut pos = 0;
        while pos < n {
            let end = (pos + width).min(n);
            let srow = &self.aligned_s[pos..end];
            let trow = &self.aligned_t[pos..end];
            out.push_str(std::str::from_utf8(srow).expect("ASCII"));
            out.push('\n');
            for (&a, &b) in srow.iter().zip(trow) {
                out.push(if a == b && a != b'-' { '|' } else { ' ' });
            }
            out.push('\n');
            out.push_str(std::str::from_utf8(trow).expect("ASCII"));
            out.push('\n');
            pos = end;
            if pos < n {
                out.push('\n');
            }
        }
        out
    }
}

/// Post-processes a phase-1 queue per §4.1: sorts by subsequence size
/// (largest first, then by coordinates for determinism) and removes
/// repeated alignments. An alignment is "repeated" if an earlier (larger
/// or equal) entry contains it in both projections — exact duplicates are
/// the degenerate case.
pub fn finalize_queue(queue: Vec<LocalRegion>) -> Vec<LocalRegion> {
    // Candidate metadata spreads cell by cell, so one alignment produces a
    // cone of descendants that each close separately — all sharing the
    // begin coordinates. Collapse by begin point first (keep the best
    // score, then the widest extent); this makes the quadratic
    // containment pass below tractable on real workloads.
    let mut by_begin: std::collections::HashMap<(usize, usize), LocalRegion> =
        std::collections::HashMap::with_capacity(queue.len().min(1 << 16));
    for r in queue {
        by_begin
            .entry((r.s_begin, r.t_begin))
            .and_modify(|best| {
                let better = r.score > best.score
                    || (r.score == best.score && r.size() > best.size())
                    || (r.score == best.score
                        && r.size() == best.size()
                        && (r.s_end, r.t_end) < (best.s_end, best.t_end));
                if better {
                    *best = r;
                }
            })
            .or_insert(r);
    }
    let mut queue: Vec<LocalRegion> = by_begin.into_values().collect();
    // Total order: size, then perimeter, then coordinates. If A strictly
    // contains B, A has at least B's size and a strictly larger perimeter,
    // so A is processed first — the dedup result is independent of the
    // input order (serial and parallel runs assemble the queue in
    // different orders and must agree).
    queue.sort_by(|a, b| {
        b.size()
            .cmp(&a.size())
            .then((b.s_len() + b.t_len()).cmp(&(a.s_len() + a.t_len())))
            .then(a.s_begin.cmp(&b.s_begin))
            .then(a.t_begin.cmp(&b.t_begin))
            .then(a.s_end.cmp(&b.s_end))
            .then(a.t_end.cmp(&b.t_end))
            .then(b.score.cmp(&a.score))
    });
    let mut kept: Vec<LocalRegion> = Vec::with_capacity(queue.len());
    for r in queue {
        if !kept.iter().any(|k| k.contains(&r)) {
            kept.push(r);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(sb: usize, se: usize, tb: usize, te: usize, score: i32) -> LocalRegion {
        LocalRegion {
            s_begin: sb,
            s_end: se,
            t_begin: tb,
            t_end: te,
            score,
        }
    }

    #[test]
    fn size_is_max_projection() {
        assert_eq!(region(0, 10, 5, 12, 3).size(), 10);
        assert_eq!(region(0, 3, 5, 12, 3).size(), 7);
    }

    #[test]
    fn overlap_detection() {
        let a = region(0, 10, 0, 10, 1);
        assert!(a.overlaps(&region(5, 15, 5, 15, 1)));
        assert!(!a.overlaps(&region(10, 20, 0, 10, 1))); // touching, half-open
        assert!(!a.overlaps(&region(5, 15, 20, 30, 1))); // only s overlaps
    }

    #[test]
    fn containment() {
        let outer = region(0, 100, 0, 100, 5);
        assert!(outer.contains(&region(10, 20, 10, 20, 2)));
        assert!(outer.contains(&outer));
        assert!(!region(10, 20, 10, 20, 2).contains(&outer));
    }

    #[test]
    fn paper_coords_are_one_based_inclusive() {
        let r = region(4, 14, 4, 15, 6); // the Fig. 1 alignment
        assert_eq!(r.paper_coords(), ((5, 5), (14, 15)));
    }

    #[test]
    fn finalize_sorts_by_size_desc() {
        let q = vec![
            region(0, 5, 0, 5, 1),
            region(10, 30, 10, 30, 2),
            region(40, 50, 40, 50, 3),
        ];
        let out = finalize_queue(q);
        assert_eq!(out[0].size(), 20);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn finalize_removes_exact_duplicates() {
        let r = region(1, 9, 1, 9, 4);
        let out = finalize_queue(vec![r, r, r]);
        assert_eq!(out, vec![r]);
    }

    #[test]
    fn finalize_removes_contained_regions() {
        let big = region(0, 100, 0, 100, 9);
        let small = region(10, 20, 10, 20, 3);
        let out = finalize_queue(vec![small, big]);
        assert_eq!(out, vec![big]);
    }

    #[test]
    fn finalize_keeps_partial_overlaps() {
        let a = region(0, 10, 0, 10, 2);
        let b = region(5, 15, 5, 15, 2);
        let out = finalize_queue(vec![a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn global_alignment_stats_and_score() {
        // The Fig. 1 alignment: GA-CGGATTAG / GATCGGAATAG, score 6.
        let g = GlobalAlignment {
            aligned_s: b"GA-CGGATTAG".to_vec(),
            aligned_t: b"GATCGGAATAG".to_vec(),
            score: 6,
        };
        assert_eq!(g.column_stats(), (9, 1, 1));
        assert_eq!(g.recompute_score(&crate::scoring::Scoring::paper()), 6);
    }

    #[test]
    fn pretty_renders_marker_line() {
        let g = GlobalAlignment {
            aligned_s: b"AC-G".to_vec(),
            aligned_t: b"ACTG".to_vec(),
            score: 0,
        };
        let p = g.pretty(80);
        assert_eq!(p, "AC-G\n|| |\nACTG\n");
    }

    #[test]
    fn pretty_wraps_blocks() {
        let g = GlobalAlignment {
            aligned_s: b"AAAA".to_vec(),
            aligned_t: b"AAAA".to_vec(),
            score: 4,
        };
        let p = g.pretty(2);
        assert_eq!(p.matches("||").count(), 2);
    }
}
