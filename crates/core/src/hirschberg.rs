//! Hirschberg's linear-space global alignment.
//!
//! §6 of the paper: "when, after detecting an alignment position, the
//! required space for building the alignment is small (that is, n′ is
//! small) one can apply Hirschberg's general method to compute it in
//! linear space while only doubling the worst-case time bound". This is
//! that method: divide `s` in half, find the column where an optimal path
//! crosses the midline by combining a forward last-row pass with a
//! backward last-row pass over the reversed halves, and recurse.

use crate::alignment::GlobalAlignment;
use crate::linear::nw_last_row;
use crate::matrix::nw_align;
use crate::scoring::Scoring;

/// Global alignment of `s` and `t` in O(min) space, same score as
/// [`nw_align`].
pub fn hirschberg_align(s: &[u8], t: &[u8], scoring: &Scoring) -> GlobalAlignment {
    let mut aligned_s = Vec::with_capacity(s.len() + t.len() / 8);
    let mut aligned_t = Vec::with_capacity(t.len() + s.len() / 8);
    rec(s, t, scoring, &mut aligned_s, &mut aligned_t);
    let score = GlobalAlignment {
        aligned_s,
        aligned_t,
        score: 0,
    };
    let total = score.recompute_score(scoring);
    GlobalAlignment {
        score: total,
        ..score
    }
}

fn rec(s: &[u8], t: &[u8], scoring: &Scoring, out_s: &mut Vec<u8>, out_t: &mut Vec<u8>) {
    if s.len() <= 1 || t.len() <= 1 {
        // Base case: solve directly with the full matrix (at most 2 rows
        // or 2 columns, so the "full" matrix is already linear).
        let g = nw_align(s, t, scoring);
        out_s.extend_from_slice(&g.aligned_s);
        out_t.extend_from_slice(&g.aligned_t);
        return;
    }
    let mid = s.len() / 2;
    let (s_top, s_bot) = s.split_at(mid);

    // Forward scores: best alignment of s_top against t[..j].
    let fwd = nw_last_row(s_top, t, scoring);
    // Backward scores: best alignment of reversed s_bot against reversed
    // t[j..].
    let s_bot_rev: Vec<u8> = s_bot.iter().rev().copied().collect();
    let t_rev: Vec<u8> = t.iter().rev().copied().collect();
    let bwd = nw_last_row(&s_bot_rev, &t_rev, scoring);

    // Choose the split column maximizing fwd[j] + bwd[n - j].
    let n = t.len();
    let mut best_j = 0;
    let mut best = i64::MIN;
    for j in 0..=n {
        let v = fwd[j] as i64 + bwd[n - j] as i64;
        if v > best {
            best = v;
            best_j = j;
        }
    }
    rec(s_top, &t[..best_j], scoring, out_s, out_t);
    rec(s_bot, &t[best_j..], scoring, out_s, out_t);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn matches_full_matrix_on_fig1() {
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        let h = hirschberg_align(s, t, &SC);
        let f = nw_align(s, t, &SC);
        assert_eq!(h.score, f.score);
        assert_eq!(h.score, 6);
    }

    #[test]
    fn projections_reproduce_inputs() {
        let s = b"ATAGCT";
        let t = b"GATATGCA";
        let h = hirschberg_align(s, t, &SC);
        let ps: Vec<u8> = h.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = h.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(ps, s);
        assert_eq!(pt, t);
    }

    #[test]
    fn score_field_is_consistent_with_columns() {
        let s = b"ACGTTGCA";
        let t = b"AGTTCA";
        let h = hirschberg_align(s, t, &SC);
        assert_eq!(h.score, h.recompute_score(&SC));
    }

    #[test]
    fn empty_cases() {
        assert_eq!(hirschberg_align(b"", b"", &SC).columns(), 0);
        let h = hirschberg_align(b"ACG", b"", &SC);
        assert_eq!(h.aligned_t, b"---".to_vec());
        assert_eq!(h.score, -6);
        let h = hirschberg_align(b"", b"ACG", &SC);
        assert_eq!(h.aligned_s, b"---".to_vec());
    }

    #[test]
    fn single_characters() {
        let h = hirschberg_align(b"A", b"A", &SC);
        assert_eq!(h.score, 1);
        let h = hirschberg_align(b"A", b"C", &SC);
        assert_eq!(h.score, -1);
    }

    #[test]
    fn longer_sequences_match_full_matrix_score() {
        // Deterministic pseudo-random pair, long enough to recurse deeply.
        let s: Vec<u8> = (0..257u32)
            .map(|i| b"ACGT"[(i.wrapping_mul(2654435761) >> 28) as usize % 4])
            .collect();
        let t: Vec<u8> = (0..301u32)
            .map(|i| b"ACGT"[(i.wrapping_mul(40503) >> 12) as usize % 4])
            .collect();
        let h = hirschberg_align(&s, &t, &SC);
        let f = nw_align(&s, &t, &SC);
        assert_eq!(h.score, f.score);
        assert_eq!(h.score, h.recompute_score(&SC));
    }
}
