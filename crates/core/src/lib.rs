//! Alignment kernels for the GenomeDSM reproduction.
//!
//! This crate implements every sequential algorithm the paper builds on:
//!
//! * [`scoring`] — the column scoring scheme (+1 match / −1 mismatch /
//!   −2 space by default, §2).
//! * [`matrix`] — the full O(n²)-space Smith–Waterman and Needleman–Wunsch
//!   similarity arrays with traceback arrows (§2.1–2.3, Figs. 3–4). Used
//!   for small inputs and as the test oracle for everything else.
//! * [`linear`] — the two-row linear-space SW recurrence (§4.1 opening),
//!   the building block of all three parallel strategies.
//! * [`heuristic`] — the Martins-style candidate-alignment tracking
//!   heuristic (§4.1): per-cell metadata, open/close thresholds, the
//!   `2·matches + 2·mismatches + gaps` tie-break, and the alignment queue.
//! * [`nw`] — global alignment with full traceback (§2.3), used by phase 2.
//! * [`hirschberg`] — linear-space global alignment (the paper cites
//!   Hirschberg's method as the small-n′ option in §6).
//! * [`reverse`] — the Section-6 exact space-reduction algorithm:
//!   detect alignment end points in linear space, recover start points by
//!   dynamic programming over the reversed prefixes (Observation 6.1),
//!   prune with the zero-elimination theorem (Theorem 6.2), and measure
//!   the ~30% useful-area bound of Eqs. (2)–(3).
//! * [`alignment`] — shared result types: local regions, global
//!   alignments, and the queue post-processing (sort by size, dedup).
//! * [`affine`] — a production extension beyond the paper: Gotoh
//!   affine-gap local/global alignment (degenerates to the paper's
//!   linear gaps when open == extend), including the scalar
//!   [`sw_score_affine`]/[`sw_score_profile`] oracles the striped affine
//!   kernels are bit-checked against.
//! * [`myers_miller`] — linear-space affine-gap global alignment
//!   (the Hirschberg idea repaired for gap runs crossing the midline).
//! * [`submat`] — protein substitution matrices (BLOSUM62/BLOSUM50/PAM250
//!   baked in, NCBI-format text loadable) and the canonical 24-letter
//!   amino-acid alphabet.

#![warn(missing_docs)]
// Index-based loops are the clearest way to write DP stencils; silence
// clippy's iterator-adaptor suggestion crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod affine;
pub mod alignment;
pub mod heuristic;
pub mod hirschberg;
pub mod linear;
pub mod matrix;
pub mod myers_miller;
pub mod nw;
pub mod reverse;
pub mod scoring;
pub mod submat;

pub use affine::{sw_score_affine, sw_score_profile, AffineScoring};
pub use alignment::{finalize_queue, GlobalAlignment, LocalRegion};
pub use heuristic::{heuristic_align, HCell, HeuristicParams, RowKernel};
pub use linear::{sw_score_linear, LinearSwResult};
pub use scoring::Scoring;
pub use submat::{aa_index, MatrixError, MatrixScoring, SubstMatrix, AA_ALPHABET, AA_N};
