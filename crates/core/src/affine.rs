//! Affine-gap alignment (Gotoh's algorithm) — a production extension.
//!
//! The paper scores every space at a flat −2 (§2). Real aligners usually
//! charge gap *opening* more than gap *extension* (affine penalties):
//! a run of `k` spaces costs `open + (k−1)·extend`. This module provides
//! the Gotoh three-matrix formulation for both local (SW) and global (NW)
//! alignment, plus a linear-space score variant. With
//! `open == extend == gap` it degenerates to the paper's linear model,
//! which the tests exploit as an oracle.

use crate::alignment::{GlobalAlignment, LocalRegion};
use crate::scoring::Scoring;

/// Affine gap scheme: `matches`/`mismatch` per column, `gap_open` for the
/// first space of a run, `gap_extend` for each further space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineScoring {
    /// Score for identical characters (positive).
    pub matches: i32,
    /// Score for differing characters (normally negative).
    pub mismatch: i32,
    /// Penalty for the first space of a gap run (negative).
    pub gap_open: i32,
    /// Penalty for each subsequent space (negative, usually milder).
    pub gap_extend: i32,
}

impl AffineScoring {
    /// A common DNA scheme: +1 / −1, opening −4, extending −1.
    pub const fn dna() -> Self {
        Self {
            matches: 1,
            mismatch: -1,
            gap_open: -4,
            gap_extend: -1,
        }
    }

    /// The degenerate scheme equivalent to the paper's linear gaps.
    pub const fn linear(scoring: Scoring) -> Self {
        Self {
            matches: scoring.matches,
            mismatch: scoring.mismatch,
            gap_open: scoring.gap,
            gap_extend: scoring.gap,
        }
    }

    #[inline]
    fn subst(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matches
        } else {
            self.mismatch
        }
    }

    fn validate(&self) {
        assert!(self.matches > 0, "match score must be positive");
        assert!(
            self.gap_open < 0 && self.gap_extend < 0,
            "gap penalties must be negative"
        );
    }
}

const NEG: i32 = i32::MIN / 4;

/// Best local alignment score with affine gaps, in linear space, plus its
/// end point (matrix coordinates; `(0, 0)` when everything is zero).
pub fn sw_affine_score(s: &[u8], t: &[u8], scoring: &AffineScoring) -> (i32, (usize, usize)) {
    scoring.validate();
    let n = t.len();
    // H = best ending in a match/mismatch or fresh start; E = gap in s
    // (consuming t); F = gap in t (consuming s).
    let mut h_prev = vec![0i32; n + 1];
    let mut e_prev = vec![NEG; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG; n + 1];
    let mut best = 0;
    let mut end = (0usize, 0usize);
    for (i, &sc) in s.iter().enumerate() {
        let mut f = NEG;
        h_cur[0] = 0;
        for j in 1..=n {
            let e = (e_prev[j] + scoring.gap_extend).max(h_prev[j] + scoring.gap_open);
            f = (f + scoring.gap_extend).max(h_cur[j - 1] + scoring.gap_open);
            let diag = h_prev[j - 1] + scoring.subst(sc, t[j - 1]);
            let h = diag.max(e).max(f).max(0);
            h_cur[j] = h;
            e_cur[j] = e;
            if h > best {
                best = h;
                end = (i + 1, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }
    (best, end)
}

/// Global alignment score with affine gaps, linear space.
pub fn nw_affine_score(s: &[u8], t: &[u8], scoring: &AffineScoring) -> i32 {
    scoring.validate();
    let n = t.len();
    let gap_run = |k: usize| -> i32 {
        if k == 0 {
            0
        } else {
            scoring.gap_open + (k as i32 - 1) * scoring.gap_extend
        }
    };
    let mut h_prev: Vec<i32> = (0..=n).map(gap_run).collect();
    let mut e_prev: Vec<i32> = (0..=n)
        .map(|j| if j == 0 { NEG } else { gap_run(j) })
        .collect();
    let mut h_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG; n + 1];
    for (i, &sc) in s.iter().enumerate() {
        let mut f = gap_run(i + 1);
        h_cur[0] = gap_run(i + 1);
        for j in 1..=n {
            let e = (e_prev[j] + scoring.gap_extend).max(h_prev[j] + scoring.gap_open);
            f = (f + scoring.gap_extend).max(h_cur[j - 1] + scoring.gap_open);
            let diag = h_prev[j - 1] + scoring.subst(sc, t[j - 1]);
            h_cur[j] = diag.max(e).max(f);
            e_cur[j] = e;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }
    h_prev[n]
}

/// Full-matrix global alignment with affine gaps and traceback.
pub fn nw_affine_align(s: &[u8], t: &[u8], scoring: &AffineScoring) -> GlobalAlignment {
    scoring.validate();
    let (m, n) = (s.len(), t.len());
    let w = n + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut h = vec![NEG; (m + 1) * w];
    let mut e = vec![NEG; (m + 1) * w];
    let mut f = vec![NEG; (m + 1) * w];
    h[idx(0, 0)] = 0;
    for j in 1..=n {
        e[idx(0, j)] =
            (e[idx(0, j - 1)] + scoring.gap_extend).max(h[idx(0, j - 1)] + scoring.gap_open);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for i in 1..=m {
        f[idx(i, 0)] =
            (f[idx(i - 1, 0)] + scoring.gap_extend).max(h[idx(i - 1, 0)] + scoring.gap_open);
        h[idx(i, 0)] = f[idx(i, 0)];
        for j in 1..=n {
            e[idx(i, j)] =
                (e[idx(i, j - 1)] + scoring.gap_extend).max(h[idx(i, j - 1)] + scoring.gap_open);
            f[idx(i, j)] =
                (f[idx(i - 1, j)] + scoring.gap_extend).max(h[idx(i - 1, j)] + scoring.gap_open);
            let diag = h[idx(i - 1, j - 1)] + scoring.subst(s[i - 1], t[j - 1]);
            h[idx(i, j)] = diag.max(e[idx(i, j)]).max(f[idx(i, j)]);
        }
    }

    // Traceback over the three matrices.
    #[derive(Clone, Copy, PartialEq)]
    enum Layer {
        H,
        E,
        F,
    }
    let (mut i, mut j) = (m, n);
    let mut layer = Layer::H;
    let mut rs = Vec::new();
    let mut rt = Vec::new();
    while i > 0 || j > 0 {
        match layer {
            Layer::H => {
                let v = h[idx(i, j)];
                if i > 0 && j > 0 && v == h[idx(i - 1, j - 1)] + scoring.subst(s[i - 1], t[j - 1]) {
                    i -= 1;
                    j -= 1;
                    rs.push(s[i]);
                    rt.push(t[j]);
                } else if j > 0 && v == e[idx(i, j)] {
                    layer = Layer::E;
                } else {
                    debug_assert!(i > 0 && v == f[idx(i, j)], "broken affine traceback");
                    layer = Layer::F;
                }
            }
            Layer::E => {
                rs.push(b'-');
                rt.push(t[j - 1]);
                let from_open = h[idx(i, j - 1)] + scoring.gap_open;
                let v = e[idx(i, j)];
                j -= 1;
                if v == from_open {
                    layer = Layer::H;
                } // else stay in E (gap extension)
            }
            Layer::F => {
                rs.push(s[i - 1]);
                rt.push(b'-');
                let from_open = h[idx(i - 1, j)] + scoring.gap_open;
                let v = f[idx(i, j)];
                i -= 1;
                if v == from_open {
                    layer = Layer::H;
                }
            }
        }
    }
    rs.reverse();
    rt.reverse();
    GlobalAlignment {
        aligned_s: rs,
        aligned_t: rt,
        score: h[idx(m, n)],
    }
}

/// Best local alignment with affine gaps: full matrix + traceback.
/// Returns the alignment and region, or `None` when the best score is 0.
pub fn sw_affine_align(
    s: &[u8],
    t: &[u8],
    scoring: &AffineScoring,
) -> Option<(GlobalAlignment, LocalRegion)> {
    scoring.validate();
    let (best, (ei, ej)) = sw_affine_score(s, t, scoring);
    if best <= 0 {
        return None;
    }
    // Recover the start with the reverse trick (Observation 6.1 carries
    // over to affine gaps: reversing both sequences preserves gap runs).
    let srev: Vec<u8> = s[..ei].iter().rev().copied().collect();
    let trev: Vec<u8> = t[..ej].iter().rev().copied().collect();
    let (rbest, (ri, rj)) = sw_affine_score(&srev, &trev, scoring);
    debug_assert_eq!(rbest, best, "reverse affine score must match");
    let (i0, j0) = (ei - ri, ej - rj);
    let alignment = nw_affine_align(&s[i0..ei], &t[j0..ej], scoring);
    Some((
        alignment,
        LocalRegion {
            s_begin: i0,
            s_end: ei,
            t_begin: j0,
            t_end: ej,
            score: best,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::sw_score_linear;
    use crate::matrix::nw_align;
    use crate::nw::nw_score;

    const PAPER: Scoring = Scoring::paper();

    #[test]
    fn linear_degenerate_matches_paper_sw() {
        let aff = AffineScoring::linear(PAPER);
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let (best, end) = sw_affine_score(s, t, &aff);
        let oracle = sw_score_linear(s, t, &PAPER, i32::MAX);
        assert_eq!(best, oracle.best_score);
        assert_eq!(end, oracle.best_end);
    }

    #[test]
    fn linear_degenerate_matches_paper_nw() {
        let aff = AffineScoring::linear(PAPER);
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        assert_eq!(nw_affine_score(s, t, &aff), nw_score(s, t, &PAPER));
        let g = nw_affine_align(s, t, &aff);
        assert_eq!(g.score, nw_align(s, t, &PAPER).score);
    }

    #[test]
    fn affine_prefers_one_long_gap_over_scattered_gaps() {
        // s has one 4-base insertion relative to t. With affine gaps the
        // whole insertion costs open + 3*extend = -7 instead of -16.
        let s = b"ACGTACGTAAAAACGTACGT";
        let t = b"ACGTACGTACGTACGT";
        let aff = AffineScoring::dna();
        let g = nw_affine_align(s, t, &aff);
        assert_eq!(g.score, 16 - 4 - 3); // 16 matches, open -4, 3 extends
                                         // The gap is one contiguous run in the t row.
        let trow = String::from_utf8(g.aligned_t.clone()).unwrap();
        assert!(trow.contains("----"), "gap should be contiguous: {trow}");
    }

    #[test]
    fn gotoh_score_equals_full_matrix_alignment() {
        let aff = AffineScoring::dna();
        let s = b"GATTACAGATTACA";
        let t = b"GATCACAGTTAA";
        let lin = nw_affine_score(s, t, &aff);
        let full = nw_affine_align(s, t, &aff);
        assert_eq!(lin, full.score);
    }

    #[test]
    fn traceback_rows_project_to_inputs() {
        let aff = AffineScoring::dna();
        let s = b"ACGTTTACGT";
        let t = b"ACGACGTCGT";
        let g = nw_affine_align(s, t, &aff);
        let ps: Vec<u8> = g.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = g.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(ps, s);
        assert_eq!(pt, t);
    }

    #[test]
    fn local_affine_finds_planted_repeat() {
        let mut s = vec![b'A'; 60];
        let mut t = vec![b'C'; 60];
        let core = b"GATTACAGGGATTACAG";
        s[20..20 + core.len()].copy_from_slice(core);
        t[30..30 + core.len()].copy_from_slice(core);
        let (g, region) = sw_affine_align(&s, &t, &AffineScoring::dna()).expect("found");
        assert_eq!(g.score, core.len() as i32);
        assert_eq!(region.s_begin, 20);
        assert_eq!(region.t_begin, 30);
    }

    #[test]
    fn local_affine_none_when_nothing_aligns() {
        assert!(sw_affine_align(b"AAAA", b"CCCC", &AffineScoring::dna()).is_none());
    }

    #[test]
    fn empty_inputs() {
        let aff = AffineScoring::dna();
        assert_eq!(nw_affine_score(b"", b"", &aff), 0);
        assert_eq!(nw_affine_score(b"", b"ACG", &aff), -4 - 2);
        assert_eq!(sw_affine_score(b"", b"ACG", &aff).0, 0);
    }

    #[test]
    #[should_panic(expected = "gap penalties")]
    fn validates_gap_signs() {
        let bad = AffineScoring {
            matches: 1,
            mismatch: -1,
            gap_open: 0,
            gap_extend: -1,
        };
        let _ = nw_affine_score(b"A", b"A", &bad);
    }

    #[test]
    fn symmetric_in_arguments() {
        let aff = AffineScoring::dna();
        let s = b"ACGTGGTACCA";
        let t = b"TACGTGCAGTA";
        assert_eq!(sw_affine_score(s, t, &aff).0, sw_affine_score(t, s, &aff).0);
        assert_eq!(nw_affine_score(s, t, &aff), nw_affine_score(t, s, &aff));
    }
}
