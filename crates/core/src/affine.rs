//! Affine-gap alignment (Gotoh's algorithm) — a production extension.
//!
//! The paper scores every space at a flat −2 (§2). Real aligners usually
//! charge gap *opening* more than gap *extension* (affine penalties):
//! a run of `k` spaces costs `open + (k−1)·extend`. This module provides
//! the Gotoh three-matrix formulation for both local (SW) and global (NW)
//! alignment, plus a linear-space score variant. With
//! `open == extend == gap` it degenerates to the paper's linear model,
//! which the tests exploit as an oracle.

use crate::alignment::{GlobalAlignment, LocalRegion};
use crate::linear::LinearSwResult;
use crate::scoring::Scoring;
use crate::submat::MatrixScoring;

/// Affine gap scheme: `matches`/`mismatch` per column, `gap_open` for the
/// first space of a run, `gap_extend` for each further space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineScoring {
    /// Score for identical characters (positive).
    pub matches: i32,
    /// Score for differing characters (normally negative).
    pub mismatch: i32,
    /// Penalty for the first space of a gap run (negative).
    pub gap_open: i32,
    /// Penalty for each subsequent space (negative, usually milder).
    pub gap_extend: i32,
}

impl AffineScoring {
    /// A common DNA scheme: +1 / −1, opening −4, extending −1.
    pub const fn dna() -> Self {
        Self {
            matches: 1,
            mismatch: -1,
            gap_open: -4,
            gap_extend: -1,
        }
    }

    /// The degenerate scheme equivalent to the paper's linear gaps.
    pub const fn linear(scoring: Scoring) -> Self {
        Self {
            matches: scoring.matches,
            mismatch: scoring.mismatch,
            gap_open: scoring.gap,
            gap_extend: scoring.gap,
        }
    }

    #[inline]
    fn subst(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matches
        } else {
            self.mismatch
        }
    }

    fn validate(&self) {
        assert!(self.matches > 0, "match score must be positive");
        assert!(
            self.gap_open < 0 && self.gap_extend < 0,
            "gap penalties must be negative"
        );
    }
}

const NEG: i32 = i32::MIN / 4;

/// Best local alignment score with affine gaps, in linear space, plus its
/// end point (matrix coordinates; `(0, 0)` when everything is zero).
pub fn sw_affine_score(s: &[u8], t: &[u8], scoring: &AffineScoring) -> (i32, (usize, usize)) {
    scoring.validate();
    let n = t.len();
    // H = best ending in a match/mismatch or fresh start; E = gap in s
    // (consuming t); F = gap in t (consuming s).
    let mut h_prev = vec![0i32; n + 1];
    let mut e_prev = vec![NEG; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG; n + 1];
    let mut best = 0;
    let mut end = (0usize, 0usize);
    for (i, &sc) in s.iter().enumerate() {
        let mut f = NEG;
        h_cur[0] = 0;
        for j in 1..=n {
            let e = (e_prev[j] + scoring.gap_extend).max(h_prev[j] + scoring.gap_open);
            f = (f + scoring.gap_extend).max(h_cur[j - 1] + scoring.gap_open);
            let diag = h_prev[j - 1] + scoring.subst(sc, t[j - 1]);
            let h = diag.max(e).max(f).max(0);
            h_cur[j] = h;
            e_cur[j] = e;
            if h > best {
                best = h;
                end = (i + 1, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }
    (best, end)
}

/// Runs the affine-gap (Gotoh) SW recurrence over `s` (rows) and `t`
/// (columns), mirroring [`sw_score_linear`](crate::linear::sw_score_linear)
/// exactly: same traversal order, same strict-`>` best with row-major-first
/// tie-break, same 1-based matrix end point, same `hits` rule (cells
/// scoring `>= threshold` when `threshold > 0`).
///
/// This is the canonical scalar oracle the striped affine kernels are
/// bit-checked against. With `gap_open == gap_extend` it degenerates to
/// the paper's linear model and agrees with `sw_score_linear` cell for
/// cell (the property tests exploit this).
pub fn sw_score_affine(
    s: &[u8],
    t: &[u8],
    scoring: &AffineScoring,
    threshold: i32,
) -> LinearSwResult {
    scoring.validate();
    sw_result_affine(
        s,
        t,
        |a, b| scoring.subst(a, b),
        scoring.gap_open,
        scoring.gap_extend,
        threshold,
    )
}

/// [`sw_score_affine`] with a full substitution matrix in place of the
/// match/mismatch pair — the protein-path scalar oracle. Semantics are
/// otherwise identical (same tie-break, end point, and hit rule).
pub fn sw_score_profile(
    s: &[u8],
    t: &[u8],
    scoring: &MatrixScoring,
    threshold: i32,
) -> LinearSwResult {
    assert!(
        scoring.gap_open < 0 && scoring.gap_extend < 0,
        "gap penalties must be negative"
    );
    sw_result_affine(
        s,
        t,
        |a, b| i32::from(scoring.matrix.score(a, b)),
        scoring.gap_open,
        scoring.gap_extend,
        threshold,
    )
}

fn sw_result_affine(
    s: &[u8],
    t: &[u8],
    subst: impl Fn(u8, u8) -> i32,
    gap_open: i32,
    gap_extend: i32,
    threshold: i32,
) -> LinearSwResult {
    let n = t.len();
    let mut h_prev = vec![0i32; n + 1];
    let mut e_prev = vec![NEG; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG; n + 1];
    let mut best = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: 0,
    };
    for (i, &sc) in s.iter().enumerate() {
        let mut f = NEG;
        h_cur[0] = 0;
        for j in 1..=n {
            let e = (e_prev[j] + gap_extend).max(h_prev[j] + gap_open);
            f = (f + gap_extend).max(h_cur[j - 1] + gap_open);
            let diag = h_prev[j - 1] + subst(sc, t[j - 1]);
            let v = diag.max(e).max(f).max(0);
            h_cur[j] = v;
            e_cur[j] = e;
            if v >= threshold && threshold > 0 {
                best.hits += 1;
            }
            if v > best.best_score {
                best.best_score = v;
                best.best_end = (i + 1, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }
    best
}

/// Global alignment score with affine gaps, linear space.
pub fn nw_affine_score(s: &[u8], t: &[u8], scoring: &AffineScoring) -> i32 {
    scoring.validate();
    let n = t.len();
    let gap_run = |k: usize| -> i32 {
        if k == 0 {
            0
        } else {
            scoring.gap_open + (k as i32 - 1) * scoring.gap_extend
        }
    };
    let mut h_prev: Vec<i32> = (0..=n).map(gap_run).collect();
    let mut e_prev: Vec<i32> = (0..=n)
        .map(|j| if j == 0 { NEG } else { gap_run(j) })
        .collect();
    let mut h_cur = vec![0i32; n + 1];
    let mut e_cur = vec![NEG; n + 1];
    for (i, &sc) in s.iter().enumerate() {
        let mut f = gap_run(i + 1);
        h_cur[0] = gap_run(i + 1);
        for j in 1..=n {
            let e = (e_prev[j] + scoring.gap_extend).max(h_prev[j] + scoring.gap_open);
            f = (f + scoring.gap_extend).max(h_cur[j - 1] + scoring.gap_open);
            let diag = h_prev[j - 1] + scoring.subst(sc, t[j - 1]);
            h_cur[j] = diag.max(e).max(f);
            e_cur[j] = e;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
    }
    h_prev[n]
}

/// Full-matrix global alignment with affine gaps and traceback.
pub fn nw_affine_align(s: &[u8], t: &[u8], scoring: &AffineScoring) -> GlobalAlignment {
    scoring.validate();
    let (m, n) = (s.len(), t.len());
    let w = n + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut h = vec![NEG; (m + 1) * w];
    let mut e = vec![NEG; (m + 1) * w];
    let mut f = vec![NEG; (m + 1) * w];
    h[idx(0, 0)] = 0;
    for j in 1..=n {
        e[idx(0, j)] =
            (e[idx(0, j - 1)] + scoring.gap_extend).max(h[idx(0, j - 1)] + scoring.gap_open);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for i in 1..=m {
        f[idx(i, 0)] =
            (f[idx(i - 1, 0)] + scoring.gap_extend).max(h[idx(i - 1, 0)] + scoring.gap_open);
        h[idx(i, 0)] = f[idx(i, 0)];
        for j in 1..=n {
            e[idx(i, j)] =
                (e[idx(i, j - 1)] + scoring.gap_extend).max(h[idx(i, j - 1)] + scoring.gap_open);
            f[idx(i, j)] =
                (f[idx(i - 1, j)] + scoring.gap_extend).max(h[idx(i - 1, j)] + scoring.gap_open);
            let diag = h[idx(i - 1, j - 1)] + scoring.subst(s[i - 1], t[j - 1]);
            h[idx(i, j)] = diag.max(e[idx(i, j)]).max(f[idx(i, j)]);
        }
    }

    // Traceback over the three matrices.
    #[derive(Clone, Copy, PartialEq)]
    enum Layer {
        H,
        E,
        F,
    }
    let (mut i, mut j) = (m, n);
    let mut layer = Layer::H;
    let mut rs = Vec::new();
    let mut rt = Vec::new();
    while i > 0 || j > 0 {
        match layer {
            Layer::H => {
                let v = h[idx(i, j)];
                if i > 0 && j > 0 && v == h[idx(i - 1, j - 1)] + scoring.subst(s[i - 1], t[j - 1]) {
                    i -= 1;
                    j -= 1;
                    rs.push(s[i]);
                    rt.push(t[j]);
                } else if j > 0 && v == e[idx(i, j)] {
                    layer = Layer::E;
                } else {
                    debug_assert!(i > 0 && v == f[idx(i, j)], "broken affine traceback");
                    layer = Layer::F;
                }
            }
            Layer::E => {
                rs.push(b'-');
                rt.push(t[j - 1]);
                let from_open = h[idx(i, j - 1)] + scoring.gap_open;
                let v = e[idx(i, j)];
                j -= 1;
                if v == from_open {
                    layer = Layer::H;
                } // else stay in E (gap extension)
            }
            Layer::F => {
                rs.push(s[i - 1]);
                rt.push(b'-');
                let from_open = h[idx(i - 1, j)] + scoring.gap_open;
                let v = f[idx(i, j)];
                i -= 1;
                if v == from_open {
                    layer = Layer::H;
                }
            }
        }
    }
    rs.reverse();
    rt.reverse();
    GlobalAlignment {
        aligned_s: rs,
        aligned_t: rt,
        score: h[idx(m, n)],
    }
}

/// Best local alignment with affine gaps: full matrix + traceback.
/// Returns the alignment and region, or `None` when the best score is 0.
pub fn sw_affine_align(
    s: &[u8],
    t: &[u8],
    scoring: &AffineScoring,
) -> Option<(GlobalAlignment, LocalRegion)> {
    scoring.validate();
    let (best, (ei, ej)) = sw_affine_score(s, t, scoring);
    if best <= 0 {
        return None;
    }
    // Recover the start with the reverse trick (Observation 6.1 carries
    // over to affine gaps: reversing both sequences preserves gap runs).
    let srev: Vec<u8> = s[..ei].iter().rev().copied().collect();
    let trev: Vec<u8> = t[..ej].iter().rev().copied().collect();
    let (rbest, (ri, rj)) = sw_affine_score(&srev, &trev, scoring);
    debug_assert_eq!(rbest, best, "reverse affine score must match");
    let (i0, j0) = (ei - ri, ej - rj);
    let alignment = nw_affine_align(&s[i0..ei], &t[j0..ej], scoring);
    Some((
        alignment,
        LocalRegion {
            s_begin: i0,
            s_end: ei,
            t_begin: j0,
            t_end: ej,
            score: best,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::sw_score_linear;
    use crate::matrix::nw_align;
    use crate::nw::nw_score;

    const PAPER: Scoring = Scoring::paper();

    #[test]
    fn linear_degenerate_matches_paper_sw() {
        let aff = AffineScoring::linear(PAPER);
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let (best, end) = sw_affine_score(s, t, &aff);
        let oracle = sw_score_linear(s, t, &PAPER, i32::MAX);
        assert_eq!(best, oracle.best_score);
        assert_eq!(end, oracle.best_end);
    }

    #[test]
    fn linear_degenerate_matches_paper_nw() {
        let aff = AffineScoring::linear(PAPER);
        let s = b"GACGGATTAG";
        let t = b"GATCGGAATAG";
        assert_eq!(nw_affine_score(s, t, &aff), nw_score(s, t, &PAPER));
        let g = nw_affine_align(s, t, &aff);
        assert_eq!(g.score, nw_align(s, t, &PAPER).score);
    }

    #[test]
    fn affine_prefers_one_long_gap_over_scattered_gaps() {
        // s has one 4-base insertion relative to t. With affine gaps the
        // whole insertion costs open + 3*extend = -7 instead of -16.
        let s = b"ACGTACGTAAAAACGTACGT";
        let t = b"ACGTACGTACGTACGT";
        let aff = AffineScoring::dna();
        let g = nw_affine_align(s, t, &aff);
        assert_eq!(g.score, 16 - 4 - 3); // 16 matches, open -4, 3 extends
                                         // The gap is one contiguous run in the t row.
        let trow = String::from_utf8(g.aligned_t.clone()).unwrap();
        assert!(trow.contains("----"), "gap should be contiguous: {trow}");
    }

    #[test]
    fn gotoh_score_equals_full_matrix_alignment() {
        let aff = AffineScoring::dna();
        let s = b"GATTACAGATTACA";
        let t = b"GATCACAGTTAA";
        let lin = nw_affine_score(s, t, &aff);
        let full = nw_affine_align(s, t, &aff);
        assert_eq!(lin, full.score);
    }

    #[test]
    fn traceback_rows_project_to_inputs() {
        let aff = AffineScoring::dna();
        let s = b"ACGTTTACGT";
        let t = b"ACGACGTCGT";
        let g = nw_affine_align(s, t, &aff);
        let ps: Vec<u8> = g.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = g.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(ps, s);
        assert_eq!(pt, t);
    }

    #[test]
    fn local_affine_finds_planted_repeat() {
        let mut s = vec![b'A'; 60];
        let mut t = vec![b'C'; 60];
        let core = b"GATTACAGGGATTACAG";
        s[20..20 + core.len()].copy_from_slice(core);
        t[30..30 + core.len()].copy_from_slice(core);
        let (g, region) = sw_affine_align(&s, &t, &AffineScoring::dna()).expect("found");
        assert_eq!(g.score, core.len() as i32);
        assert_eq!(region.s_begin, 20);
        assert_eq!(region.t_begin, 30);
    }

    #[test]
    fn local_affine_none_when_nothing_aligns() {
        assert!(sw_affine_align(b"AAAA", b"CCCC", &AffineScoring::dna()).is_none());
    }

    #[test]
    fn empty_inputs() {
        let aff = AffineScoring::dna();
        assert_eq!(nw_affine_score(b"", b"", &aff), 0);
        assert_eq!(nw_affine_score(b"", b"ACG", &aff), -4 - 2);
        assert_eq!(sw_affine_score(b"", b"ACG", &aff).0, 0);
    }

    #[test]
    #[should_panic(expected = "gap penalties")]
    fn validates_gap_signs() {
        let bad = AffineScoring {
            matches: 1,
            mismatch: -1,
            gap_open: 0,
            gap_extend: -1,
        };
        let _ = nw_affine_score(b"A", b"A", &bad);
    }

    // Deterministic byte-sequence generator for the property tests.
    fn lcg_seq(seed: &mut u64, len: usize, alphabet: &[u8]) -> Vec<u8> {
        (0..len)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                alphabet[((*seed >> 33) as usize) % alphabet.len()]
            })
            .collect()
    }

    #[test]
    fn sw_score_affine_matches_sw_affine_score_best() {
        let aff = AffineScoring::dna();
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let r = sw_score_affine(s, t, &aff, 3);
        let (best, end) = sw_affine_score(s, t, &aff);
        assert_eq!(r.best_score, best);
        assert_eq!(r.best_end, end);
        assert!(r.hits > 0);
    }

    #[test]
    fn degenerate_affine_equals_linear_kernel_property() {
        // Satellite: with gap_open == gap_extend the Gotoh recurrence
        // collapses to the paper's linear model — every field of the
        // result (score, end point incl. tie-break, hit count) must match
        // sw_score_linear bit for bit.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for case in 0..200 {
            let m = (case * 7) % 37; // includes 0 and 1-length inputs
            let n = (case * 11) % 41;
            let s = lcg_seq(&mut seed, m, b"ACGT");
            let t = lcg_seq(&mut seed, n, b"ACGT");
            for scoring in [
                Scoring::paper(),
                Scoring {
                    matches: 2,
                    mismatch: -3,
                    gap: -5,
                },
            ] {
                let aff = AffineScoring::linear(scoring);
                for threshold in [0, 1, 3, i32::MAX] {
                    let lin = sw_score_linear(&s, &t, &scoring, threshold);
                    let got = sw_score_affine(&s, &t, &aff, threshold);
                    assert_eq!(got, lin, "case {case} threshold {threshold}");
                }
            }
        }
    }

    #[test]
    fn profile_oracle_matches_affine_on_uniform_matrix() {
        use crate::submat::{MatrixScoring, SubstMatrix, AA_N};
        // A matrix that is +1 on the diagonal, -1 off it, reproduces the
        // match/mismatch scheme on residue letters.
        let mut scores = [[-1i16; AA_N]; AA_N];
        for d in 0..AA_N {
            scores[d][d] = 1;
        }
        let ms = MatrixScoring::new(SubstMatrix::from_scores(scores), -4, -1);
        let aff = AffineScoring {
            matches: 1,
            mismatch: -1,
            gap_open: -4,
            gap_extend: -1,
        };
        let mut seed = 17u64;
        for case in 0..50 {
            let s = lcg_seq(&mut seed, (case * 5) % 31, b"ARNDCQEGHILKMFPSTWYV");
            let t = lcg_seq(&mut seed, (case * 13) % 29, b"ARNDCQEGHILKMFPSTWYV");
            for threshold in [0, 2, i32::MAX] {
                assert_eq!(
                    sw_score_profile(&s, &t, &ms, threshold),
                    sw_score_affine(&s, &t, &aff, threshold),
                    "case {case}"
                );
            }
        }
    }

    #[test]
    fn profile_oracle_blosum62_planted_motif() {
        use crate::submat::MatrixScoring;
        // A shared motif inside unrelated flanks: the local score is at
        // least the motif's self-score minus nothing (no gaps needed).
        let motif = b"WQHKRWCEW";
        let ms = MatrixScoring::blosum62();
        let mut s = vec![b'A'; 40];
        let mut t = vec![b'G'; 40];
        s[10..10 + motif.len()].copy_from_slice(motif);
        t[25..25 + motif.len()].copy_from_slice(motif);
        let self_score: i32 = motif
            .iter()
            .map(|&c| i32::from(ms.matrix.score(c, c)))
            .sum();
        let r = sw_score_profile(&s, &t, &ms, 1);
        assert!(
            r.best_score >= self_score,
            "{} < {self_score}",
            r.best_score
        );
        assert_eq!(r.best_end.0, 10 + motif.len());
        assert_eq!(r.best_end.1, 25 + motif.len());
    }

    #[test]
    #[should_panic(expected = "gap penalties")]
    fn profile_oracle_validates_gap_signs() {
        use crate::submat::MatrixScoring;
        let mut ms = MatrixScoring::blosum62();
        ms.gap_extend = 0;
        let _ = sw_score_profile(b"A", b"A", &ms, 1);
    }

    #[test]
    fn symmetric_in_arguments() {
        let aff = AffineScoring::dna();
        let s = b"ACGTGGTACCA";
        let t = b"TACGTGCAGTA";
        assert_eq!(sw_affine_score(s, t, &aff).0, sw_affine_score(t, s, &aff).0);
        assert_eq!(nw_affine_score(s, t, &aff), nw_affine_score(t, s, &aff));
    }
}
