//! The Section-6 exact space-reduction algorithm.
//!
//! The paper's third theoretical contribution: retrieve exact local
//! alignments in `O(min(n,m) + n′²)` space, where `n′` is the maximum
//! length of a local alignment — without heuristics and without saving
//! intermediate columns to disk.
//!
//! The pieces map to the paper as follows:
//!
//! * **Algorithm 1** — [`reverse_align_best`] / [`reverse_align_all`]:
//!   run linear-space SW over `s` and `t` to detect end positions of
//!   alignments of the desired score (line 1), then for each selected end
//!   run dynamic programming over the *reversed* prefixes until an
//!   alignment of the same score is detected (line 3), and rebuild the
//!   alignment over the original sequences (line 4).
//! * **Observation 6.1** — an alignment of score `k` finishing at `(i, j)`
//!   corresponds to one of the same score *starting at position 1* of the
//!   reversed prefixes `s[1..i]ʳᵉᵛ`, `t[1..j]ʳᵉᵛ`; this anchors the reverse
//!   DP at the origin.
//! * **Theorem 6.2 (zero elimination)** — computations descending from
//!   intermediate zeros are unnecessary: some minimal-length score-`k`
//!   alignment has no zero-score proper prefix, so any cell whose value
//!   drops to `<= 0` is *dead* and never extended ([`recover_start`]
//!   implements this with a live-interval sweep per row, Table 7).
//! * **Eqs. (2)–(3)** — the dead-cell pruning leaves roughly 1/3 of the
//!   `n′ × n′` window to compute ("approximately 30%");
//!   [`theoretical_necessary_fraction`] evaluates the paper's closed form
//!   and [`PruneStats`] reports what the implementation actually computed.

use crate::alignment::{GlobalAlignment, LocalRegion};
use crate::linear::{sw_ends_over, sw_score_linear};
use crate::nw::align_global;
use crate::scoring::Scoring;

/// Work/space accounting for one reverse-DP start recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Interior cells actually evaluated (including cells evaluated and
    /// found dead — they form the border of the useful area, the explicit
    /// zeros of Table 7).
    pub evaluated_cells: u64,
    /// `n′²`: the area of the square window spanned by the recovered
    /// alignment (`n′ = max` of the two projection lengths).
    pub window_cells: u64,
    /// Rows of the reverse DP that were touched before the score was found.
    pub rows_touched: usize,
}

impl PruneStats {
    /// Fraction of the `n′ × n′` window that was evaluated. The paper's
    /// Eq. (3) predicts ≈ 1/3 in the worst case.
    pub fn evaluated_fraction(&self) -> f64 {
        if self.window_cells == 0 {
            return 0.0;
        }
        self.evaluated_cells as f64 / self.window_cells as f64
    }
}

/// The paper's Eq. (3): the necessary (worst-case) area of the whole
/// `n′ × n′` matrix. Unnecessary cells number `2/3·n′² − n′`, so the
/// necessary fraction is `1 − (2/3 − 1/n′)` → `1/3 + 1/n′` ≈ 30% for
/// large `n′`.
pub fn theoretical_necessary_fraction(n_prime: usize) -> f64 {
    if n_prime == 0 {
        return 0.0;
    }
    let n = n_prime as f64;
    let unnecessary = (2.0 / 3.0) * n * n - n;
    ((n * n - unnecessary) / (n * n)).clamp(0.0, 1.0)
}

/// One recovered exact local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredAlignment {
    /// Begin/end coordinates and score of the alignment.
    pub region: LocalRegion,
    /// The rebuilt alignment over the original sequences (line 4 of
    /// Algorithm 1).
    pub alignment: GlobalAlignment,
    /// Pruning statistics of the reverse pass that found the start.
    pub stats: PruneStats,
}

/// Runs the zero-eliminated DP over the reversed prefixes
/// `s[..end_i]ʳᵉᵛ × t[..end_j]ʳᵉᵛ` until a cell reaches `score`, returning
/// the 0-based start offsets `(i0, j0)` in the *original* sequences (so the
/// alignment covers `s[i0..end_i]` and `t[j0..end_j]`) plus statistics.
///
/// Returns `None` if no cell reaches `score` — which, per Observation 6.1,
/// cannot happen when `(end_i, end_j, score)` really is an SW end point;
/// the `Option` guards against inconsistent caller input.
pub fn recover_start(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    end_i: usize,
    end_j: usize,
    score: i32,
) -> Option<((usize, usize), PruneStats)> {
    assert!(end_i <= s.len() && end_j <= t.len(), "end out of range");
    assert!(score > 0, "local alignment score must be positive");
    let srev: Vec<u8> = s[..end_i].iter().rev().copied().collect();
    let trev: Vec<u8> = t[..end_j].iter().rev().copied().collect();
    let (m, n) = (srev.len(), trev.len());

    const DEAD: i32 = i32::MIN / 4;
    let alive = |v: i32| v > DEAD / 2;
    let mut stats = PruneStats::default();

    // prev[j] / cur[j] hold cell values of the reverse DP; DEAD marks a
    // pruned cell. Row 0 is the zero border; only the origin (0,0) is a
    // live start (Observation 6.1 anchors the alignment there).
    let mut prev = vec![DEAD; n + 1];
    let mut cur = vec![DEAD; n + 1];
    prev[0] = 0;
    // Live interval [lo, hi] of the previous row, and the rightmost column
    // the previous row actually computed (everything right of it is DEAD).
    let (mut lo, mut hi) = (0usize, 0usize);
    let mut prev_extent = 0usize;

    for i in 1..=m {
        // Cells of this row are reachable from the previous row's live
        // band [lo, hi] (diag/up into columns lo..=hi+1) or by a chain of
        // left-gap moves continuing right while the value stays positive.
        let jlo = lo.max(1);
        if jlo > n {
            return None;
        }
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        let mut last_computed = jlo - 1;
        let mut j = jlo;
        while j <= n {
            // Beyond the previous band's reach, only a live left neighbour
            // can feed this cell; once that chain breaks, stop the row.
            if j > hi + 1 && !alive(cur[j - 1]) {
                break;
            }
            stats.evaluated_cells += 1;
            let diag_pred = if j - 1 == 0 {
                if i == 1 {
                    0
                } else {
                    DEAD
                }
            } else {
                prev[j - 1]
            };
            let up_pred = prev[j];
            let left_pred = if j == jlo { DEAD } else { cur[j - 1] };
            let mut v = DEAD;
            if alive(diag_pred) {
                v = v.max(diag_pred + scoring.subst(srev[i - 1], trev[j - 1]));
            }
            if alive(up_pred) {
                v = v.max(up_pred + scoring.gap);
            }
            if alive(left_pred) {
                v = v.max(left_pred + scoring.gap);
            }
            if v <= 0 {
                cur[j] = DEAD; // zero elimination (Theorem 6.2)
            } else {
                cur[j] = v;
                new_lo = new_lo.min(j);
                new_hi = new_hi.max(j);
                if v >= score {
                    stats.rows_touched = i;
                    // Reverse coordinates (i, j) map back to original starts.
                    let i0 = end_i - i;
                    let j0 = end_j - j;
                    let n_prime = i.max(j) as u64;
                    stats.window_cells = n_prime * n_prime;
                    return Some(((i0, j0), stats));
                }
            }
            last_computed = j;
            j += 1;
        }
        if new_lo == usize::MAX {
            return None; // all cells of this row died
        }
        // Publish this row: copy the computed span and DEAD out anything
        // the previous row had computed further right (stale values).
        for j in jlo - 1..=last_computed {
            prev[j] = cur[j];
            cur[j] = DEAD;
        }
        for p in prev
            .iter_mut()
            .take(prev_extent.min(n) + 1)
            .skip(last_computed + 1)
        {
            *p = DEAD;
        }
        prev_extent = last_computed;
        lo = new_lo;
        hi = new_hi;
        stats.rows_touched = i;
    }
    None
}

/// Runs the full Algorithm 1 for the single best alignment: linear-space
/// SW finds the best end point, the reverse pass recovers the start, and
/// the alignment is rebuilt over the original sequences.
///
/// Returns `None` when the best score is zero (no local alignment).
pub fn reverse_align_best(s: &[u8], t: &[u8], scoring: &Scoring) -> Option<RecoveredAlignment> {
    let lin = sw_score_linear(s, t, scoring, i32::MAX);
    if lin.best_score <= 0 {
        return None;
    }
    let (end_i, end_j) = lin.best_end;
    let ((i0, j0), stats) = recover_start(s, t, scoring, end_i, end_j, lin.best_score)?;
    let alignment = align_global(&s[i0..end_i], &t[j0..end_j], scoring);
    Some(RecoveredAlignment {
        region: LocalRegion {
            s_begin: i0,
            s_end: end_i,
            t_begin: j0,
            t_end: end_j,
            score: lin.best_score,
        },
        alignment,
        stats,
    })
}

/// Runs Algorithm 1 over *all* end points scoring at least `min_score`
/// (line 2's loop), greedily from the highest score down, skipping end
/// points that fall inside an already recovered region. This mirrors the
/// "final selection" the pre-process strategy defers to a post-pass.
pub fn reverse_align_all(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    min_score: i32,
) -> Vec<RecoveredAlignment> {
    let mut ends = sw_ends_over(s, t, scoring, min_score);
    // Highest score first; then earliest end for determinism.
    ends.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut out: Vec<RecoveredAlignment> = Vec::new();
    'ends: for (ei, ej, score) in ends {
        for r in &out {
            let reg = &r.region;
            if ei > reg.s_begin && ei <= reg.s_end && ej > reg.t_begin && ej <= reg.t_end {
                continue 'ends; // end point already covered
            }
        }
        if let Some(((i0, j0), stats)) = recover_start(s, t, scoring, ei, ej, score) {
            let alignment = align_global(&s[i0..ei], &t[j0..ej], scoring);
            out.push(RecoveredAlignment {
                region: LocalRegion {
                    s_begin: i0,
                    s_end: ei,
                    t_begin: j0,
                    t_end: ej,
                    score,
                },
                alignment,
                stats,
            });
        }
    }
    out
}

/// Splits Algorithm 1 into the two stages used by the parallel variant
/// (the §7 future work: running the Section-6 method on many alignments
/// at once): stage 1 detects and sorts the end points; stage 2 recovers
/// a single end. The greedy covered-end filter of [`reverse_align_all`]
/// is applied *after* all recoveries, which yields exactly the same
/// result set because the filter only inspects regions that sort earlier.
pub fn sorted_ends(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    min_score: i32,
) -> Vec<(usize, usize, i32)> {
    let mut ends = sw_ends_over(s, t, scoring, min_score);
    ends.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    ends
}

/// Recovers one end point into a full alignment (stage 2 of the parallel
/// Section-6 variant). Returns `None` when the reverse pass cannot reach
/// the score (inconsistent input; see [`recover_start`]).
pub fn recover_end(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    end: (usize, usize, i32),
) -> Option<RecoveredAlignment> {
    let (ei, ej, score) = end;
    let ((i0, j0), stats) = recover_start(s, t, scoring, ei, ej, score)?;
    let alignment = align_global(&s[i0..ei], &t[j0..ej], scoring);
    Some(RecoveredAlignment {
        region: LocalRegion {
            s_begin: i0,
            s_end: ei,
            t_begin: j0,
            t_end: ej,
            score,
        },
        alignment,
        stats,
    })
}

/// Applies [`reverse_align_all`]'s greedy covered-end filter to a list of
/// recoveries that is already sorted like [`sorted_ends`]'s output.
pub fn filter_covered(recovered: Vec<RecoveredAlignment>) -> Vec<RecoveredAlignment> {
    let mut out: Vec<RecoveredAlignment> = Vec::new();
    'recs: for rec in recovered {
        for kept in &out {
            let reg = &kept.region;
            if rec.region.s_end > reg.s_begin
                && rec.region.s_end <= reg.s_end
                && rec.region.t_end > reg.t_begin
                && rec.region.t_end <= reg.t_end
            {
                continue 'recs;
            }
        }
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::sw_matrix;

    const SC: Scoring = Scoring::paper();
    // The Table 5 example strings.
    const S: &[u8] = b"TCTCGACGGATTAGTATATATATA";
    const T: &[u8] = b"ATATGATCGGAATAGCTCT";

    #[test]
    fn table6_recovers_fig1_start() {
        // Paper: alignment of score 6 ends at (14, 15). Table 7's pruned
        // reverse DP reaches score 6 at reverse cell (8, 8) (the row
        // "C: ... 3 6"), i.e. the minimal-length variant covering
        // s[7..14] and t[8..15] (1-based) — offsets (6, 7). This is the
        // Theorem-6.2 maximal start position.
        let ((i0, j0), stats) = recover_start(S, T, &SC, 14, 15, 6).expect("found");
        assert_eq!((i0, j0), (6, 7));
        assert!(stats.evaluated_cells > 0);
        assert_eq!(stats.rows_touched, 8);
    }

    #[test]
    fn best_alignment_matches_oracle() {
        let rec = reverse_align_best(S, T, &SC).expect("score 6 exists");
        assert_eq!(rec.region.score, 6);
        assert_eq!((rec.region.s_end, rec.region.t_end), (14, 15));
        assert_eq!((rec.region.s_begin, rec.region.t_begin), (6, 7));
        // Rebuilt alignment is the minimal-length optimal variant of the
        // Fig. 1 alignment: score 6, 7 matches / 1 mismatch / 0 spaces
        // (CGGATTAG vs CGGAATAG).
        assert_eq!(rec.alignment.score, 6);
        assert_eq!(rec.alignment.column_stats(), (7, 1, 0));
    }

    #[test]
    fn zero_elimination_prunes_work() {
        // Table 7 vs Table 6: with pruning, far fewer cells are computed
        // than the full reverse window (14 × 15 = 210 cells).
        let (_, stats) = recover_start(S, T, &SC, 14, 15, 6).expect("found");
        assert!(
            stats.evaluated_cells < 210,
            "evaluated {} of 210",
            stats.evaluated_cells
        );
    }

    #[test]
    fn theoretical_fraction_approaches_one_third() {
        let f = theoretical_necessary_fraction(1000);
        assert!((f - (1.0 / 3.0 + 1.0 / 1000.0)).abs() < 1e-9);
        assert!(theoretical_necessary_fraction(0) == 0.0);
        // Small windows need proportionally more.
        assert!(theoretical_necessary_fraction(3) > f);
    }

    #[test]
    fn recovery_consistent_with_full_matrix_on_random_pairs() {
        // Pseudo-random pairs: the recovered global alignment over the
        // window must reproduce the linear-pass best score.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..10 {
            let s: Vec<u8> = (0..120).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let mut t: Vec<u8> = (0..120).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            // Plant a 30-bp identical region so a clear optimum exists.
            let start = (next() % 80) as usize;
            t[start..start + 30].copy_from_slice(&s[10..40]);
            let rec = reverse_align_best(&s, &t, &SC).expect("planted optimum");
            let oracle = sw_matrix(&s, &t, &SC).maximum().2;
            assert_eq!(rec.region.score, oracle, "trial {trial}");
            assert_eq!(rec.alignment.score, oracle, "trial {trial}");
        }
    }

    #[test]
    fn no_alignment_returns_none() {
        assert!(reverse_align_best(b"AAAA", b"", &SC).is_none());
        // Completely dissimilar single characters still have score-1 cells
        // when any base matches; force a mismatch-only pair.
        assert!(reverse_align_best(b"A", b"C", &SC).is_none());
    }

    #[test]
    fn recover_start_rejects_bad_input() {
        // An end point that cannot reach the requested score.
        assert!(recover_start(b"ACGT", b"ACGT", &SC, 2, 2, 99).is_none());
    }

    #[test]
    #[should_panic(expected = "end out of range")]
    fn recover_start_bounds_checked() {
        let _ = recover_start(b"AC", b"AC", &SC, 5, 1, 1);
    }

    #[test]
    fn all_alignments_cover_planted_repeats() {
        // Two planted repeats; reverse_align_all must recover both.
        let mut s = vec![b'A'; 40];
        let mut t = vec![b'C'; 40];
        let r1 = b"GATTACAGATTACAGATTACA"; // 21 bp
        let r2 = b"TTGGCCAATTGGCCAATTGG"; // 20 bp
        s.splice(5..5, r1.iter().copied());
        s.splice(45..45, r2.iter().copied());
        t.splice(10..10, r1.iter().copied());
        t.splice(50..50, r2.iter().copied());
        let recs = reverse_align_all(&s, &t, &SC, 12);
        assert!(recs.len() >= 2, "found {}", recs.len());
        let scores: Vec<i32> = recs.iter().map(|r| r.region.score).collect();
        assert!(scores[0] >= 20, "{scores:?}");
    }

    #[test]
    fn stats_window_matches_alignment_span() {
        let rec = reverse_align_best(S, T, &SC).expect("exists");
        let n_prime = rec.region.s_len().max(rec.region.t_len()) as u64;
        // The reverse pass may stop a cell short of the exact window edge,
        // but the reported window area equals n'^2 of the recovery point.
        assert!(rec.stats.window_cells >= n_prime * n_prime);
    }
}
