//! The column scoring scheme of §2.
//!
//! For each alignment column the paper associates `+1` if the two characters
//! are identical, `−1` if they differ, and `−2` if one of them is a space.
//! All kernels are parametric over these three values.

/// Scores for one alignment column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scoring {
    /// Score when the two characters are identical (paper: `+1`).
    pub matches: i32,
    /// Score when the two characters differ (paper: `−1`).
    pub mismatch: i32,
    /// Score when one character is aligned to a space (paper: `−2`).
    pub gap: i32,
}

impl Scoring {
    /// The paper's scheme: `+1 / −1 / −2`.
    pub const fn paper() -> Self {
        Self {
            matches: 1,
            mismatch: -1,
            gap: -2,
        }
    }

    /// Creates a custom scheme. `gap` and `mismatch` are normally negative;
    /// a non-negative gap would make local alignment degenerate, so it is
    /// rejected.
    pub fn new(matches: i32, mismatch: i32, gap: i32) -> Self {
        assert!(gap < 0, "gap penalty must be negative");
        assert!(matches > 0, "match score must be positive");
        Self {
            matches,
            mismatch,
            gap,
        }
    }

    /// Substitution score for aligning character `a` against `b`.
    #[inline(always)]
    pub fn subst(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matches
        } else {
            self.mismatch
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_values() {
        let s = Scoring::paper();
        assert_eq!((s.matches, s.mismatch, s.gap), (1, -1, -2));
    }

    #[test]
    fn subst_distinguishes_match_and_mismatch() {
        let s = Scoring::paper();
        assert_eq!(s.subst(b'A', b'A'), 1);
        assert_eq!(s.subst(b'A', b'C'), -1);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Scoring::default(), Scoring::paper());
    }

    #[test]
    #[should_panic(expected = "gap penalty")]
    fn rejects_non_negative_gap() {
        let _ = Scoring::new(1, -1, 0);
    }

    #[test]
    #[should_panic(expected = "match score")]
    fn rejects_non_positive_match() {
        let _ = Scoring::new(0, -1, -2);
    }
}
