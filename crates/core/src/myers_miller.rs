//! Myers–Miller linear-space affine-gap global alignment.
//!
//! Hirschberg's divide-and-conquer ([`crate::hirschberg`]) assumes linear
//! gap costs: cutting an alignment at a row boundary never splits a gap
//! run's *open* penalty. With affine gaps (Gotoh, [`crate::affine`]) a
//! vertical gap run may cross the midline, and a naive split charges its
//! opening twice. Myers & Miller (1988) repair this by tracking, at the
//! midline, both the match-state score (`CC`) and the
//! vertical-gap-state score (`DD`) for the forward half and the reversed
//! bottom half, then choosing between
//!
//! * a **type-1** crossing: `CC[j] + CCʳ[n-j]` (the path is in the match
//!   state at the boundary), and
//! * a **type-2** crossing: `DD[j] + DDʳ[n-j] + gap_open` (one vertical
//!   run spans the boundary; the doubly-charged open is refunded),
//!
//! recursing accordingly. Space is O(min(m, n)), time is ~2× Gotoh's.

use crate::affine::{nw_affine_align, AffineScoring};
use crate::alignment::GlobalAlignment;

const NEG: i32 = i32::MIN / 4;

/// Forward pass over `s × t`: returns the last row of Gotoh's `H` (best
/// score, any state) and `F` (best score ending in a vertical gap — a gap
/// in `t` consuming `s`).
fn last_rows(s: &[u8], t: &[u8], sc: &AffineScoring) -> (Vec<i32>, Vec<i32>) {
    let n = t.len();
    let gap_run = |k: usize| -> i32 {
        if k == 0 {
            0
        } else {
            sc.gap_open + (k as i32 - 1) * sc.gap_extend
        }
    };
    // E (horizontal gap) is confined to its own row, so a single scalar
    // suffices; H needs the previous row; F needs its own running row.
    let mut h_prev: Vec<i32> = (0..=n).map(gap_run).collect();
    let mut f_row = vec![NEG; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    if s.is_empty() {
        return (h_prev, f_row);
    }
    for (i, &c) in s.iter().enumerate() {
        let mut e_in_row = NEG; // E of the current row (gap in s)
        h_cur[0] = gap_run(i + 1);
        f_row[0] = gap_run(i + 1); // a pure vertical gap down column 0
        for j in 1..=n {
            let f = (f_row[j] + sc.gap_extend).max(h_prev[j] + sc.gap_open);
            e_in_row = (e_in_row + sc.gap_extend).max(h_cur[j - 1] + sc.gap_open);
            let diag = h_prev[j - 1]
                + if c == t[j - 1] { sc.matches } else { sc.mismatch };
            h_cur[j] = diag.max(f).max(e_in_row);
            f_row[j] = f;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    (h_prev, f_row)
}

fn reversed(x: &[u8]) -> Vec<u8> {
    x.iter().rev().copied().collect()
}

fn rec(s: &[u8], t: &[u8], sc: &AffineScoring, out_s: &mut Vec<u8>, out_t: &mut Vec<u8>) {
    let (m, n) = (s.len(), t.len());
    if m <= 1 || n <= 1 {
        let g = nw_affine_align(s, t, sc);
        out_s.extend_from_slice(&g.aligned_s);
        out_t.extend_from_slice(&g.aligned_t);
        return;
    }
    let mid = m / 2;
    let (s_top, s_bot) = s.split_at(mid);
    let (cc, dd) = last_rows(s_top, t, sc);
    let s_bot_rev = reversed(s_bot);
    let t_rev = reversed(t);
    let (rr, ss) = last_rows(&s_bot_rev, &t_rev, sc);

    // Best crossing column and type.
    let mut best = i64::MIN;
    let mut best_j = 0;
    let mut type2 = false;
    for j in 0..=n {
        let t1 = cc[j] as i64 + rr[n - j] as i64;
        if t1 > best {
            best = t1;
            best_j = j;
            type2 = false;
        }
        let t2 = dd[j] as i64 + ss[n - j] as i64 - sc.gap_open as i64;
        if t2 > best {
            best = t2;
            best_j = j;
            type2 = true;
        }
    }

    if !type2 {
        rec(s_top, &t[..best_j], sc, out_s, out_t);
        rec(s_bot, &t[best_j..], sc, out_s, out_t);
    } else {
        // One vertical gap run spans rows mid-1..=mid (0-based s indices
        // mid-1 and mid are both deleted inside it). Force those two
        // columns and recurse on the trimmed halves.
        rec(&s[..mid - 1], &t[..best_j], sc, out_s, out_t);
        out_s.push(s[mid - 1]);
        out_t.push(b'-');
        out_s.push(s[mid]);
        out_t.push(b'-');
        rec(&s[mid + 1..], &t[best_j..], sc, out_s, out_t);
    }
}

/// Computes the global affine-gap alignment of `s` and `t` in linear
/// space. Scores exactly match [`nw_affine_align`].
pub fn myers_miller_align(s: &[u8], t: &[u8], sc: &AffineScoring) -> GlobalAlignment {
    let mut aligned_s = Vec::with_capacity(s.len() + 8);
    let mut aligned_t = Vec::with_capacity(t.len() + 8);
    rec(s, t, sc, &mut aligned_s, &mut aligned_t);
    let score = rescore_affine(&aligned_s, &aligned_t, sc);
    GlobalAlignment {
        aligned_s,
        aligned_t,
        score,
    }
}

/// Recomputes an affine score from rendered rows (gap runs charged
/// open + extends). Public for tests and tooling.
pub fn rescore_affine(aligned_s: &[u8], aligned_t: &[u8], sc: &AffineScoring) -> i32 {
    let mut score = 0;
    let mut in_gap_s = false;
    let mut in_gap_t = false;
    for (&a, &b) in aligned_s.iter().zip(aligned_t) {
        if a == b'-' {
            score += if in_gap_s { sc.gap_extend } else { sc.gap_open };
            in_gap_s = true;
            in_gap_t = false;
        } else if b == b'-' {
            score += if in_gap_t { sc.gap_extend } else { sc.gap_open };
            in_gap_t = true;
            in_gap_s = false;
        } else {
            score += if a == b { sc.matches } else { sc.mismatch };
            in_gap_s = false;
            in_gap_t = false;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::nw_affine_score;

    const AFF: AffineScoring = AffineScoring::dna();

    #[test]
    fn matches_gotoh_on_simple_cases() {
        for (s, t) in [
            (&b"GATTACA"[..], &b"GATTACA"[..]),
            (b"GATTACA", b"GACA"),
            (b"ACGTACGTACGT", b"ACGTACCGTACGT"),
            (b"AAAAAAAA", b"AA"),
            (b"ACGT", b"TGCA"),
        ] {
            let mm = myers_miller_align(s, t, &AFF);
            let oracle = nw_affine_score(s, t, &AFF);
            assert_eq!(mm.score, oracle, "s={s:?} t={t:?}");
        }
    }

    #[test]
    fn projections_reproduce_inputs() {
        let s = b"GGGACGTACGTTTT";
        let t = b"ACGTTACGATT";
        let g = myers_miller_align(s, t, &AFF);
        let ps: Vec<u8> = g.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = g.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(ps, s);
        assert_eq!(pt, t);
    }

    #[test]
    fn long_vertical_gap_crossing_the_midline() {
        // s has a long insertion exactly around its middle: the classic
        // type-2 case where naive Hirschberg double-charges the open.
        let s = b"ACGTACGTAAAAAAAAAAACGTACGT";
        let t = b"ACGTACGTCGTACGT";
        let mm = myers_miller_align(s, t, &AFF);
        assert_eq!(mm.score, nw_affine_score(s, t, &AFF));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(myers_miller_align(b"", b"", &AFF).columns(), 0);
        assert_eq!(
            myers_miller_align(b"", b"ACG", &AFF).score,
            nw_affine_score(b"", b"ACG", &AFF)
        );
        assert_eq!(
            myers_miller_align(b"ACG", b"", &AFF).score,
            nw_affine_score(b"ACG", b"", &AFF)
        );
        assert_eq!(
            myers_miller_align(b"A", b"G", &AFF).score,
            nw_affine_score(b"A", b"G", &AFF)
        );
    }

    #[test]
    fn pseudo_random_pairs_match_gotoh() {
        let mut x: u64 = 0xABCDEF0123456789;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..40 {
            let m = (next() % 60) as usize;
            let n = (next() % 60) as usize;
            let s: Vec<u8> = (0..m).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let t: Vec<u8> = (0..n).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let mm = myers_miller_align(&s, &t, &AFF);
            let oracle = nw_affine_score(&s, &t, &AFF);
            assert_eq!(
                mm.score, oracle,
                "trial {trial}: s={} t={}",
                String::from_utf8_lossy(&s),
                String::from_utf8_lossy(&t)
            );
            assert_eq!(mm.score, rescore_affine(&mm.aligned_s, &mm.aligned_t, &AFF));
        }
    }
}
