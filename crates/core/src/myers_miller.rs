//! Myers–Miller linear-space affine-gap global alignment.
//!
//! Hirschberg's divide-and-conquer ([`crate::hirschberg`]) assumes linear
//! gap costs: cutting an alignment at a row boundary never splits a gap
//! run's *open* penalty. With affine gaps (Gotoh, [`crate::affine`]) a
//! vertical gap run may cross the midline, and a naive split charges its
//! opening twice. Myers & Miller (1988) repair this by tracking, at the
//! midline, both the match-state score (`CC`) and the
//! vertical-gap-state score (`DD`) for the forward half and the reversed
//! bottom half, then choosing between
//!
//! * a **type-1** crossing: `CC[j] + CCʳ[n-j]` (the path is in the match
//!   state at the boundary), and
//! * a **type-2** crossing: `DD[j] + DDʳ[n-j] + (gap_open - gap_extend)`
//!   (one vertical run spans the boundary; the doubly-charged opening —
//!   `g` in the paper's `gap(k) = g + h·k` decomposition — is refunded),
//!
//! recursing accordingly. Crucially, each recursive call carries the
//! paper's *boundary* gap-open parameters (`tb`, `te` here): after a
//! type-2 split, the halves are told (by passing `gap_extend` as the
//! border opening) that a deletion flush against the seam continues the
//! forced run instead of opening a new gap. Dropping those parameters and
//! recursing on unconstrained subproblems is a classic mis-implementation
//! that loses optimality whenever a subproblem's unconstrained optimum
//! refuses to end at the seam in the gap state.
//! Space is O(min(m, n)), time is ~2× Gotoh's.

use crate::affine::AffineScoring;
use crate::alignment::GlobalAlignment;

const NEG: i32 = i32::MIN / 4;

/// Forward pass over `s × t`: returns the last row of Gotoh's `H` (best
/// score, any state) and `F` (best score ending in a vertical gap — a gap
/// in `t` consuming `s`).
///
/// `tb` is the opening score charged to a deletion run that starts at the
/// top-left corner (straight down column 0). Passing `gap_extend` there is
/// how a recursive call is told "a run touching your top border continues a
/// gap the caller already opened" — Myers & Miller's boundary parameter.
fn last_rows(s: &[u8], t: &[u8], sc: &AffineScoring, tb: i32) -> (Vec<i32>, Vec<i32>) {
    let n = t.len();
    let gap_run = |k: usize| -> i32 {
        if k == 0 {
            0
        } else {
            sc.gap_open + (k as i32 - 1) * sc.gap_extend
        }
    };
    // E (horizontal gap) is confined to its own row, so a single scalar
    // suffices; H needs the previous row; F needs its own running row.
    let mut h_prev: Vec<i32> = (0..=n).map(gap_run).collect();
    let mut f_row = vec![NEG; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    if s.is_empty() {
        return (h_prev, f_row);
    }
    for (i, &c) in s.iter().enumerate() {
        let mut e_in_row = NEG; // E of the current row (gap in s)
        h_cur[0] = tb + i as i32 * sc.gap_extend;
        f_row[0] = h_cur[0]; // a pure vertical gap down column 0
        for j in 1..=n {
            let f = (f_row[j] + sc.gap_extend).max(h_prev[j] + sc.gap_open);
            e_in_row = (e_in_row + sc.gap_extend).max(h_cur[j - 1] + sc.gap_open);
            let diag = h_prev[j - 1]
                + if c == t[j - 1] {
                    sc.matches
                } else {
                    sc.mismatch
                };
            h_cur[j] = diag.max(f).max(e_in_row);
            f_row[j] = f;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    (h_prev, f_row)
}

fn reversed(x: &[u8]) -> Vec<u8> {
    x.iter().rev().copied().collect()
}

/// Score of an insertion run of `k` spaces (gap in `s`), never
/// border-merged (the divide is along rows, so only deletions can span it).
fn ins_run(sc: &AffineScoring, k: usize) -> i32 {
    if k == 0 {
        0
    } else {
        sc.gap_open + (k as i32 - 1) * sc.gap_extend
    }
}

/// Score of a deletion run of `k` spaces whose opening is charged `b`
/// (either `gap_open` or, when it abuts a border gap, `gap_extend`).
fn del_run(sc: &AffineScoring, b: i32, k: usize) -> i32 {
    if k == 0 {
        0
    } else {
        b + (k as i32 - 1) * sc.gap_extend
    }
}

fn push(out_s: &mut Vec<u8>, out_t: &mut Vec<u8>, a: u8, b: u8) {
    out_s.push(a);
    out_t.push(b);
}

/// Base case `|s| == 1`: match `s[0]` somewhere in `t`, or delete it
/// against the cheaper border.
fn base_single_s(
    s0: u8,
    t: &[u8],
    sc: &AffineScoring,
    tb: i32,
    te: i32,
    out_s: &mut Vec<u8>,
    out_t: &mut Vec<u8>,
) {
    let n = t.len();
    let mut best = tb.max(te) + ins_run(sc, n);
    let mut best_k = None;
    for (k, &c) in t.iter().enumerate() {
        let v = ins_run(sc, k)
            + if s0 == c { sc.matches } else { sc.mismatch }
            + ins_run(sc, n - 1 - k);
        if v > best {
            best = v;
            best_k = Some(k);
        }
    }
    match best_k {
        Some(k) => {
            for &c in &t[..k] {
                push(out_s, out_t, b'-', c);
            }
            push(out_s, out_t, s0, t[k]);
            for &c in &t[k + 1..] {
                push(out_s, out_t, b'-', c);
            }
        }
        None => {
            // Delete s0 flush against whichever border opens cheaper.
            if tb >= te {
                push(out_s, out_t, s0, b'-');
                for &c in t {
                    push(out_s, out_t, b'-', c);
                }
            } else {
                for &c in t {
                    push(out_s, out_t, b'-', c);
                }
                push(out_s, out_t, s0, b'-');
            }
        }
    }
}

/// Base case `|t| == 1` (with `|s| >= 2`): match `t[0]` against some
/// `s[k]` between two border-adjacent deletion runs, or insert it at the
/// placement that best merges the deletions with the borders.
fn base_single_t(
    s: &[u8],
    t0: u8,
    sc: &AffineScoring,
    tb: i32,
    te: i32,
    out_s: &mut Vec<u8>,
    out_t: &mut Vec<u8>,
) {
    let m = s.len();
    // Insertion placements: at the top (deletions form one te-opened run),
    // at the bottom (one tb-opened run), or in the middle (two runs, each
    // border-opened).
    let ins_top = ins_run(sc, 1) + del_run(sc, te, m);
    let ins_bot = del_run(sc, tb, m) + ins_run(sc, 1);
    let ins_mid = del_run(sc, tb, 1) + ins_run(sc, 1) + del_run(sc, te, m - 1);
    let mut best = ins_top.max(ins_bot).max(ins_mid);
    let mut best_k = None;
    for (k, &c) in s.iter().enumerate() {
        let v = del_run(sc, tb, k)
            + if c == t0 { sc.matches } else { sc.mismatch }
            + del_run(sc, te, m - 1 - k);
        if v > best {
            best = v;
            best_k = Some(k);
        }
    }
    match best_k {
        Some(k) => {
            for &c in &s[..k] {
                push(out_s, out_t, c, b'-');
            }
            push(out_s, out_t, s[k], t0);
            for &c in &s[k + 1..] {
                push(out_s, out_t, c, b'-');
            }
        }
        None => {
            let split = if best == ins_top {
                0
            } else if best == ins_bot {
                m
            } else {
                1
            };
            for &c in &s[..split] {
                push(out_s, out_t, c, b'-');
            }
            push(out_s, out_t, b'-', t0);
            for &c in &s[split..] {
                push(out_s, out_t, c, b'-');
            }
        }
    }
}

fn rec(
    s: &[u8],
    t: &[u8],
    sc: &AffineScoring,
    tb: i32,
    te: i32,
    out_s: &mut Vec<u8>,
    out_t: &mut Vec<u8>,
) {
    let (m, n) = (s.len(), t.len());
    if n == 0 {
        for &c in s {
            push(out_s, out_t, c, b'-');
        }
        return;
    }
    if m == 0 {
        for &c in t {
            push(out_s, out_t, b'-', c);
        }
        return;
    }
    if m == 1 {
        base_single_s(s[0], t, sc, tb, te, out_s, out_t);
        return;
    }
    if n == 1 {
        base_single_t(s, t[0], sc, tb, te, out_s, out_t);
        return;
    }
    let mid = m / 2;
    let (s_top, s_bot) = s.split_at(mid);
    let (cc, dd) = last_rows(s_top, t, sc, tb);
    let s_bot_rev = reversed(s_bot);
    let t_rev = reversed(t);
    let (rr, ss) = last_rows(&s_bot_rev, &t_rev, sc, te);

    // Best crossing column and type.
    let mut best = i64::MIN;
    let mut best_j = 0;
    let mut type2 = false;
    for j in 0..=n {
        let t1 = cc[j] as i64 + rr[n - j] as i64;
        if t1 > best {
            best = t1;
            best_j = j;
            type2 = false;
        }
        // A length-k run costs `gap_open + (k-1) * gap_extend`, i.e.
        // `g + h*k` with `g = gap_open - gap_extend`: the opening charged
        // twice (once by each half) and refunded here is `g`, not
        // `gap_open` itself.
        let t2 = dd[j] as i64 + ss[n - j] as i64 - (sc.gap_open - sc.gap_extend) as i64;
        if t2 > best {
            best = t2;
            best_j = j;
            type2 = true;
        }
    }

    if !type2 {
        rec(s_top, &t[..best_j], sc, tb, sc.gap_open, out_s, out_t);
        rec(s_bot, &t[best_j..], sc, sc.gap_open, te, out_s, out_t);
    } else {
        // One vertical gap run spans rows mid-1..=mid (0-based s indices
        // mid-1 and mid are both deleted inside it). Force those two
        // columns and recurse on the trimmed halves, telling each half (via
        // a `gap_extend` border opening) that a deletion flush against the
        // seam continues this run rather than opening a new one.
        rec(
            &s[..mid - 1],
            &t[..best_j],
            sc,
            tb,
            sc.gap_extend,
            out_s,
            out_t,
        );
        push(out_s, out_t, s[mid - 1], b'-');
        push(out_s, out_t, s[mid], b'-');
        rec(
            &s[mid + 1..],
            &t[best_j..],
            sc,
            sc.gap_extend,
            te,
            out_s,
            out_t,
        );
    }
}

/// Computes the global affine-gap alignment of `s` and `t` in linear
/// space. Scores exactly match [`crate::affine::nw_affine_align`].
pub fn myers_miller_align(s: &[u8], t: &[u8], sc: &AffineScoring) -> GlobalAlignment {
    let mut aligned_s = Vec::with_capacity(s.len() + 8);
    let mut aligned_t = Vec::with_capacity(t.len() + 8);
    rec(
        s,
        t,
        sc,
        sc.gap_open,
        sc.gap_open,
        &mut aligned_s,
        &mut aligned_t,
    );
    let score = rescore_affine(&aligned_s, &aligned_t, sc);
    GlobalAlignment {
        aligned_s,
        aligned_t,
        score,
    }
}

/// Recomputes an affine score from rendered rows (gap runs charged
/// open + extends). Public for tests and tooling.
pub fn rescore_affine(aligned_s: &[u8], aligned_t: &[u8], sc: &AffineScoring) -> i32 {
    let mut score = 0;
    let mut in_gap_s = false;
    let mut in_gap_t = false;
    for (&a, &b) in aligned_s.iter().zip(aligned_t) {
        if a == b'-' {
            score += if in_gap_s { sc.gap_extend } else { sc.gap_open };
            in_gap_s = true;
            in_gap_t = false;
        } else if b == b'-' {
            score += if in_gap_t { sc.gap_extend } else { sc.gap_open };
            in_gap_t = true;
            in_gap_s = false;
        } else {
            score += if a == b { sc.matches } else { sc.mismatch };
            in_gap_s = false;
            in_gap_t = false;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::nw_affine_score;

    const AFF: AffineScoring = AffineScoring::dna();

    #[test]
    fn matches_gotoh_on_simple_cases() {
        for (s, t) in [
            (&b"GATTACA"[..], &b"GATTACA"[..]),
            (b"GATTACA", b"GACA"),
            (b"ACGTACGTACGT", b"ACGTACCGTACGT"),
            (b"AAAAAAAA", b"AA"),
            (b"ACGT", b"TGCA"),
        ] {
            let mm = myers_miller_align(s, t, &AFF);
            let oracle = nw_affine_score(s, t, &AFF);
            assert_eq!(mm.score, oracle, "s={s:?} t={t:?}");
        }
    }

    #[test]
    fn projections_reproduce_inputs() {
        let s = b"GGGACGTACGTTTT";
        let t = b"ACGTTACGATT";
        let g = myers_miller_align(s, t, &AFF);
        let ps: Vec<u8> = g.aligned_s.iter().copied().filter(|&c| c != b'-').collect();
        let pt: Vec<u8> = g.aligned_t.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(ps, s);
        assert_eq!(pt, t);
    }

    #[test]
    fn long_vertical_gap_crossing_the_midline() {
        // s has a long insertion exactly around its middle: the classic
        // type-2 case where naive Hirschberg double-charges the open.
        let s = b"ACGTACGTAAAAAAAAAAACGTACGT";
        let t = b"ACGTACGTCGTACGT";
        let mm = myers_miller_align(s, t, &AFF);
        assert_eq!(mm.score, nw_affine_score(s, t, &AFF));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(myers_miller_align(b"", b"", &AFF).columns(), 0);
        assert_eq!(
            myers_miller_align(b"", b"ACG", &AFF).score,
            nw_affine_score(b"", b"ACG", &AFF)
        );
        assert_eq!(
            myers_miller_align(b"ACG", b"", &AFF).score,
            nw_affine_score(b"ACG", b"", &AFF)
        );
        assert_eq!(
            myers_miller_align(b"A", b"G", &AFF).score,
            nw_affine_score(b"A", b"G", &AFF)
        );
    }

    #[test]
    fn pseudo_random_pairs_match_gotoh() {
        let mut x: u64 = 0xABCDEF0123456789;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..40 {
            let m = (next() % 60) as usize;
            let n = (next() % 60) as usize;
            let s: Vec<u8> = (0..m).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let t: Vec<u8> = (0..n).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let mm = myers_miller_align(&s, &t, &AFF);
            let oracle = nw_affine_score(&s, &t, &AFF);
            assert_eq!(
                mm.score,
                oracle,
                "trial {trial}: s={} t={}",
                String::from_utf8_lossy(&s),
                String::from_utf8_lossy(&t)
            );
            assert_eq!(mm.score, rescore_affine(&mm.aligned_s, &mm.aligned_t, &AFF));
        }
    }
}
