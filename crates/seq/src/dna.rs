//! The [`DnaSeq`] type: a validated, upper-case DNA sequence over `{A,C,G,T}`.
//!
//! Sequences are stored as plain ASCII bytes so the alignment kernels can
//! work on `&[u8]` slices without conversion. Validation happens once at
//! construction.

use std::fmt;
use std::ops::{Deref, Index};

/// The four DNA bases in ASCII, the only bytes a [`DnaSeq`] may contain.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Returns `true` if `b` is one of the four upper-case DNA bases.
#[inline]
pub fn is_base(b: u8) -> bool {
    matches!(b, b'A' | b'C' | b'G' | b'T')
}

/// Maps an upper-case IUPAC nucleotide code to a canonical concrete base:
/// the alphabetically first base in the code's ambiguity set (so `N` → `A`,
/// `Y` = C/T → `C`, …), with RNA `U` read as `T`. Concrete bases map to
/// themselves. Returns `None` for bytes outside the IUPAC alphabet.
///
/// The choice of representative is arbitrary but *fixed*, which is what
/// alignment reproducibility needs: every layer that admits ambiguity codes
/// must resolve them the same way, or identical inputs stop producing
/// identical scores.
#[inline]
pub fn iupac_to_base(b: u8) -> Option<u8> {
    match b {
        b'A' | b'C' | b'G' | b'T' => Some(b),
        b'U' => Some(b'T'), // RNA uracil
        b'R' | b'W' | b'M' | b'D' | b'H' | b'V' | b'N' => Some(b'A'),
        b'Y' | b'S' | b'B' => Some(b'C'),
        b'K' => Some(b'G'),
        _ => None,
    }
}

/// Returns the Watson-Crick complement of a base.
///
/// # Panics
/// Panics if `b` is not a valid base.
#[inline]
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        other => panic!("not a DNA base: 0x{other:02x}"),
    }
}

/// Maps a base to a dense index in `0..4` (A=0, C=1, G=2, T=3).
///
/// # Panics
/// Panics if `b` is not a valid base.
#[inline]
pub fn base_index(b: u8) -> usize {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        other => panic!("not a DNA base: 0x{other:02x}"),
    }
}

/// Error returned when constructing a [`DnaSeq`] from bytes that contain a
/// character outside `{A,C,G,T,a,c,g,t}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidBase {
    /// Byte offset of the first offending character.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl fmt::Display for InvalidBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid DNA base 0x{:02x} at position {}",
            self.byte, self.position
        )
    }
}

impl std::error::Error for InvalidBase {}

/// A validated DNA sequence.
///
/// Dereferences to `&[u8]` so it can be passed directly to the alignment
/// kernels in `genomedsm-core`, which operate on byte slices.
///
/// ```
/// use genomedsm_seq::DnaSeq;
/// let s = DnaSeq::new("GACGGATTAG").unwrap();
/// assert_eq!(s.len(), 10);
/// assert_eq!(&s.as_bytes()[..3], b"GAC");
/// assert_eq!(s.reversed().to_string(), "GATTAGGCAG");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq(Vec<u8>);

impl DnaSeq {
    /// Builds a sequence from anything string-like, upper-casing as needed.
    pub fn new(s: impl AsRef<[u8]>) -> Result<Self, InvalidBase> {
        let raw = s.as_ref();
        let mut bytes = Vec::with_capacity(raw.len());
        for (position, &b) in raw.iter().enumerate() {
            let up = b.to_ascii_uppercase();
            if !is_base(up) {
                return Err(InvalidBase { position, byte: b });
            }
            bytes.push(up);
        }
        Ok(Self(bytes))
    }

    /// Wraps bytes that are already known to be valid upper-case bases.
    ///
    /// # Panics
    /// Panics in debug builds if a byte is not a valid base.
    pub fn from_bases(bytes: Vec<u8>) -> Self {
        debug_assert!(bytes.iter().all(|&b| is_base(b)), "invalid base");
        Self(bytes)
    }

    /// The empty sequence.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Sequence length in base pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence contains no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw base bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the sequence, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// The sequence read right-to-left (used by the Section-6 reverse
    /// algorithm in `genomedsm-core`).
    pub fn reversed(&self) -> Self {
        let mut v = self.0.clone();
        v.reverse();
        Self(v)
    }

    /// The reverse complement (read the opposite strand).
    pub fn reverse_complement(&self) -> Self {
        Self(self.0.iter().rev().map(|&b| complement(b)).collect())
    }

    /// A sub-sequence by half-open byte range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        Self(self.0[start..end].to_vec())
    }

    /// Fraction of positions where `self` and `other` carry the same base,
    /// over the shorter of the two lengths. Returns 1.0 for two empties.
    pub fn identity_with(&self, other: &Self) -> f64 {
        let n = self.len().min(other.len());
        if n == 0 {
            return 1.0;
        }
        let same = self.0[..n]
            .iter()
            .zip(&other.0[..n])
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / n as f64
    }

    /// Counts of A, C, G, T in that order.
    pub fn base_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for &b in &self.0 {
            counts[base_index(b)] += 1;
        }
        counts
    }

    /// GC content in `[0, 1]`; 0 for the empty sequence.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let c = self.base_counts();
        (c[1] + c[2]) as f64 / self.len() as f64
    }

    /// Appends another sequence.
    pub fn extend_from(&mut self, other: &Self) {
        self.0.extend_from_slice(&other.0);
    }

    /// Appends a single validated base.
    pub fn push(&mut self, base: u8) {
        assert!(is_base(base), "invalid base");
        self.0.push(base);
    }
}

impl Deref for DnaSeq {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Index<usize> for DnaSeq {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.0[i]
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Validated at construction, so this is always valid UTF-8.
        f.write_str(std::str::from_utf8(&self.0).expect("bases are ASCII"))
    }
}

impl fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 40 {
            write!(f, "DnaSeq({self})")
        } else {
            write!(
                f,
                "DnaSeq({}..{} [{} bp])",
                std::str::from_utf8(&self.0[..16]).expect("ASCII"),
                std::str::from_utf8(&self.0[self.len() - 16..]).expect("ASCII"),
                self.len()
            )
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = InvalidBase;
    fn from_str(s: &str) -> Result<Self, InvalidBase> {
        Self::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_and_uppercases() {
        let s = DnaSeq::new("acgT").unwrap();
        assert_eq!(s.as_bytes(), b"ACGT");
    }

    #[test]
    fn new_rejects_invalid() {
        let err = DnaSeq::new("ACGN").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'N');
    }

    #[test]
    fn iupac_covers_the_whole_alphabet_and_nothing_else() {
        for b in b"ACGT" {
            assert_eq!(iupac_to_base(*b), Some(*b));
        }
        assert_eq!(iupac_to_base(b'U'), Some(b'T'));
        for b in b"RWMDHVN" {
            assert_eq!(iupac_to_base(*b), Some(b'A'), "{}", *b as char);
        }
        for b in b"YSB" {
            assert_eq!(iupac_to_base(*b), Some(b'C'), "{}", *b as char);
        }
        assert_eq!(iupac_to_base(b'K'), Some(b'G'));
        for b in [b'X', b'Z', b'-', b'.', b'5', b' '] {
            assert_eq!(iupac_to_base(b), None, "{}", b as char);
        }
    }

    #[test]
    fn complement_is_involutive() {
        for &b in &BASES {
            assert_eq!(complement(complement(b)), b);
        }
    }

    #[test]
    #[should_panic(expected = "not a DNA base")]
    fn complement_panics_on_invalid() {
        complement(b'N');
    }

    #[test]
    fn reverse_complement_round_trips() {
        let s = DnaSeq::new("GACGGATTAG").unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reversed_reverses() {
        let s = DnaSeq::new("ACGT").unwrap();
        assert_eq!(s.reversed().as_bytes(), b"TGCA");
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn slice_extracts_range() {
        let s = DnaSeq::new("GACGGATTAG").unwrap();
        assert_eq!(s.slice(2, 5).as_bytes(), b"CGG");
    }

    #[test]
    fn identity_with_self_is_one() {
        let s = DnaSeq::new("GACGGATTAG").unwrap();
        assert!((s.identity_with(&s) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn identity_with_complement_strand() {
        let s = DnaSeq::new("AAAA").unwrap();
        let t = DnaSeq::new("TTTT").unwrap();
        assert_eq!(s.identity_with(&t), 0.0);
    }

    #[test]
    fn identity_of_empties_is_one() {
        assert_eq!(DnaSeq::empty().identity_with(&DnaSeq::empty()), 1.0);
    }

    #[test]
    fn base_counts_and_gc() {
        let s = DnaSeq::new("ACGTGC").unwrap();
        assert_eq!(s.base_counts(), [1, 2, 2, 1]);
        assert!((s.gc_content() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_round_trips() {
        let s = DnaSeq::new("GATTACA").unwrap();
        assert_eq!(s.to_string().parse::<DnaSeq>().unwrap(), s);
    }

    #[test]
    fn debug_abbreviates_long_sequences() {
        let s = DnaSeq::from_bases(vec![b'A'; 100]);
        let d = format!("{s:?}");
        assert!(d.contains("100 bp"));
    }

    #[test]
    fn push_and_extend() {
        let mut s = DnaSeq::empty();
        s.push(b'A');
        let t = DnaSeq::new("CG").unwrap();
        s.extend_from(&t);
        assert_eq!(s.as_bytes(), b"ACG");
    }
}
