//! DNA sequence substrate for the GenomeDSM reproduction.
//!
//! The paper evaluates on real DNA sequences downloaded from NCBI
//! (15 kBP to 400 kBP chromosomes and two 50 kBP mitochondrial genomes).
//! Those exact files are not redistributable here, so this crate builds the
//! closest synthetic equivalent: seeded random DNA with *planted* homologous
//! regions produced by a point-mutation + indel model. Planting gives ground
//! truth (we know where the similar regions are), which the paper's own
//! description calibrates: roughly 2000 similar regions of ~300 bp in a
//! 400 kBP pair, and 123 regions in the 50 kBP mitochondrial pair.
//!
//! Modules:
//! * [`dna`] — the [`DnaSeq`] sequence type and base utilities.
//! * [`protein`] — the [`ProteinSeq`] type over the 24-letter amino-acid
//!   alphabet used by the substitution matrices.
//! * [`generate`] — seeded random sequences and planted-homology pairs.
//! * [`mod@mutate`] — the mutation model used while planting.
//! * [`fasta`] — minimal FASTA reading/writing (DNA and protein).

#![warn(missing_docs)]

pub mod dna;
pub mod fasta;
pub mod generate;
pub mod mutate;
pub mod protein;

pub use dna::DnaSeq;
pub use fasta::{FastaRecord, ProteinRecord};
pub use generate::{planted_pair, random_dna, random_protein, HomologyPlan, PlantedRegion};
pub use mutate::{mutate, MutationProfile};
pub use protein::ProteinSeq;
