//! Mutation model used to derive one homologous region from another.
//!
//! When planting similar regions ([`crate::generate::planted_pair`]) we copy
//! a stretch of sequence `s` into sequence `t` after passing it through this
//! model: point substitutions, short insertions, and short deletions, each
//! with configurable rates. The result is a pair of regions whose similarity
//! is high enough for Smith-Waterman (and the BlastN baseline) to find, but
//! noisy enough to exercise gap handling.

use crate::dna::{DnaSeq, BASES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-base mutation rates applied when copying a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationProfile {
    /// Probability that a base is substituted by a different base.
    pub substitution: f64,
    /// Probability that an insertion starts before a base.
    pub insertion: f64,
    /// Probability that a base is deleted.
    pub deletion: f64,
    /// Maximum length of a single insertion/deletion event (>= 1).
    pub max_indel_len: usize,
}

impl MutationProfile {
    /// A profile giving roughly 90% identity: the regime of the "similar
    /// regions" the paper's Fig. 2 describes.
    pub fn similar() -> Self {
        Self {
            substitution: 0.06,
            insertion: 0.01,
            deletion: 0.01,
            max_indel_len: 3,
        }
    }

    /// A noisier profile (~75-80% identity), near the detection limit of
    /// the heuristic open/close thresholds.
    pub fn divergent() -> Self {
        Self {
            substitution: 0.15,
            insertion: 0.03,
            deletion: 0.03,
            max_indel_len: 4,
        }
    }

    /// No mutation at all: the copy is exact.
    pub fn identical() -> Self {
        Self {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
            max_indel_len: 1,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.substitution)
                && (0.0..=1.0).contains(&self.insertion)
                && (0.0..=1.0).contains(&self.deletion),
            "mutation rates must be probabilities"
        );
        assert!(self.max_indel_len >= 1, "max_indel_len must be >= 1");
    }
}

/// Applies the mutation model to `seq` using the provided RNG.
pub fn mutate_with(seq: &DnaSeq, profile: &MutationProfile, rng: &mut impl Rng) -> DnaSeq {
    profile.validate();
    let mut out = Vec::with_capacity(seq.len() + seq.len() / 16);
    let mut i = 0;
    while i < seq.len() {
        if rng.gen_bool(profile.insertion) {
            let len = rng.gen_range(1..=profile.max_indel_len);
            for _ in 0..len {
                out.push(BASES[rng.gen_range(0..4usize)]);
            }
        }
        if rng.gen_bool(profile.deletion) {
            let len = rng.gen_range(1..=profile.max_indel_len);
            i += len; // skip (delete) up to `len` source bases
            continue;
        }
        let b = seq[i];
        if rng.gen_bool(profile.substitution) {
            // Pick uniformly among the three *other* bases.
            let mut nb = BASES[rng.gen_range(0..4usize)];
            while nb == b {
                nb = BASES[rng.gen_range(0..4usize)];
            }
            out.push(nb);
        } else {
            out.push(b);
        }
        i += 1;
    }
    DnaSeq::from_bases(out)
}

/// Applies the mutation model with a sequence-derived deterministic seed.
pub fn mutate(seq: &DnaSeq, profile: &MutationProfile, seed: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    mutate_with(seq, profile, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_dna;

    #[test]
    fn identical_profile_copies_exactly() {
        let s = random_dna(500, 1);
        let m = mutate(&s, &MutationProfile::identical(), 7);
        assert_eq!(m, s);
    }

    #[test]
    fn mutate_is_deterministic_per_seed() {
        let s = random_dna(300, 2);
        let a = mutate(&s, &MutationProfile::similar(), 9);
        let b = mutate(&s, &MutationProfile::similar(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let s = random_dna(300, 2);
        let a = mutate(&s, &MutationProfile::similar(), 9);
        let b = mutate(&s, &MutationProfile::similar(), 10);
        assert_ne!(a, b);
    }

    #[test]
    fn similar_profile_keeps_high_identity() {
        let s = random_dna(2000, 3);
        let m = mutate(&s, &MutationProfile::similar(), 11);
        // Ungapped identity is frame-sensitive (indels shift the frame), so
        // measure 8-mer containment instead: with ~90% base identity most
        // 8-mers of the original survive into the copy.
        let kmers = |x: &crate::dna::DnaSeq| -> std::collections::HashSet<Vec<u8>> {
            x.as_bytes().windows(8).map(|w| w.to_vec()).collect()
        };
        let (ks, km) = (kmers(&s), kmers(&m));
        let shared = ks.intersection(&km).count();
        let frac = shared as f64 / ks.len() as f64;
        assert!(frac > 0.4, "8-mer containment {frac} too low");
        assert!((m.len() as i64 - s.len() as i64).unsigned_abs() < 400);
    }

    #[test]
    fn substitution_only_preserves_length() {
        let s = random_dna(1000, 4);
        let p = MutationProfile {
            substitution: 0.5,
            insertion: 0.0,
            deletion: 0.0,
            max_indel_len: 1,
        };
        let m = mutate(&s, &p, 5);
        assert_eq!(m.len(), s.len());
        let id = s.identity_with(&m);
        assert!(id > 0.3 && id < 0.7, "identity {id} outside expectation");
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_rate_panics() {
        let s = random_dna(10, 1);
        let p = MutationProfile {
            substitution: 1.5,
            insertion: 0.0,
            deletion: 0.0,
            max_indel_len: 1,
        };
        let _ = mutate(&s, &p, 0);
    }
}
