//! Minimal FASTA reading and writing.
//!
//! The paper's workflow starts from FASTA files downloaded from NCBI. This
//! module lets the examples and the harness save the synthetic genomes to
//! disk and read them back, so runs can be repeated on fixed inputs.

use crate::dna::DnaSeq;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// One FASTA record: a header line (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Text after `>` on the header line.
    pub id: String,
    /// The sequence body.
    pub seq: DnaSeq,
}

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A sequence line contained a non-DNA character.
    InvalidBase {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::InvalidBase { line, byte } => {
                write!(f, "line {line}: invalid base 0x{byte:02x}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parses all records from a FASTA reader.
///
/// Blank lines are ignored; sequence lines may be wrapped at any width.
pub fn read_fasta(reader: impl BufRead) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some((id, bytes)) = current.take() {
                records.push(FastaRecord {
                    id,
                    seq: DnaSeq::from_bases(bytes),
                });
            }
            current = Some((header.trim().to_string(), Vec::new()));
        } else {
            let (_, bytes) = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no })?;
            for &b in line.as_bytes() {
                let up = b.to_ascii_uppercase();
                if !crate::dna::is_base(up) {
                    return Err(FastaError::InvalidBase {
                        line: line_no,
                        byte: b,
                    });
                }
                bytes.push(up);
            }
        }
    }
    if let Some((id, bytes)) = current {
        records.push(FastaRecord {
            id,
            seq: DnaSeq::from_bases(bytes),
        });
    }
    Ok(records)
}

/// Reads all records from a FASTA file on disk.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<FastaRecord>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_fasta(io::BufReader::new(file))
}

/// Writes records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta(
    mut writer: impl Write,
    records: &[FastaRecord],
    width: usize,
) -> io::Result<()> {
    let width = width.max(1);
    for rec in records {
        writeln!(writer, ">{}", rec.id)?;
        for chunk in rec.seq.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Writes records to a FASTA file on disk (70-column wrapping).
pub fn write_fasta_file(path: impl AsRef<Path>, records: &[FastaRecord]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_fasta(io::BufWriter::new(file), records, 70)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_dna;

    #[test]
    fn round_trip_single_record() {
        let rec = FastaRecord {
            id: "chr1 test".into(),
            seq: random_dna(500, 1),
        };
        let mut buf = Vec::new();
        write_fasta(&mut buf, std::slice::from_ref(&rec), 60).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn round_trip_multiple_records() {
        let recs = vec![
            FastaRecord {
                id: "a".into(),
                seq: random_dna(10, 1),
            },
            FastaRecord {
                id: "b".into(),
                seq: random_dna(200, 2),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 7).unwrap();
        assert_eq!(read_fasta(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn parses_wrapped_and_blank_lines() {
        let text = ">x\nACG\n\nT\n>y desc\nGG\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].id, "y desc");
    }

    #[test]
    fn lowercase_input_uppercased() {
        let recs = read_fasta(">x\nacgt\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
    }

    #[test]
    fn rejects_headerless_sequence() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn rejects_invalid_base() {
        let err = read_fasta(">x\nACGN\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidBase {
                line: 2,
                byte: b'N'
            }
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("genomedsm_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fa");
        let recs = vec![FastaRecord {
            id: "g".into(),
            seq: random_dna(1000, 3),
        }];
        write_fasta_file(&path, &recs).unwrap();
        assert_eq!(read_fasta_file(&path).unwrap(), recs);
        std::fs::remove_file(&path).ok();
    }
}
