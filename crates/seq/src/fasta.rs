//! Minimal FASTA reading and writing.
//!
//! The paper's workflow starts from FASTA files downloaded from NCBI. This
//! module lets the examples and the harness save the synthetic genomes to
//! disk and read them back, so runs can be repeated on fixed inputs.

use crate::dna::DnaSeq;
use crate::protein::ProteinSeq;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// One FASTA record: a header line (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Text after `>` on the header line.
    pub id: String,
    /// The sequence body.
    pub seq: DnaSeq,
}

/// One protein FASTA record: a header line (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProteinRecord {
    /// Text after `>` on the header line.
    pub id: String,
    /// The amino-acid sequence body.
    pub seq: ProteinSeq,
}

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A sequence line contained a character outside the IUPAC alphabet.
    InvalidBase {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A protein sequence line contained a character outside the IUPAC
    /// amino-acid alphabet. Distinct from [`FastaError::InvalidBase`] so
    /// callers can tell "protein file fed to the DNA reader" (typically
    /// `InvalidBase` on `E`, `Q`, …) apart from genuinely malformed
    /// protein input.
    InvalidResidue {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A header had no sequence lines before the next header or EOF.
    EmptyRecord {
        /// 1-based line number of the offending header.
        line: usize,
        /// The record's id (header text).
        id: String,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::InvalidBase { line, byte } => {
                write!(f, "line {line}: invalid base 0x{byte:02x}")
            }
            FastaError::InvalidResidue { line, byte } => {
                write!(f, "line {line}: invalid amino-acid residue 0x{byte:02x}")
            }
            FastaError::EmptyRecord { line, id } => {
                write!(f, "line {line}: record `{id}` has an empty sequence")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parses all records from a FASTA reader.
///
/// Blank lines are ignored; sequence lines may be wrapped at any width and
/// may end in CRLF. Bases may be lower-case, and IUPAC ambiguity codes
/// (`N`, `R`, `Y`, …, plus RNA `U`) are resolved to their canonical
/// concrete base via [`crate::dna::iupac_to_base`] — the mapping is fixed,
/// so the same file always yields the same sequences. Records with an empty
/// sequence body are rejected ([`FastaError::EmptyRecord`]): downstream
/// database layers index records by id, and a silent zero-length entry is
/// almost always a truncated or malformed file.
pub fn read_fasta(reader: impl BufRead) -> Result<Vec<FastaRecord>, FastaError> {
    let raw = read_records(
        reader,
        |b| crate::dna::iupac_to_base(b.to_ascii_uppercase()),
        |line, byte| FastaError::InvalidBase { line, byte },
    )?;
    Ok(raw
        .into_iter()
        .map(|(id, bytes)| FastaRecord {
            id,
            seq: DnaSeq::from_bases(bytes),
        })
        .collect())
}

/// Parses all records from a protein FASTA reader.
///
/// Line structure matches [`read_fasta`] (wrapped lines, blank lines, CRLF,
/// empty records rejected), but the alphabet is the full IUPAC amino-acid
/// set: the 20 standard residues, `B`/`Z` ambiguity codes, unknown `X`, the
/// stop `*`, and the fold-to-scored letters `U` → `C`, `J` → `L`, `O` → `K`
/// ([`crate::protein::canonicalize_residue`]). Bytes outside that set —
/// including DNA-only ambiguity codes' *targets* like `-` gaps — raise
/// [`FastaError::InvalidResidue`]; the DNA ambiguity mapping is never
/// applied to protein records.
pub fn read_protein_fasta(reader: impl BufRead) -> Result<Vec<ProteinRecord>, FastaError> {
    let raw = read_records(
        reader,
        crate::protein::canonicalize_residue,
        |line, byte| FastaError::InvalidResidue { line, byte },
    )?;
    Ok(raw
        .into_iter()
        .map(|(id, bytes)| ProteinRecord {
            id,
            seq: ProteinSeq::from_residues(bytes),
        })
        .collect())
}

/// The shared FASTA line discipline behind [`read_fasta`] and
/// [`read_protein_fasta`]: header/sequence structure, blank-line and CRLF
/// handling, and empty-record rejection. `map` canonicalizes one sequence
/// byte (`None` = invalid, reported via `invalid`).
fn read_records(
    reader: impl BufRead,
    map: impl Fn(u8) -> Option<u8>,
    invalid: impl Fn(usize, u8) -> FastaError,
) -> Result<Vec<(String, Vec<u8>)>, FastaError> {
    let mut records: Vec<(String, Vec<u8>)> = Vec::new();
    // (id, sequence bytes so far, 1-based header line number)
    let mut current: Option<(String, Vec<u8>, usize)> = None;
    let mut finish = |current: &mut Option<(String, Vec<u8>, usize)>| -> Result<(), FastaError> {
        if let Some((id, bytes, header_line)) = current.take() {
            if bytes.is_empty() {
                return Err(FastaError::EmptyRecord {
                    line: header_line,
                    id,
                });
            }
            records.push((id, bytes));
        }
        Ok(())
    };
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        // `lines()` strips `\n`; trimming the remainder handles CRLF files
        // and stray trailing whitespace.
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            finish(&mut current)?;
            current = Some((header.trim().to_string(), Vec::new(), line_no));
        } else {
            let (_, bytes, _) = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no })?;
            for &b in line.as_bytes() {
                match map(b) {
                    Some(mapped) => bytes.push(mapped),
                    None => return Err(invalid(line_no, b)),
                }
            }
        }
    }
    finish(&mut current)?;
    Ok(records)
}

/// Reads all records from a FASTA file on disk.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<FastaRecord>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_fasta(io::BufReader::new(file))
}

/// Reads all records from a protein FASTA file on disk.
pub fn read_protein_fasta_file(path: impl AsRef<Path>) -> Result<Vec<ProteinRecord>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_protein_fasta(io::BufReader::new(file))
}

/// Writes `(id, sequence-bytes)` pairs in FASTA format at `width` columns.
fn write_records<'a>(
    mut writer: impl Write,
    records: impl Iterator<Item = (&'a str, &'a [u8])>,
    width: usize,
) -> io::Result<()> {
    let width = width.max(1);
    for (id, seq) in records {
        writeln!(writer, ">{id}")?;
        for chunk in seq.chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Writes records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta(writer: impl Write, records: &[FastaRecord], width: usize) -> io::Result<()> {
    write_records(
        writer,
        records.iter().map(|r| (r.id.as_str(), r.seq.as_bytes())),
        width,
    )
}

/// Writes records to a FASTA file on disk (70-column wrapping).
pub fn write_fasta_file(path: impl AsRef<Path>, records: &[FastaRecord]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_fasta(io::BufWriter::new(file), records, 70)
}

/// Writes protein records in FASTA format, wrapping at `width` columns.
pub fn write_protein_fasta(
    writer: impl Write,
    records: &[ProteinRecord],
    width: usize,
) -> io::Result<()> {
    write_records(
        writer,
        records.iter().map(|r| (r.id.as_str(), r.seq.as_bytes())),
        width,
    )
}

/// Writes protein records to a FASTA file on disk (70-column wrapping).
pub fn write_protein_fasta_file(
    path: impl AsRef<Path>,
    records: &[ProteinRecord],
) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_protein_fasta(io::BufWriter::new(file), records, 70)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_dna;

    #[test]
    fn round_trip_single_record() {
        let rec = FastaRecord {
            id: "chr1 test".into(),
            seq: random_dna(500, 1),
        };
        let mut buf = Vec::new();
        write_fasta(&mut buf, std::slice::from_ref(&rec), 60).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn round_trip_multiple_records() {
        let recs = vec![
            FastaRecord {
                id: "a".into(),
                seq: random_dna(10, 1),
            },
            FastaRecord {
                id: "b".into(),
                seq: random_dna(200, 2),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 7).unwrap();
        assert_eq!(read_fasta(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn parses_wrapped_and_blank_lines() {
        let text = ">x\nACG\n\nT\n>y desc\nGG\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].id, "y desc");
    }

    #[test]
    fn lowercase_input_uppercased() {
        let recs = read_fasta(">x\nacgt\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
    }

    #[test]
    fn rejects_headerless_sequence() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn rejects_invalid_base() {
        let err = read_fasta(">x\nACGX\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidBase {
                line: 2,
                byte: b'X'
            }
        ));
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let recs = read_fasta(">x desc\r\nACG\r\nT\r\n>y\r\nGG\r\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "x desc");
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].seq.as_bytes(), b"GG");
    }

    #[test]
    fn iupac_codes_resolve_to_fixed_representatives() {
        // Every ambiguity code maps to the alphabetically first base of its
        // set; U reads as T. Lower-case codes take the same path.
        let recs = read_fasta(">x\nNRYSWKMBDHVU\nnu\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"AACCAGACAAATAT");
        // Determinism: re-parsing yields byte-identical output.
        let again = read_fasta(">x\nNRYSWKMBDHVU\nnu\n".as_bytes()).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn rejects_empty_record_mid_file() {
        let err = read_fasta(">a\n>b\nACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { line: 1, ref id } if id == "a"
        ));
    }

    #[test]
    fn rejects_empty_record_at_eof() {
        let err = read_fasta(">a\nACGT\n>trailing\n\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { line: 3, ref id } if id == "trailing"
        ));
    }

    #[test]
    fn empty_input_is_zero_records() {
        assert_eq!(read_fasta("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn protein_round_trip() {
        let recs = vec![
            ProteinRecord {
                id: "p1 kinase".into(),
                seq: crate::generate::random_protein(300, 1),
            },
            ProteinRecord {
                id: "p2".into(),
                seq: ProteinSeq::new("WQHKRWCEWBZX*").unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_protein_fasta(&mut buf, &recs, 60).unwrap();
        assert_eq!(read_protein_fasta(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn protein_reader_accepts_full_iupac_and_folds() {
        // Lower-case input, wrapped lines, U/J/O folding, stop and X codes.
        let text = ">p\nmkwQ\nujoBZx*\n";
        let recs = read_protein_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"MKWQCLKBZX*");
    }

    #[test]
    fn protein_reader_rejects_non_residues_with_typed_error() {
        let err = read_protein_fasta(">p\nMKW-V\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidResidue {
                line: 2,
                byte: b'-'
            }
        ));
    }

    #[test]
    fn protein_records_never_take_the_dna_ambiguity_mapping() {
        // 'N' is asparagine in a protein record, not "any nucleotide";
        // 'U' folds to 'C' (selenocysteine), not to 'T' (RNA uracil).
        let recs = read_protein_fasta(">p\nNU\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"NC");
        // Conversely the same bytes through the DNA reader give DNA
        // semantics — proof the two alphabets stay separate.
        let dna = read_fasta(">p\nNU\n".as_bytes()).unwrap();
        assert_eq!(dna[0].seq.as_bytes(), b"AT");
        // And a protein-only residue is a typed error in the DNA reader.
        let err = read_fasta(">p\nEQ\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidBase {
                line: 2,
                byte: b'E'
            }
        ));
    }

    #[test]
    fn protein_reader_rejects_empty_record() {
        let err = read_protein_fasta(">a\n>b\nMKV\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { line: 1, ref id } if id == "a"
        ));
    }

    #[test]
    fn protein_file_round_trip() {
        let dir = std::env::temp_dir().join("genomedsm_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.fa");
        let recs = vec![ProteinRecord {
            id: "prot".into(),
            seq: crate::generate::random_protein(500, 9),
        }];
        write_protein_fasta_file(&path, &recs).unwrap();
        assert_eq!(read_protein_fasta_file(&path).unwrap(), recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("genomedsm_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fa");
        let recs = vec![FastaRecord {
            id: "g".into(),
            seq: random_dna(1000, 3),
        }];
        write_fasta_file(&path, &recs).unwrap();
        assert_eq!(read_fasta_file(&path).unwrap(), recs);
        std::fs::remove_file(&path).ok();
    }
}
