//! Minimal FASTA reading and writing.
//!
//! The paper's workflow starts from FASTA files downloaded from NCBI. This
//! module lets the examples and the harness save the synthetic genomes to
//! disk and read them back, so runs can be repeated on fixed inputs.

use crate::dna::DnaSeq;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// One FASTA record: a header line (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Text after `>` on the header line.
    pub id: String,
    /// The sequence body.
    pub seq: DnaSeq,
}

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A sequence line contained a character outside the IUPAC alphabet.
    InvalidBase {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A header had no sequence lines before the next header or EOF.
    EmptyRecord {
        /// 1-based line number of the offending header.
        line: usize,
        /// The record's id (header text).
        id: String,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::InvalidBase { line, byte } => {
                write!(f, "line {line}: invalid base 0x{byte:02x}")
            }
            FastaError::EmptyRecord { line, id } => {
                write!(f, "line {line}: record `{id}` has an empty sequence")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parses all records from a FASTA reader.
///
/// Blank lines are ignored; sequence lines may be wrapped at any width and
/// may end in CRLF. Bases may be lower-case, and IUPAC ambiguity codes
/// (`N`, `R`, `Y`, …, plus RNA `U`) are resolved to their canonical
/// concrete base via [`crate::dna::iupac_to_base`] — the mapping is fixed,
/// so the same file always yields the same sequences. Records with an empty
/// sequence body are rejected ([`FastaError::EmptyRecord`]): downstream
/// database layers index records by id, and a silent zero-length entry is
/// almost always a truncated or malformed file.
pub fn read_fasta(reader: impl BufRead) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    // (id, sequence bytes so far, 1-based header line number)
    let mut current: Option<(String, Vec<u8>, usize)> = None;
    let mut finish = |current: &mut Option<(String, Vec<u8>, usize)>| -> Result<(), FastaError> {
        if let Some((id, bytes, header_line)) = current.take() {
            if bytes.is_empty() {
                return Err(FastaError::EmptyRecord {
                    line: header_line,
                    id,
                });
            }
            records.push(FastaRecord {
                id,
                seq: DnaSeq::from_bases(bytes),
            });
        }
        Ok(())
    };
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        // `lines()` strips `\n`; trimming the remainder handles CRLF files
        // and stray trailing whitespace.
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            finish(&mut current)?;
            current = Some((header.trim().to_string(), Vec::new(), line_no));
        } else {
            let (_, bytes, _) = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no })?;
            for &b in line.as_bytes() {
                let mapped = crate::dna::iupac_to_base(b.to_ascii_uppercase());
                match mapped {
                    Some(base) => bytes.push(base),
                    None => {
                        return Err(FastaError::InvalidBase {
                            line: line_no,
                            byte: b,
                        })
                    }
                }
            }
        }
    }
    finish(&mut current)?;
    Ok(records)
}

/// Reads all records from a FASTA file on disk.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<FastaRecord>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_fasta(io::BufReader::new(file))
}

/// Writes records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta(
    mut writer: impl Write,
    records: &[FastaRecord],
    width: usize,
) -> io::Result<()> {
    let width = width.max(1);
    for rec in records {
        writeln!(writer, ">{}", rec.id)?;
        for chunk in rec.seq.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Writes records to a FASTA file on disk (70-column wrapping).
pub fn write_fasta_file(path: impl AsRef<Path>, records: &[FastaRecord]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_fasta(io::BufWriter::new(file), records, 70)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_dna;

    #[test]
    fn round_trip_single_record() {
        let rec = FastaRecord {
            id: "chr1 test".into(),
            seq: random_dna(500, 1),
        };
        let mut buf = Vec::new();
        write_fasta(&mut buf, std::slice::from_ref(&rec), 60).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn round_trip_multiple_records() {
        let recs = vec![
            FastaRecord {
                id: "a".into(),
                seq: random_dna(10, 1),
            },
            FastaRecord {
                id: "b".into(),
                seq: random_dna(200, 2),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 7).unwrap();
        assert_eq!(read_fasta(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn parses_wrapped_and_blank_lines() {
        let text = ">x\nACG\n\nT\n>y desc\nGG\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].id, "y desc");
    }

    #[test]
    fn lowercase_input_uppercased() {
        let recs = read_fasta(">x\nacgt\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
    }

    #[test]
    fn rejects_headerless_sequence() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn rejects_invalid_base() {
        let err = read_fasta(">x\nACGX\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidBase {
                line: 2,
                byte: b'X'
            }
        ));
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let recs = read_fasta(">x desc\r\nACG\r\nT\r\n>y\r\nGG\r\n".as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "x desc");
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].seq.as_bytes(), b"GG");
    }

    #[test]
    fn iupac_codes_resolve_to_fixed_representatives() {
        // Every ambiguity code maps to the alphabetically first base of its
        // set; U reads as T. Lower-case codes take the same path.
        let recs = read_fasta(">x\nNRYSWKMBDHVU\nnu\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.as_bytes(), b"AACCAGACAAATAT");
        // Determinism: re-parsing yields byte-identical output.
        let again = read_fasta(">x\nNRYSWKMBDHVU\nnu\n".as_bytes()).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn rejects_empty_record_mid_file() {
        let err = read_fasta(">a\n>b\nACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { line: 1, ref id } if id == "a"
        ));
    }

    #[test]
    fn rejects_empty_record_at_eof() {
        let err = read_fasta(">a\nACGT\n>trailing\n\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { line: 3, ref id } if id == "trailing"
        ));
    }

    #[test]
    fn empty_input_is_zero_records() {
        assert_eq!(read_fasta("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("genomedsm_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fa");
        let recs = vec![FastaRecord {
            id: "g".into(),
            seq: random_dna(1000, 3),
        }];
        write_fasta_file(&path, &recs).unwrap();
        assert_eq!(read_fasta_file(&path).unwrap(), recs);
        std::fs::remove_file(&path).ok();
    }
}
