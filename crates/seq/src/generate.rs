//! Seeded sequence generation, including pairs with *planted* homologous
//! regions.
//!
//! [`planted_pair`] is the workload generator behind every experiment in the
//! harness: it builds two random sequences and copies mutated stretches of
//! the first into the second, recording the ground-truth coordinates. The
//! region count and length distribution default to the statistics the paper
//! reports for its NCBI data (~2000 regions of ~300 bp in a 400 kBP pair,
//! 123 regions in the 50 kBP mitochondrial pair).

use crate::dna::{DnaSeq, BASES};
use crate::mutate::{mutate_with, MutationProfile};
use crate::protein::{ProteinSeq, STANDARD_RESIDUES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `len` random bases with a uniform base distribution.
pub fn random_dna(len: usize, seed: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    random_dna_with(len, &mut rng)
}

/// Generates `len` random bases from the provided RNG.
pub fn random_dna_with(len: usize, rng: &mut impl Rng) -> DnaSeq {
    let bytes = (0..len).map(|_| BASES[rng.gen_range(0..4usize)]).collect();
    DnaSeq::from_bases(bytes)
}

/// Generates `len` random residues uniform over the 20 standard amino
/// acids (no ambiguity codes, so scores against any matrix are unbiased by
/// the `X`/`B`/`Z` rows).
pub fn random_protein(len: usize, seed: u64) -> ProteinSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    random_protein_with(len, &mut rng)
}

/// Generates `len` random residues from the provided RNG.
pub fn random_protein_with(len: usize, rng: &mut impl Rng) -> ProteinSeq {
    let bytes = (0..len)
        .map(|_| STANDARD_RESIDUES[rng.gen_range(0..STANDARD_RESIDUES.len())])
        .collect();
    ProteinSeq::from_residues(bytes)
}

/// Ground-truth coordinates of one planted region (0-based, half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedRegion {
    /// Start of the source stretch in `s`.
    pub s_start: usize,
    /// End of the source stretch in `s`.
    pub s_end: usize,
    /// Start of the mutated copy in `t`.
    pub t_start: usize,
    /// End of the mutated copy in `t`.
    pub t_end: usize,
}

impl PlantedRegion {
    /// Length of the source stretch.
    pub fn s_len(&self) -> usize {
        self.s_end - self.s_start
    }

    /// Length of the mutated copy.
    pub fn t_len(&self) -> usize {
        self.t_end - self.t_start
    }
}

/// How many homologous regions to plant and what they look like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomologyPlan {
    /// Number of regions to plant.
    pub region_count: usize,
    /// Mean region length in base pairs.
    pub region_len_mean: usize,
    /// Half-width of the uniform length jitter around the mean.
    pub region_len_jitter: usize,
    /// Mutation model applied to each copied region.
    pub profile: MutationProfile,
}

impl HomologyPlan {
    /// The paper's region density: about one ~300 bp region per 200 bp x
    /// 200 bp of search space -- 2000 regions for a 400 kBP pair, scaled
    /// linearly with sequence length (minimum 1 region).
    ///
    /// For the 50 kBP "mitochondrial" pair the paper reports 123 similar
    /// regions with ~253 bp average subsequences; `paper_density(50_000)`
    /// lands in that regime.
    pub fn paper_density(seq_len: usize) -> Self {
        let region_count = (seq_len as f64 * (2000.0 / 400_000.0)).round() as usize;
        Self {
            region_count: region_count.max(1),
            region_len_mean: 300,
            region_len_jitter: 100,
            profile: MutationProfile::similar(),
        }
    }

    /// A plan with no planted homology (pure random pair).
    pub fn none() -> Self {
        Self {
            region_count: 0,
            region_len_mean: 0,
            region_len_jitter: 0,
            profile: MutationProfile::identical(),
        }
    }
}

/// Generates a pair of sequences of approximately `s_len` / `t_len` bases
/// with `plan.region_count` mutated copies of stretches of `s` planted into
/// `t` at random non-overlapping positions.
///
/// Returns `(s, t, regions)` where `regions` is sorted by `t_start`.
/// All randomness derives from `seed`, so workloads are reproducible.
pub fn planted_pair(
    s_len: usize,
    t_len: usize,
    plan: &HomologyPlan,
    seed: u64,
) -> (DnaSeq, DnaSeq, Vec<PlantedRegion>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = random_dna_with(s_len, &mut rng);
    let mut t = random_dna_with(t_len, &mut rng);

    if plan.region_count == 0 || s_len == 0 || t_len == 0 {
        return (s, t, Vec::new());
    }

    // Draw all region lengths up front, then distribute the leftover space
    // in `t` as random gaps between them. Reserving the space first means
    // the requested count is honoured whenever the regions fit at all,
    // independent of how the gap draws land.
    let mut regions = Vec::with_capacity(plan.region_count);
    let mut t_bytes = t.as_bytes().to_vec();
    let mut lens: Vec<usize> = (0..plan.region_count)
        .map(|_| {
            let len = if plan.region_len_jitter == 0 {
                plan.region_len_mean
            } else {
                rng.gen_range(
                    plan.region_len_mean.saturating_sub(plan.region_len_jitter)
                        ..=plan.region_len_mean + plan.region_len_jitter,
                )
            };
            len.clamp(1, s_len)
        })
        .collect();
    // Too many regions for t: plant as many as fit back to back.
    while lens.iter().sum::<usize>() > t_len {
        lens.pop();
    }

    let mut cursor = 0usize;
    for i in 0..lens.len() {
        let len = lens[i];
        let reserved: usize = lens[i + 1..].iter().sum();
        // Space we may spend on this gap while still fitting every
        // remaining region after it.
        let avail = (t_len - cursor).saturating_sub(len + reserved);
        let slots = lens.len() + 1 - i;
        let mean = avail / slots;
        let gap = if mean == 0 {
            0
        } else {
            rng.gen_range(0..=2 * mean).min(avail)
        };
        cursor += gap;
        let s_start = rng.gen_range(0..=s_len - len);
        let src = s.slice(s_start, s_start + len);
        let copy = mutate_with(&src, &plan.profile, &mut rng);
        let t_start = cursor;
        // Indels can make the copy a little longer than the reserved slot;
        // clamp so the regions still to come keep their space.
        let t_end = (t_start + copy.len()).min(t_len - reserved);
        let used = t_end - t_start;
        t_bytes[t_start..t_end].copy_from_slice(&copy.as_bytes()[..used]);
        regions.push(PlantedRegion {
            s_start,
            s_end: s_start + len,
            t_start,
            t_end,
        });
        cursor = t_end;
    }
    t = DnaSeq::from_bases(t_bytes);
    (s, t, regions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dna_is_deterministic() {
        assert_eq!(random_dna(100, 42), random_dna(100, 42));
        assert_ne!(random_dna(100, 42), random_dna(100, 43));
    }

    #[test]
    fn random_protein_is_deterministic_and_standard_only() {
        let p = random_protein(5_000, 11);
        assert_eq!(p, random_protein(5_000, 11));
        assert_ne!(p, random_protein(5_000, 12));
        assert!(p
            .as_bytes()
            .iter()
            .all(|b| crate::protein::STANDARD_RESIDUES.contains(b)));
        // Every standard residue shows up in a 5k draw.
        for r in crate::protein::STANDARD_RESIDUES {
            assert!(p.as_bytes().contains(&r), "{}", r as char);
        }
    }

    #[test]
    fn random_dna_has_roughly_uniform_bases() {
        let s = random_dna(40_000, 7);
        for &c in &s.base_counts() {
            assert!((9_000..11_000).contains(&c), "count {c} not near 10k");
        }
    }

    #[test]
    fn planted_pair_produces_requested_regions() {
        let plan = HomologyPlan {
            region_count: 10,
            region_len_mean: 200,
            region_len_jitter: 50,
            profile: MutationProfile::similar(),
        };
        let (s, t, regions) = planted_pair(20_000, 20_000, &plan, 1);
        assert_eq!(s.len(), 20_000);
        assert_eq!(t.len(), 20_000);
        assert_eq!(regions.len(), 10);
        // Regions are non-overlapping in t and sorted.
        for w in regions.windows(2) {
            assert!(w[0].t_end <= w[1].t_start);
        }
    }

    #[test]
    fn planted_regions_are_actually_similar() {
        let plan = HomologyPlan {
            region_count: 5,
            region_len_mean: 300,
            region_len_jitter: 0,
            profile: MutationProfile::identical(),
        };
        let (s, t, regions) = planted_pair(10_000, 10_000, &plan, 2);
        for r in &regions {
            let src = s.slice(r.s_start, r.s_end);
            let dst = t.slice(r.t_start, r.t_end);
            assert!(src.identity_with(&dst) > 0.99);
        }
    }

    #[test]
    fn zero_regions_gives_pure_random_pair() {
        let (_, _, regions) = planted_pair(1000, 1000, &HomologyPlan::none(), 3);
        assert!(regions.is_empty());
    }

    #[test]
    fn paper_density_scales_with_length() {
        assert_eq!(HomologyPlan::paper_density(400_000).region_count, 2000);
        let mito = HomologyPlan::paper_density(50_000).region_count;
        assert!((100..300).contains(&mito), "50k count {mito}");
        assert_eq!(HomologyPlan::paper_density(10).region_count, 1);
    }

    #[test]
    fn planted_pair_is_deterministic() {
        let plan = HomologyPlan::paper_density(5_000);
        let a = planted_pair(5_000, 5_000, &plan, 9);
        let b = planted_pair(5_000, 5_000, &plan, 9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn asymmetric_lengths_supported() {
        let plan = HomologyPlan {
            region_count: 3,
            region_len_mean: 100,
            region_len_jitter: 10,
            profile: MutationProfile::similar(),
        };
        let (s, t, regions) = planted_pair(2_000, 8_000, &plan, 4);
        assert_eq!(s.len(), 2_000);
        assert_eq!(t.len(), 8_000);
        for r in &regions {
            assert!(r.s_end <= s.len());
            assert!(r.t_end <= t.len());
        }
    }
}
