//! The [`ProteinSeq`] type: a validated amino-acid sequence over the
//! 24-letter NCBI alphabet `ARNDCQEGHILKMFPSTWYVBZX*`.
//!
//! Protein residues are stored as plain ASCII bytes, exactly like
//! [`crate::dna::DnaSeq`], so the affine-gap kernels in `genomedsm-core` /
//! `genomedsm-kernels` can score them without conversion. The alphabet here
//! is byte-for-byte the row/column order of the substitution matrices in
//! `genomedsm_core::submat` (`AA_ALPHABET`); the two crates keep independent
//! copies so `genomedsm-seq` stays dependency-free, and the kernels' test
//! suite pins the orders against each other.
//!
//! Canonicalization is fixed and lossless for scoring purposes: input is
//! upper-cased, and the three IUPAC letters without a matrix row are folded
//! to their closest scored residue — selenocysteine `U` → `C`,
//! leucine/isoleucine ambiguity `J` → `L`, pyrrolysine `O` → `K`. This is
//! the same folding `genomedsm_core::submat::aa_index` applies, so a
//! [`ProteinSeq`] and the raw input bytes always score identically; the
//! sequence type just makes the folding visible and validated up front.

use std::fmt;
use std::ops::{Deref, Index};

/// The 24 residue letters a [`ProteinSeq`] may contain, in the NCBI
/// substitution-matrix order: the 20 standard amino acids, the two
/// ambiguity codes `B` (Asx) and `Z` (Glx), the unknown residue `X`, and
/// the stop/terminator `*`.
pub const RESIDUES: [u8; 24] = *b"ARNDCQEGHILKMFPSTWYVBZX*";

/// The 20 standard amino acids (the prefix of [`RESIDUES`]); the sampling
/// alphabet for [`crate::generate::random_protein`].
pub const STANDARD_RESIDUES: [u8; 20] = *b"ARNDCQEGHILKMFPSTWYV";

/// Returns `true` if `b` is one of the 24 canonical residue letters.
#[inline]
pub fn is_residue(b: u8) -> bool {
    matches!(
        b,
        b'A' | b'R'
            | b'N'
            | b'D'
            | b'C'
            | b'Q'
            | b'E'
            | b'G'
            | b'H'
            | b'I'
            | b'L'
            | b'K'
            | b'M'
            | b'F'
            | b'P'
            | b'S'
            | b'T'
            | b'W'
            | b'Y'
            | b'V'
            | b'B'
            | b'Z'
            | b'X'
            | b'*'
    )
}

/// Maps one input byte to its canonical residue letter: upper-cases, folds
/// `U` → `C`, `J` → `L`, `O` → `K` (IUPAC letters with no matrix row), and
/// passes the 24 canonical letters through. Returns `None` for everything
/// else — in particular for gap characters, digits, and whitespace.
#[inline]
pub fn canonicalize_residue(b: u8) -> Option<u8> {
    let up = b.to_ascii_uppercase();
    match up {
        b'U' => Some(b'C'), // selenocysteine scores as cysteine
        b'J' => Some(b'L'), // Leu/Ile ambiguity scores as leucine
        b'O' => Some(b'K'), // pyrrolysine scores as lysine
        _ if is_residue(up) => Some(up),
        _ => None,
    }
}

/// Error returned when constructing a [`ProteinSeq`] from bytes containing
/// a character outside the IUPAC amino-acid alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidResidue {
    /// Byte offset of the first offending character.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl fmt::Display for InvalidResidue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid amino-acid residue 0x{:02x} at position {}",
            self.byte, self.position
        )
    }
}

impl std::error::Error for InvalidResidue {}

/// A validated protein sequence.
///
/// Dereferences to `&[u8]` so it can be passed directly to
/// `sw_score_profile` and the striped affine kernels.
///
/// ```
/// use genomedsm_seq::ProteinSeq;
/// let p = ProteinSeq::new("mkWqu").unwrap(); // folds U -> C
/// assert_eq!(p.as_bytes(), b"MKWQC");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ProteinSeq(Vec<u8>);

impl ProteinSeq {
    /// Builds a sequence from anything byte-like, canonicalizing each
    /// residue via [`canonicalize_residue`].
    pub fn new(s: impl AsRef<[u8]>) -> Result<Self, InvalidResidue> {
        let raw = s.as_ref();
        let mut bytes = Vec::with_capacity(raw.len());
        for (position, &b) in raw.iter().enumerate() {
            match canonicalize_residue(b) {
                Some(r) => bytes.push(r),
                None => return Err(InvalidResidue { position, byte: b }),
            }
        }
        Ok(Self(bytes))
    }

    /// Wraps bytes already known to be canonical residue letters.
    ///
    /// # Panics
    /// Panics in debug builds if a byte is not canonical.
    pub fn from_residues(bytes: Vec<u8>) -> Self {
        debug_assert!(bytes.iter().all(|&b| is_residue(b)), "invalid residue");
        Self(bytes)
    }

    /// The empty sequence.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence contains no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw residue bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the sequence, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// The sequence read right-to-left.
    pub fn reversed(&self) -> Self {
        let mut v = self.0.clone();
        v.reverse();
        Self(v)
    }

    /// A sub-sequence by half-open byte range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        Self(self.0[start..end].to_vec())
    }

    /// Appends another sequence.
    pub fn extend_from(&mut self, other: &Self) {
        self.0.extend_from_slice(&other.0);
    }

    /// Appends a single residue after canonicalizing it.
    ///
    /// # Panics
    /// Panics if the byte is not a valid residue.
    pub fn push(&mut self, residue: u8) {
        let r = canonicalize_residue(residue).expect("invalid residue");
        self.0.push(r);
    }
}

impl Deref for ProteinSeq {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Index<usize> for ProteinSeq {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.0[i]
    }
}

impl fmt::Display for ProteinSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Validated at construction, so this is always valid UTF-8.
        f.write_str(std::str::from_utf8(&self.0).expect("residues are ASCII"))
    }
}

impl fmt::Debug for ProteinSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 40 {
            write!(f, "ProteinSeq({self})")
        } else {
            write!(
                f,
                "ProteinSeq({}..{} [{} aa])",
                std::str::from_utf8(&self.0[..16]).expect("ASCII"),
                std::str::from_utf8(&self.0[self.len() - 16..]).expect("ASCII"),
                self.len()
            )
        }
    }
}

impl std::str::FromStr for ProteinSeq {
    type Err = InvalidResidue;
    fn from_str(s: &str) -> Result<Self, InvalidResidue> {
        Self::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_and_uppercases() {
        let p = ProteinSeq::new("mkwv").unwrap();
        assert_eq!(p.as_bytes(), b"MKWV");
    }

    #[test]
    fn full_iupac_alphabet_is_accepted() {
        // All 24 canonical letters plus the three folded ones, both cases.
        let all = "ARNDCQEGHILKMFPSTWYVBZX*UJO";
        let p = ProteinSeq::new(all).unwrap();
        assert_eq!(&p.as_bytes()[..24], &RESIDUES);
        assert_eq!(&p.as_bytes()[24..], b"CLK");
        let lower = ProteinSeq::new(all.to_ascii_lowercase()).unwrap();
        assert_eq!(lower, p);
    }

    #[test]
    fn folding_is_fixed() {
        assert_eq!(canonicalize_residue(b'U'), Some(b'C'));
        assert_eq!(canonicalize_residue(b'u'), Some(b'C'));
        assert_eq!(canonicalize_residue(b'J'), Some(b'L'));
        assert_eq!(canonicalize_residue(b'O'), Some(b'K'));
        assert_eq!(canonicalize_residue(b'*'), Some(b'*'));
        assert_eq!(canonicalize_residue(b'x'), Some(b'X'));
    }

    #[test]
    fn non_residues_are_rejected() {
        for b in [b'-', b'.', b'1', b' ', b'\t', 0u8, 0xff] {
            assert_eq!(canonicalize_residue(b), None, "0x{b:02x}");
        }
        let err = ProteinSeq::new("MKW-V").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'-');
    }

    #[test]
    fn residues_constant_is_self_consistent() {
        for &r in &RESIDUES {
            assert!(is_residue(r), "{}", r as char);
            assert_eq!(canonicalize_residue(r), Some(r), "{}", r as char);
        }
        assert_eq!(&RESIDUES[..20], &STANDARD_RESIDUES);
    }

    #[test]
    fn slice_reverse_push_extend() {
        let mut p = ProteinSeq::new("WQHKR").unwrap();
        assert_eq!(p.slice(1, 3).as_bytes(), b"QH");
        assert_eq!(p.reversed().as_bytes(), b"RKHQW");
        p.push(b'u'); // canonicalizes on push
        let tail = ProteinSeq::new("GA").unwrap();
        p.extend_from(&tail);
        assert_eq!(p.as_bytes(), b"WQHKRCGA");
    }

    #[test]
    fn display_round_trips() {
        let p = ProteinSeq::new("WQHKRWCEW").unwrap();
        assert_eq!(p.to_string().parse::<ProteinSeq>().unwrap(), p);
    }

    #[test]
    fn debug_abbreviates_long_sequences() {
        let p = ProteinSeq::from_residues(vec![b'K'; 100]);
        assert!(format!("{p:?}").contains("100 aa"));
    }
}
