//! Plain-text table rendering and CSV artifacts.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table that can also be saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience for building a row from display values.
    pub fn push<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let v: Vec<String> = cells.into_iter().collect();
        self.row(&v);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long_header"));
        assert!(r.contains('1'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn csv_round_trip_escaping() {
        let dir = std::env::temp_dir().join("genomedsm_bench_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world".into(), "q\"q".into()]);
        t.save_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"hello, world\""));
        assert!(text.contains("\"q\"\"q\""));
        std::fs::remove_file(&path).ok();
    }
}
