//! Shared machinery for the `paper` harness: workload generation, timing,
//! table rendering, and CSV artifacts.
//!
//! The binary `paper` (src/bin/paper.rs) regenerates every table and
//! figure of the paper's evaluation; see DESIGN.md's per-experiment index
//! for the mapping and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

#![warn(missing_docs)]

pub mod report;
pub mod workloads;

use std::path::PathBuf;

/// Harness options shared by all experiments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Divide the paper's sequence sizes by this factor (default 10; 1 =
    /// the paper's original sizes — expect hours for the big tables).
    pub scale: usize,
    /// Processor counts to sweep (default `[1, 2, 4, 8]`, the paper's).
    pub procs: Vec<usize>,
    /// Directory for CSV/SVG artifacts.
    pub out_dir: PathBuf,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 10,
            procs: vec![1, 2, 4, 8],
            out_dir: PathBuf::from("bench_out"),
        }
    }
}

impl HarnessArgs {
    /// Scales one of the paper's sequence sizes (at least 64 bp).
    pub fn size(&self, paper_bp: usize) -> usize {
        (paper_bp / self.scale.max(1)).max(64)
    }

    /// Ensures the artifact directory exists and returns a path inside it.
    pub fn artifact(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create out dir");
        self.out_dir.join(name)
    }
}

/// Formats a `Duration` in seconds with two decimals (the paper's tables
/// report seconds).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Speed-up of `serial` over `parallel` (the paper's absolute speed-up on
/// total execution times).
pub fn speedup(serial: std::time::Duration, parallel: std::time::Duration) -> f64 {
    serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn size_scaling() {
        let a = HarnessArgs::default();
        assert_eq!(a.size(50_000), 5_000);
        let full = HarnessArgs {
            scale: 1,
            ..Default::default()
        };
        assert_eq!(full.size(50_000), 50_000);
        assert_eq!(a.size(100), 64); // floor
    }

    #[test]
    fn speedup_math() {
        let s = speedup(Duration::from_secs(8), Duration::from_secs(2));
        assert!((s - 4.0).abs() < 1e-9);
    }
}
