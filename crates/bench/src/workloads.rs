//! Workload generation for the harness.
//!
//! All experiments run on planted-homology pairs at the paper's
//! "mitochondrial" density (123 similar regions of ~253 bp per 50 kBP),
//! seeded per size so runs are reproducible.

use genomedsm_seq::{planted_pair, DnaSeq, HomologyPlan, MutationProfile, PlantedRegion};

/// The standard harness plan for a sequence of `len` bp.
pub fn plan_for(len: usize) -> HomologyPlan {
    HomologyPlan {
        region_count: (123 * len / 50_000).max(2),
        region_len_mean: 253,
        region_len_jitter: 80,
        profile: MutationProfile::similar(),
    }
}

/// A reproducible planted pair of `len` bp sequences.
pub fn pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>, Vec<PlantedRegion>) {
    let (s, t, truth) = planted_pair(len, len, &plan_for(len), seed ^ len as u64);
    (s.into_bytes(), t.into_bytes(), truth)
}

/// Pairs of ~`mean` bp subsequences for the phase-2 experiments (Fig. 15:
/// the paper's average subsequence size is 253 bytes).
pub fn subsequence_pairs(count: usize, mean: usize, seed: u64) -> Vec<(DnaSeq, DnaSeq)> {
    let plan = HomologyPlan {
        region_count: 1,
        region_len_mean: mean,
        region_len_jitter: mean / 5,
        profile: MutationProfile::similar(),
    };
    (0..count)
        .map(|i| {
            let (s, t, regions) =
                planted_pair(mean * 2, mean * 2, &plan, seed.wrapping_add(i as u64));
            match regions.first() {
                Some(r) => (
                    s.slice(r.s_start, r.s_end),
                    t.slice(r.t_start, r.t_end.min(t.len())),
                ),
                None => (s, t),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_reproducible() {
        let a = pair(1000, 7);
        let b = pair(1000, 7);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn density_matches_paper() {
        // 50 kBP => 123 regions requested.
        assert_eq!(plan_for(50_000).region_count, 123);
    }

    #[test]
    fn subsequence_pairs_have_requested_stats() {
        let pairs = subsequence_pairs(50, 253, 3);
        assert_eq!(pairs.len(), 50);
        let avg: usize = pairs.iter().map(|(s, _)| s.len()).sum::<usize>() / 50;
        assert!((150..400).contains(&avg), "avg {avg}");
    }
}
