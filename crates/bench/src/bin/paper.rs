//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p genomedsm-bench --bin paper -- <experiment> [options]
//!
//! experiments:
//!   table1     heuristic-strategy total times (also prints Fig. 9 and Fig. 10)
//!   fig9       alias of table1 (speed-ups)
//!   fig10      alias of table1 (execution-time breakdown)
//!   table2     GenomeDSM vs BlastN best-alignment coordinates
//!   table3     blocking-multiplier sweep (50 kBP class, max procs)
//!   table4     blocked-strategy times and speed-ups (also Fig. 12, Fig. 13)
//!   fig12      alias of table4
//!   fig13      alias of table4 (blocked vs non-blocked at max procs)
//!   fig14      dot plot of the 50 kBP-class comparison (ASCII + SVG artifact)
//!   fig15      phase-2 speed-ups over subsequence-pair counts
//!   fig16      sample phase-2 global alignments
//!   fig18      pre-process strategy speed-ups (avg and best core times, also Fig. 19)
//!   fig19      alias of fig18 (blocking-option comparison)
//!   fig20      pre-process I/O-mode comparison
//!   section6   the Tables 5-7 worked example
//!   section6-area  measured vs theoretical useful area (Eqs. 2-3)
//!   hetero     heterogeneous-cluster what-if (the paper's §7 future work)
//!   ablation   design-choice ablations: ramped grids, network models
//!   kernels    vectorized-kernel GCUPS: scalar vs striped SSE2/AVX2 on a
//!              10k x 10k score-only workload
//!   batch      multi-query batch engine: aggregate GCUPS of a
//!              many-small-queries database search, lane-packed vs the
//!              per-pair kernel-launch baseline
//!   protein    protein subsystem: striped affine-gap (Gotoh) GCUPS under
//!              BLOSUM62 — per-pair and lane-packed, scalar vs SIMD, all
//!              bit-identical to the scalar oracle — plus the composition
//!              prefilter's pruning rate on a planted-homolog search
//!   serve      always-on alignment service: multi-client cold/warm
//!              sweep over a running server (cache hit rate, request
//!              throughput, bit-identical answers) plus a hot reload
//!              under load
//!   sockets    multi-process UDP sweep: the full strategy workload run
//!              as real OS processes over loopback datagram sockets at
//!              increasing injected drop rates, asserting bit-identical
//!              reports and recording datagram/retransmit counts
//!   chaos      reliability sweep: pre-process runs under 0-15% per-link
//!              drop (plus duplication/reordering and one node crash),
//!              recording retransmit counts and virtual-time overhead
//!   takeover   degradation sweep: every strategy run with 0-3 of the
//!              nodes fail-stopped mid-run, verifying exact-match
//!              results on the survivors and recording takeover counts
//!              and the virtual-time cost of each death
//!   rejoin     elastic-membership sweep: a 3-round campaign with k of
//!              the nodes killed in round 0 and readmitted at the next
//!              workload boundary, asserting every round bit-identical
//!              to the fault-free campaign and post-rejoin rounds
//!              faster than a permanently degraded N-k cluster
//!   summary    machine-checked repro gate: re-run the key claims and
//!              print PASS/FAIL per claim
//!   all        everything above
//!
//! options:
//!   --scale N      divide the paper's sequence sizes by N (default 10;
//!                  --scale 1 reproduces the original sizes — hours!)
//!   --procs LIST   comma-separated processor counts (default 1,2,4,8)
//!   --out DIR      artifact directory (default bench_out/)
//! ```

use genomedsm_bench::report::Table;
use genomedsm_bench::{secs, speedup, workloads, HarnessArgs};
use genomedsm_core::nw::render_region_alignment;
use genomedsm_core::reverse::{recover_start, reverse_align_all, theoretical_necessary_fraction};
use genomedsm_core::{HeuristicParams, LocalRegion, Scoring};
use genomedsm_dotplot::{ascii_plot, svg_plot, PlotSpec};
use genomedsm_dsm::breakdown_many;
use genomedsm_strategies::{
    heuristic_align_dsm, heuristic_block_align, phase2_scattered, preprocess_align, BandScheme,
    BlockedConfig, ChunkPlan, HeuristicDsmConfig, IoMode, Phase1Outcome, PreprocessConfig,
};
use std::time::Duration;

const SC: Scoring = Scoring::paper();

fn params() -> HeuristicParams {
    HeuristicParams::default_for_dna()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut args = HarnessArgs::default();
    let mut it = argv.iter().peekable();
    let mut positional_seen = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a positive integer");
            }
            "--procs" => {
                args.procs = it
                    .next()
                    .expect("--procs needs a list")
                    .split(',')
                    .map(|p| p.parse().expect("processor count"))
                    .collect();
            }
            "--out" => {
                args.out_dir = it.next().expect("--out needs a path").into();
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                return;
            }
            other if !positional_seen => {
                experiment = other.to_string();
                positional_seen = true;
            }
            other => panic!("unexpected argument: {other}"),
        }
    }
    assert!(!args.procs.is_empty(), "need at least one processor count");

    println!(
        "# paper harness: experiment={experiment} scale=1/{} procs={:?}\n",
        args.scale, args.procs
    );
    match experiment.as_str() {
        "table1" | "fig9" | "fig10" => table1_fig9_fig10(&args),
        "table2" => table2(&args),
        "table3" => table3(&args),
        "table4" | "fig12" | "fig13" => table4_fig12_fig13(&args),
        "fig14" => fig14(&args),
        "fig15" => fig15(&args),
        "fig16" => fig16(&args),
        "fig18" | "fig19" => fig18_fig19(&args),
        "fig20" => fig20(&args),
        "section6" => section6(&args),
        "section6-area" => section6_area(&args),
        "hetero" => hetero(&args),
        "ablation" => ablation(&args),
        "kernels" => kernels_bench(&args),
        "batch" => batch_bench(&args),
        "protein" => protein_bench(&args),
        "serve" => serve_bench(&args),
        "sockets" => sockets_bench(&args),
        "chaos" => chaos_sweep(&args),
        "takeover" => takeover_sweep(&args),
        "rejoin" => rejoin_sweep(&args),
        "summary" => summary(&args),
        "all" => {
            table1_fig9_fig10(&args);
            table2(&args);
            table3(&args);
            table4_fig12_fig13(&args);
            fig14(&args);
            fig15(&args);
            fig16(&args);
            fig18_fig19(&args);
            fig20(&args);
            section6(&args);
            section6_area(&args);
            hetero(&args);
            ablation(&args);
            kernels_bench(&args);
            batch_bench(&args);
            protein_bench(&args);
            serve_bench(&args);
            sockets_bench(&args);
            chaos_sweep(&args);
            takeover_sweep(&args);
            rejoin_sweep(&args);
        }
        other => {
            eprintln!("unknown experiment '{other}'\n{HELP}");
            std::process::exit(2);
        }
    }
}

const HELP: &str = "\
usage: paper <experiment> [--scale N] [--procs 1,2,4,8] [--out DIR]
experiments: table1 fig9 fig10 table2 table3 table4 fig12 fig13 fig14 fig15\n             fig16 fig18 fig19 fig20 section6 section6-area hetero ablation\n             kernels batch protein serve sockets chaos takeover rejoin\n             summary all\n";

/// The serial reference: a 1-node cluster run (virtual time = cells x
/// calibrated cell cost plus negligible self-messaging), which matches the
/// sequential program the paper compares against.
fn serial_heuristic(s: &[u8], t: &[u8]) -> (Duration, usize) {
    let out = heuristic_align_dsm(s, t, &SC, &params(), &HeuristicDsmConfig::new(1));
    (out.wall, out.regions.len())
}

// ---------------------------------------------------------------------
// Table 1 / Fig. 9 / Fig. 10 — heuristic strategy without blocking
// ---------------------------------------------------------------------

fn table1_fig9_fig10(args: &HarnessArgs) {
    let paper_sizes = [15_000usize, 50_000, 80_000, 150_000, 400_000];
    let mut header: Vec<String> = vec!["size (n x n)".into(), "serial".into()];
    for &p in args.procs.iter().filter(|&&p| p > 1) {
        header.push(format!("{p} proc"));
    }
    let mut t1 = Table::new(
        "Table 1: total execution times (s), heuristic strategy (no blocking)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut f9 = Table::new(
        "Fig. 9: absolute speed-ups, heuristic strategy",
        &header
            .iter()
            .map(|h| {
                if h == "serial" {
                    "serial (=1)"
                } else {
                    h.as_str()
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut f10 = Table::new(
        "Fig. 10: execution-time breakdown at max procs (%)",
        &["size", "computation", "communication", "lock+cv", "barrier"],
    );

    for paper_bp in paper_sizes {
        let len = args.size(paper_bp);
        let (s, t, _) = workloads::pair(len, 1);
        let (serial, serial_regions) = serial_heuristic(&s, &t);
        let mut row = vec![format!("{len}x{len}"), secs(serial)];
        let mut srow = vec![format!("{len}x{len}"), "1.00".into()];
        let mut last: Option<Phase1Outcome> = None;
        for &p in args.procs.iter().filter(|&&p| p > 1) {
            let out = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(p));
            assert_eq!(
                out.regions.len(),
                serial_regions,
                "parallel must match serial"
            );
            row.push(secs(out.wall));
            srow.push(format!("{:.2}", speedup(serial, out.wall)));
            last = Some(out);
        }
        t1.row(&row);
        f9.row(&srow);
        if let Some(out) = last {
            let b = breakdown_many(&out.per_node);
            f10.row(&[
                format!("{len}"),
                format!("{:.1}", b.computation * 100.0),
                format!("{:.1}", b.communication * 100.0),
                format!("{:.1}", b.lock_cv * 100.0),
                format!("{:.1}", b.barrier * 100.0),
            ]);
        }
        eprintln!("[table1] {len} done");
    }
    print!("{}", t1.render());
    println!();
    print!("{}", f9.render());
    println!();
    print!("{}", f10.render());
    println!();
    t1.save_csv(&args.artifact("table1.csv")).expect("csv");
    f9.save_csv(&args.artifact("fig9.csv")).expect("csv");
    f10.save_csv(&args.artifact("fig10.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Table 2 — GenomeDSM vs BlastN
// ---------------------------------------------------------------------

fn table2(args: &HarnessArgs) {
    let len = args.size(50_000);
    let (s, t, _) = workloads::pair(len, 2);
    let nprocs = *args.procs.iter().max().expect("procs");
    let dsm = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 40, 40));
    let blast = genomedsm_blast::BlastN::default()
        .search(&s, &t)
        .expect("clean DNA input");

    let mut best: Vec<&LocalRegion> = dsm.regions.iter().collect();
    best.sort_by_key(|r| -r.score);
    let mut tab = Table::new(
        "Table 2: GenomeDSM vs BlastN best-alignment coordinates",
        &["alignment", "", "GenomeDSM", "BlastN"],
    );
    for (rank, region) in best.iter().take(3).enumerate() {
        let near = blast.iter().find(|h| h.overlaps(region));
        let ((sb, tb), (se, te)) = region.paper_coords();
        let (bb, be) = match near {
            Some(h) => {
                let ((a, b), (c, d)) = h.paper_coords();
                (format!("({a},{b})"), format!("({c},{d})"))
            }
            None => ("-".into(), "-".into()),
        };
        tab.row(&[
            format!("Alignment {}", rank + 1),
            "begin".into(),
            format!("({sb},{tb})"),
            bb,
        ]);
        tab.row(&[String::new(), "end".into(), format!("({se},{te})"), be]);
    }
    print!("{}", tab.render());
    println!(
        "\nGenomeDSM regions: {}; BlastN HSPs: {} (close but not identical, as in the paper)\n",
        dsm.regions.len(),
        blast.len()
    );
    tab.save_csv(&args.artifact("table2.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Table 3 — blocking-multiplier sweep
// ---------------------------------------------------------------------

fn table3(args: &HarnessArgs) {
    let len = args.size(50_000);
    let (s, t, _) = workloads::pair(len, 3);
    let nprocs = *args.procs.iter().max().expect("procs");
    let mut tab = Table::new(
        &format!("Table 3: {nprocs}-proc times for varying blocking multipliers ({len} bp)"),
        &["blocking factor", "time (s)", "gain vs 1x1 (%)"],
    );
    let mut base: Option<Duration> = None;
    for mult in 1..=5usize {
        let config = BlockedConfig::from_multiplier(nprocs, mult, mult);
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        let gain = match base {
            None => {
                base = Some(out.wall);
                0.0
            }
            Some(b) => (b.as_secs_f64() / out.wall.as_secs_f64() - 1.0) * 100.0,
        };
        tab.row(&[
            format!("{mult} x {mult}"),
            secs(out.wall),
            format!("{gain:.0}"),
        ]);
        eprintln!("[table3] {mult}x{mult} done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("table3.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Table 4 / Fig. 12 / Fig. 13 — blocked strategy
// ---------------------------------------------------------------------

fn table4_fig12_fig13(args: &HarnessArgs) {
    // (paper size, bands, blocks) per Table 4.
    let setups = [(8_000usize, 40, 40), (15_000, 40, 40), (50_000, 40, 25)];
    let mut header: Vec<String> = vec!["size".into(), "bands".into(), "serial".into()];
    for &p in args.procs.iter().filter(|&&p| p > 1) {
        header.push(format!("{p}p time"));
        header.push(format!("{p}p spdup"));
    }
    let mut t4 = Table::new(
        "Table 4 / Fig. 12: blocked strategy times (s) and speed-ups",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut f13 = Table::new(
        "Fig. 13: blocked vs non-blocked at max procs (s)",
        &["size", "serial", "maxp blocked", "maxp non-blocked"],
    );
    let maxp = *args.procs.iter().max().expect("procs");
    for (paper_bp, bands, blocks) in setups {
        let len = args.size(paper_bp);
        let (s, t, _) = workloads::pair(len, 4);
        let serial = heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &BlockedConfig::new(1, bands, blocks),
        )
        .wall;
        let mut row = vec![format!("{len}"), format!("{bands}x{blocks}"), secs(serial)];
        let mut blocked_maxp = Duration::ZERO;
        for &p in args.procs.iter().filter(|&&p| p > 1) {
            let out = heuristic_block_align(
                &s,
                &t,
                &SC,
                &params(),
                &BlockedConfig::new(p, bands, blocks),
            );
            row.push(secs(out.wall));
            row.push(format!("{:.2}", speedup(serial, out.wall)));
            if p == maxp {
                blocked_maxp = out.wall;
            }
        }
        t4.row(&row);
        if paper_bp >= 15_000 {
            let noblock =
                heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(maxp));
            f13.row(&[
                format!("{len}"),
                secs(serial),
                secs(blocked_maxp),
                secs(noblock.wall),
            ]);
        }
        eprintln!("[table4] {len} done");
    }
    print!("{}", t4.render());
    println!();
    print!("{}", f13.render());
    println!();
    t4.save_csv(&args.artifact("table4.csv")).expect("csv");
    f13.save_csv(&args.artifact("fig13.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Fig. 14 — dot plot
// ---------------------------------------------------------------------

fn fig14(args: &HarnessArgs) {
    let len = args.size(50_000);
    let (s, t, _) = workloads::pair(len, 2);
    let nprocs = *args.procs.iter().max().expect("procs");
    let out = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 40, 40));
    println!(
        "== Fig. 14: dot plot of the {len} bp comparison ({} similar regions) ==",
        out.regions.len()
    );
    let spec = PlotSpec::new(s.len(), t.len());
    print!("{}", ascii_plot(&out.regions, &spec, 72, 28));
    let svg = svg_plot(&out.regions, &spec, 800, 800);
    let path = args.artifact("fig14.svg");
    std::fs::write(&path, svg).expect("write svg");
    // Zoom into the densest quadrant, like the paper's zoom feature.
    let zoom_spec = PlotSpec::new(s.len(), t.len()).zoom(0..len / 2, 0..len / 2);
    let zoom = svg_plot(&out.regions, &zoom_spec, 800, 800);
    let zpath = args.artifact("fig14_zoom.svg");
    std::fs::write(&zpath, zoom).expect("write svg");
    println!("wrote {} and {}\n", path.display(), zpath.display());
}

// ---------------------------------------------------------------------
// Fig. 15 — phase-2 speed-ups
// ---------------------------------------------------------------------

fn fig15(args: &HarnessArgs) {
    let counts = [100usize, 1000, 2000, 3000, 4000, 5000];
    let mut header: Vec<String> = vec!["pairs".into(), "serial (s)".into()];
    for &p in args.procs.iter().filter(|&&p| p > 1) {
        header.push(format!("{p}p spdup"));
    }
    let mut tab = Table::new(
        "Fig. 15: phase-2 speed-ups (global alignment of ~253 bp subsequence pairs)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for count in counts {
        // Build a concatenated pair of sequences plus one region per pair,
        // so phase 2 sees the same scattered work the paper describes.
        let pairs = workloads::subsequence_pairs(count, 253, 5);
        let mut s = Vec::new();
        let mut t = Vec::new();
        let mut regions = Vec::with_capacity(count);
        for (ps, pt) in &pairs {
            let r = LocalRegion {
                s_begin: s.len(),
                s_end: s.len() + ps.len(),
                t_begin: t.len(),
                t_end: t.len() + pt.len(),
                score: 0,
            };
            s.extend_from_slice(ps.as_bytes());
            t.extend_from_slice(pt.as_bytes());
            regions.push(r);
        }
        let serial = phase2_scattered(&s, &t, &regions, &SC, 1).unwrap();
        let mut row = vec![format!("{count}"), secs(serial.wall)];
        for &p in args.procs.iter().filter(|&&p| p > 1) {
            let out = phase2_scattered(&s, &t, &regions, &SC, p).unwrap();
            assert_eq!(out.alignments, serial.alignments);
            row.push(format!("{:.2}", speedup(serial.wall, out.wall)));
        }
        tab.row(&row);
        eprintln!("[fig15] {count} pairs done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("fig15.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Fig. 16 — sample phase-2 alignments
// ---------------------------------------------------------------------

fn fig16(args: &HarnessArgs) {
    let len = args.size(50_000).min(8_000);
    let (s, t, _) = workloads::pair(len, 2);
    let phase1 = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(4, 16, 16));
    let phase2 = phase2_scattered(&s, &t, &phase1.regions, &SC, 4).unwrap();
    println!("== Fig. 16: global alignments of two subsequences generated in phase 1 ==\n");
    for ra in phase2.alignments.iter().take(2) {
        println!("{}", render_region_alignment(ra));
    }
}

// ---------------------------------------------------------------------
// Fig. 18 / Fig. 19 — pre-process strategy
// ---------------------------------------------------------------------

fn preprocess_configs(args: &HarnessArgs, nprocs: usize) -> Vec<(String, PreprocessConfig)> {
    let b1k = args.size(1024); // "1K" blocks, scaled with the sizes
    let b4k = args.size(4096);
    let mk = |band: BandScheme, chunk: usize| {
        let mut c = PreprocessConfig::new(nprocs);
        c.band = band;
        c.chunk = ChunkPlan::Fixed(chunk);
        c.result_interleave = chunk;
        c.save_interleave = chunk;
        c.io_mode = IoMode::None;
        c
    };
    vec![
        (
            format!("Bal. {b1k} blks"),
            mk(BandScheme::Balanced(b1k), b1k),
        ),
        ("Equal blks".into(), mk(BandScheme::Equal, b1k)),
        (format!("{b1k} blks"), mk(BandScheme::Fixed(b1k), b1k)),
        (
            format!("Bal. {b4k} blks"),
            mk(BandScheme::Balanced(b4k), b4k),
        ),
        (format!("{b4k} blks"), mk(BandScheme::Fixed(b4k), b4k)),
    ]
}

fn fig18_fig19(args: &HarnessArgs) {
    let paper_sizes = [16_000usize, 40_000, 80_000];
    let mut f19 = Table::new(
        "Fig. 19: effect of blocking options on pre-process core times (s), no I/O",
        &["procs", "size", "config", "core (s)"],
    );
    // speeds[size][p] = (avg core, best core)
    let mut avg_core: Vec<Vec<(usize, Duration, Duration)>> = Vec::new();
    for &paper_bp in &paper_sizes {
        let len = args.size(paper_bp);
        let (s, t, _) = workloads::pair(len, 6);
        let mut per_proc = Vec::new();
        for &p in &args.procs {
            let mut cores = Vec::new();
            for (name, config) in preprocess_configs(args, p) {
                let out = preprocess_align(&s, &t, &SC, &config).unwrap();
                f19.row(&[
                    format!("{p}"),
                    format!("{len}"),
                    name,
                    secs(out.core_time()),
                ]);
                cores.push(out.core_time());
            }
            let avg = cores.iter().sum::<Duration>() / cores.len() as u32;
            let best = *cores.iter().min().expect("non-empty");
            per_proc.push((p, avg, best));
            eprintln!("[fig18] size {len} procs {p} done");
        }
        avg_core.push(per_proc);
    }

    let mut header: Vec<String> = vec!["size".into()];
    for &p in &args.procs {
        header.push(format!("{p}p avg-spdup"));
        header.push(format!("{p}p best-spdup"));
    }
    let mut f18 = Table::new(
        "Fig. 18: pre-process speed-ups on average and best core times",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (i, &paper_bp) in paper_sizes.iter().enumerate() {
        let len = args.size(paper_bp);
        let serial_avg = avg_core[i]
            .iter()
            .find(|(p, _, _)| *p == 1)
            .map(|(_, a, _)| *a)
            .unwrap_or_else(|| avg_core[i][0].1);
        let serial_best = avg_core[i]
            .iter()
            .find(|(p, _, _)| *p == 1)
            .map(|(_, _, b)| *b)
            .unwrap_or_else(|| avg_core[i][0].2);
        let mut row = vec![format!("{len}")];
        for &(p, avg, best) in &avg_core[i] {
            let _ = p;
            row.push(format!("{:.2}", speedup(serial_avg, avg)));
            row.push(format!("{:.2}", speedup(serial_best, best)));
        }
        f18.row(&row);
    }
    print!("{}", f18.render());
    println!();
    print!("{}", f19.render());
    println!();
    f18.save_csv(&args.artifact("fig18.csv")).expect("csv");
    f19.save_csv(&args.artifact("fig19.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Fig. 20 — I/O modes
// ---------------------------------------------------------------------

fn fig20(args: &HarnessArgs) {
    let paper_sizes = [16_000usize, 40_000, 80_000];
    let b1k = args.size(1024);
    let dir = args.artifact("fig20_columns");
    std::fs::create_dir_all(&dir).expect("column dir");
    let mut tab = Table::new(
        "Fig. 20: effect of I/O options on pre-process core times (s), 1K-class blocks",
        &["procs", "size", "no IO", "immediate IO", "deferred IO"],
    );
    for &p in &args.procs {
        for &paper_bp in &paper_sizes {
            let len = args.size(paper_bp);
            let (s, t, _) = workloads::pair(len, 7);
            let mut cells = vec![format!("{p}"), format!("{len}")];
            for mode in [IoMode::None, IoMode::Immediate, IoMode::Deferred] {
                let mut config = PreprocessConfig::new(p);
                config.band = BandScheme::Balanced(b1k);
                config.chunk = ChunkPlan::Fixed(b1k);
                config.result_interleave = b1k;
                config.save_interleave = b1k;
                config.io_mode = mode;
                if mode != IoMode::None {
                    config.save_dir = Some(dir.clone());
                }
                let out = preprocess_align(&s, &t, &SC, &config).unwrap();
                cells.push(secs(out.core_time()));
            }
            tab.row(&cells);
        }
        eprintln!("[fig20] procs {p} done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("fig20.csv")).expect("csv");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Section 6 — worked example and useful-area measurement
// ---------------------------------------------------------------------

fn section6(_args: &HarnessArgs) {
    let s = b"TCTCGACGGATTAGTATATATATA";
    let t = b"ATATGATCGGAATAGCTCT";
    println!("== Section 6 (Tables 5-7): worked example ==");
    println!("s = {}", std::str::from_utf8(s).unwrap());
    println!("t = {}", std::str::from_utf8(t).unwrap());
    let full = genomedsm_core::matrix::sw_matrix(s, t, &SC);
    let (ei, ej, best) = full.maximum();
    println!(
        "Table 5: best score {best} detected at positions ({ei}, {ej}) — paper: score 6 at (14, 15)"
    );
    let ((i0, j0), stats) = recover_start(s, t, &SC, ei, ej, best).expect("recoverable");
    println!(
        "Table 6/7: reverse DP recovers the start at ({}, {}) evaluating {} cells \
         (full reverse window {} cells — zero elimination skipped {:.0}%)",
        i0 + 1,
        j0 + 1,
        stats.evaluated_cells,
        ei * ej,
        (1.0 - stats.evaluated_cells as f64 / (ei * ej) as f64) * 100.0
    );
    for rec in reverse_align_all(s, t, &SC, best) {
        println!("\nrecovered alignment ({}):", rec.region);
        println!("{}", rec.alignment.pretty(60));
    }
}

fn section6_area(args: &HarnessArgs) {
    let mut tab = Table::new(
        "Section 6 (Eqs. 2-3): necessary area of the n' x n' reverse window",
        &["n'", "evaluated cells", "measured %", "theory %"],
    );
    for region_len in [100usize, 300, 1000, 3000] {
        let plan = genomedsm_seq::HomologyPlan {
            region_count: 1,
            region_len_mean: region_len,
            region_len_jitter: 0,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, _) =
            genomedsm_seq::planted_pair(region_len * 3, region_len * 3, &plan, region_len as u64);
        if let Some(rec) = genomedsm_core::reverse::reverse_align_best(&s, &t, &SC) {
            let n_prime = rec.region.s_len().max(rec.region.t_len());
            tab.row(&[
                format!("{n_prime}"),
                format!("{}", rec.stats.evaluated_cells),
                format!("{:.1}", rec.stats.evaluated_fraction() * 100.0),
                format!("{:.1}", theoretical_necessary_fraction(n_prime) * 100.0),
            ]);
        }
    }
    print!("{}", tab.render());
    println!("(paper: ~30% of the window is necessary in the worst case)\n");
    tab.save_csv(&args.artifact("section6_area.csv"))
        .expect("csv");
}

// ---------------------------------------------------------------------
// Heterogeneous cluster (the paper's §7 future work)
// ---------------------------------------------------------------------

fn hetero(args: &HarnessArgs) {
    let len = args.size(50_000);
    let (s, t, _) = workloads::pair(len, 8);
    let nprocs = *args.procs.iter().max().expect("procs");
    let profiles: Vec<(&str, Vec<f64>)> = vec![
        ("homogeneous", vec![1.0; nprocs]),
        (
            "half slow (0.5x)",
            (0..nprocs)
                .map(|i| if i >= nprocs / 2 { 0.5 } else { 1.0 })
                .collect(),
        ),
        (
            "one straggler (0.25x)",
            (0..nprocs)
                .map(|i| if i == nprocs - 1 { 0.25 } else { 1.0 })
                .collect(),
        ),
    ];
    let mut tab = Table::new(
        &format!("Heterogeneous cluster (§7): blocked strategy, {nprocs} nodes, {len} bp"),
        &["profile", "time (s)", "vs homogeneous"],
    );
    let mut base: Option<Duration> = None;
    for (name, speeds) in profiles {
        let mut config = BlockedConfig::new(nprocs, 40, 25);
        config.dsm = config.dsm.speeds(speeds);
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        let rel = match base {
            None => {
                base = Some(out.wall);
                1.0
            }
            Some(b) => out.wall.as_secs_f64() / b.as_secs_f64(),
        };
        tab.row(&[name.to_string(), secs(out.wall), format!("{rel:.2}x")]);
        eprintln!("[hetero] {name} done");
    }
    print!("{}", tab.render());
    println!(
        "(cyclic band assignment gives no rebalancing: the wavefront throttles to the\n slowest node, the §7 motivation for heterogeneity-aware scheduling)\n"
    );
    tab.save_csv(&args.artifact("hetero.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Ablations: ramped grids and network models
// ---------------------------------------------------------------------

fn ablation(args: &HarnessArgs) {
    let len = args.size(50_000);
    let (s, t, _) = workloads::pair(len, 9);
    let nprocs = *args.procs.iter().max().expect("procs");

    let mut ramp = Table::new(
        &format!("Ablation: uniform vs ramped grids (§4.3), {nprocs} procs, {len} bp"),
        &["grid", "uniform (s)", "ramped (s)", "gain (%)"],
    );
    for (bands, blocks) in [(nprocs, nprocs), (2 * nprocs, 2 * nprocs), (40, 25)] {
        let uni = heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &BlockedConfig::new(nprocs, bands, blocks),
        );
        let ram = heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &BlockedConfig::new(nprocs, bands, blocks).ramped(2),
        );
        assert_eq!(uni.regions, ram.regions);
        let gain = (uni.wall.as_secs_f64() / ram.wall.as_secs_f64() - 1.0) * 100.0;
        ramp.row(&[
            format!("{bands}x{blocks}"),
            secs(uni.wall),
            secs(ram.wall),
            format!("{gain:.0}"),
        ]);
        eprintln!("[ablation] ramp {bands}x{blocks} done");
    }
    print!("{}", ramp.render());
    println!();

    let mut net = Table::new(
        &format!("Ablation: network models, blocked 40x25, {nprocs} procs, {len} bp"),
        &["network", "time (s)", "speed-up vs serial"],
    );
    let serial = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(1, 40, 25)).wall;
    for (name, model) in [
        (
            "paper cluster (750us)",
            genomedsm_dsm::NetworkModel::paper_cluster(),
        ),
        (
            "fast ethernet (70us)",
            genomedsm_dsm::NetworkModel::fast_ethernet(),
        ),
        ("zero-cost", genomedsm_dsm::NetworkModel::zero()),
    ] {
        let mut config = BlockedConfig::new(nprocs, 40, 25);
        config.dsm = config.dsm.network(model);
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        net.row(&[
            name.to_string(),
            secs(out.wall),
            format!("{:.2}", speedup(serial, out.wall)),
        ]);
        eprintln!("[ablation] net {name} done");
    }
    print!("{}", net.render());
    println!();

    // JIAJIA's home-migration feature. The alignment strategies already
    // home their shared buffers on the writers, so the feature shows on
    // the classic migration-friendly pattern instead: an iterative
    // owner-computes kernel over a round-robin-homed array (each node
    // repeatedly rewrites its own block, ~ (P-1)/P of which starts
    // remote). With migration the single-writer pages move to their
    // writers after the first round and the diff traffic collapses.
    let mut mig = Table::new(
        &format!("Ablation: home migration (jia_config), owner-computes kernel, {nprocs} procs"),
        &["feature", "cluster time", "diffs", "migrations"],
    );
    for on in [false, true] {
        let config = genomedsm_dsm::DsmConfig::new(nprocs)
            .network(genomedsm_dsm::NetworkModel::paper_cluster())
            .home_migration(on);
        let run = genomedsm_dsm::DsmSystem::run(config, |node| {
            const ELEMS_PER_NODE: usize = 8 * 512; // 8 pages each
            let p = node.nprocs();
            let v = node.alloc_vec::<i64>(ELEMS_PER_NODE * p);
            node.barrier();
            for round in 0..20i64 {
                let base = node.id() * ELEMS_PER_NODE;
                for k in 0..ELEMS_PER_NODE {
                    node.vec_set(&v, base + k, round + k as i64);
                }
                node.advance(Duration::from_micros(500)); // modeled compute
                node.barrier();
            }
        });
        let mut agg = genomedsm_dsm::NodeStats::default();
        for s in &run.stats {
            agg.merge(s);
        }
        mig.row(&[
            if on {
                "migration ON"
            } else {
                "migration OFF (JIAJIA default)"
            }
            .to_string(),
            secs(agg.total),
            format!("{}", agg.diffs_sent),
            format!("{}", agg.migrations),
        ]);
        eprintln!("[ablation] migration {on} done");
    }
    print!("{}", mig.render());
    println!();
    ramp.save_csv(&args.artifact("ablation_ramp.csv"))
        .expect("csv");
    net.save_csv(&args.artifact("ablation_network.csv"))
        .expect("csv");
    mig.save_csv(&args.artifact("ablation_migration.csv"))
        .expect("csv");
}

// ---------------------------------------------------------------------
// Kernel layer: scalar vs striped SIMD GCUPS
// ---------------------------------------------------------------------

/// Best-of-3 host time of one score-only pass (threshold disabled via
/// `i32::MAX`, which turns off hit counting in every kernel).
fn time_kernel(kernel: &dyn genomedsm_kernels::ScoreKernel, s: &[u8], t: &[u8]) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(kernel.score(s, t, &SC, i32::MAX));
        best = best.min(t0.elapsed());
    }
    best
}

fn gcups(cells: f64, time: Duration) -> f64 {
    cells / time.as_secs_f64().max(1e-9) / 1e9
}

fn kernels_bench(args: &HarnessArgs) {
    let len = 10_000usize; // fixed: the kernel claim is host-hardware, not scale-dependent
    let (s, t, _) = workloads::pair(len, 31);
    let cells = (len * len) as f64;
    let mut tab = Table::new(
        "Kernel layer: single-thread score-only rates, 10k x 10k (host hardware)",
        &["kernel", "time (s)", "GCUPS", "speed-up vs scalar"],
    );
    let mut base: Option<Duration> = None;
    for kernel in genomedsm_kernels::available_kernels() {
        let time = time_kernel(kernel, &s, &t);
        let base = *base.get_or_insert(time); // first row is the scalar kernel
        tab.row(&[
            kernel.name().into(),
            secs(time),
            format!("{:.3}", gcups(cells, time)),
            format!("{:.2}", base.as_secs_f64() / time.as_secs_f64()),
        ]);
        eprintln!("[kernels] {} done", kernel.name());
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("kernels.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Batch engine: lane-packed database search vs per-pair kernel launches
// ---------------------------------------------------------------------

/// The many-small-queries workload the per-pair path handles worst:
/// every (query, record) pair pays a full kernel launch (profile build,
/// state allocation, mostly-idle lanes on a short query), while the
/// batch engine packs a different query per lane and reuses one packed
/// profile across a whole slab of records.
fn batch_workload(
    queries: usize,
    q_len: usize,
    records: usize,
    t_len: usize,
) -> (Vec<Vec<u8>>, genomedsm_batch::SeqDatabase) {
    let qs: Vec<Vec<u8>> = (0..queries)
        .map(|i| {
            genomedsm_seq::random_dna(q_len / 2 + (i * 13) % q_len, 9_000 + i as u64).into_bytes()
        })
        .collect();
    let db = genomedsm_batch::SeqDatabase::from_records(
        (0..records)
            .map(|i| genomedsm_seq::fasta::FastaRecord {
                id: format!("rec{i}"),
                seq: genomedsm_seq::random_dna(t_len / 2 + (i * 29) % t_len, 7_000 + i as u64),
            })
            .collect(),
    );
    (qs, db)
}

/// Per-pair baseline: one kernel launch per (query, record) pair, the
/// same top-k bookkeeping as the engine.
fn per_pair_search(
    choice: genomedsm_kernels::KernelChoice,
    refs: &[&[u8]],
    db: &genomedsm_batch::SeqDatabase,
    top_k: usize,
) -> Vec<Vec<genomedsm_batch::Hit>> {
    let kernel = genomedsm_kernels::kernel_for(choice);
    refs.iter()
        .map(|q| {
            let mut tk = genomedsm_batch::TopK::new(top_k);
            for t in 0..db.len() {
                let r = kernel.score(q, db.seq(t), &SC, 0);
                if r.best_score > 0 {
                    tk.push(genomedsm_batch::Hit {
                        score: r.best_score,
                        target: t,
                        end: r.best_end,
                    });
                }
            }
            tk.into_sorted()
        })
        .collect()
}

fn batch_bench(args: &HarnessArgs) {
    use genomedsm_batch::{BatchConfig, BatchEngine};
    use genomedsm_kernels::KernelChoice;
    // Fixed sizes: like the kernel bench, this is a host-hardware claim,
    // not a paper-scale reproduction.
    let (queries, db) = batch_workload(96, 64, 192, 256);
    let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    let cells: f64 = refs.iter().map(|q| q.len() as f64).sum::<f64>() * db.total_bases() as f64;
    let top_k = 5;

    let mut tab = Table::new(
        &format!(
            "Batch engine: {} queries x {} records ({:.1} Mcells), single host",
            refs.len(),
            db.len(),
            cells / 1e6
        ),
        &["path", "kernel", "time (s)", "GCUPS", "vs per-pair scalar"],
    );
    let reference = per_pair_search(KernelChoice::Scalar, &refs, &db, top_k);
    let mut base: Option<Duration> = None;
    let mut timed = |name: &str,
                     kernel: KernelChoice,
                     tab: &mut Table,
                     run: &dyn Fn() -> Vec<Vec<genomedsm_batch::Hit>>| {
        let mut bestt = Duration::MAX;
        let mut hits = Vec::new();
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            hits = std::hint::black_box(run());
            bestt = bestt.min(t0.elapsed());
        }
        assert_eq!(
            hits, reference,
            "{name}/{kernel} diverged from per-pair scalar"
        );
        let base = *base.get_or_insert(bestt);
        tab.row(&[
            name.into(),
            format!("{kernel}"),
            secs(bestt),
            format!("{:.3}", gcups(cells, bestt)),
            format!("{:.2}", base.as_secs_f64() / bestt.as_secs_f64()),
        ]);
        eprintln!("[batch] {name}/{kernel} done");
        bestt
    };

    let per_pair = |choice: KernelChoice| {
        let refs = &refs;
        let db = &db;
        move || per_pair_search(choice, refs, db, top_k)
    };
    let engine = |choice: KernelChoice| {
        let refs = &refs;
        let db = &db;
        move || {
            BatchEngine::new(BatchConfig {
                kernel: choice,
                top_k,
                ..BatchConfig::default()
            })
            .search(db, refs)
            .hits
        }
    };
    timed(
        "per-pair",
        KernelChoice::Scalar,
        &mut tab,
        &per_pair(KernelChoice::Scalar),
    );
    timed(
        "per-pair",
        KernelChoice::Simd,
        &mut tab,
        &per_pair(KernelChoice::Simd),
    );
    timed(
        "batch",
        KernelChoice::Scalar,
        &mut tab,
        &engine(KernelChoice::Scalar),
    );
    let t_batch = timed(
        "batch",
        KernelChoice::Simd,
        &mut tab,
        &engine(KernelChoice::Simd),
    );
    print!("{}", tab.render());
    println!(
        "(lane packing: a different query per i16 lane, one packed profile per record slab;\n \
         per-pair: one kernel launch per (query, record) pair — {:.3} GCUPS batch aggregate)\n",
        gcups(cells, t_batch)
    );
    tab.save_csv(&args.artifact("batch.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Protein: striped Gotoh engines + composition prefilter (DESIGN.md §5.14)
// ---------------------------------------------------------------------

/// Protein database-search workload mirroring [`batch_workload`]:
/// standard-residue queries and records at protein-typical lengths.
fn protein_workload(
    queries: usize,
    q_len: usize,
    records: usize,
    t_len: usize,
) -> (Vec<Vec<u8>>, genomedsm_batch::SeqDatabase) {
    let qs: Vec<Vec<u8>> = (0..queries)
        .map(|i| {
            genomedsm_seq::random_protein(q_len / 2 + (i * 13) % q_len, 29_000 + i as u64)
                .into_bytes()
        })
        .collect();
    let db = genomedsm_batch::SeqDatabase::from_protein_records(
        (0..records)
            .map(|i| genomedsm_seq::ProteinRecord {
                id: format!("p{i}"),
                seq: genomedsm_seq::random_protein(t_len / 2 + (i * 29) % t_len, 31_000 + i as u64),
            })
            .collect(),
    );
    (qs, db)
}

/// The prefilter's honest use case: a database where composition and
/// length actually separate hits from chaff. Each query is planted
/// verbatim into `top_k` long "homolog" records (so the k-th best score
/// is the query's self-score), and the background is mostly short random
/// records whose composition bound provably cannot reach it.
fn prefilter_workload(
    queries: usize,
    q_len: usize,
    top_k: usize,
    background: usize,
    bg_len: usize,
) -> (Vec<Vec<u8>>, genomedsm_batch::SeqDatabase) {
    let qs: Vec<Vec<u8>> = (0..queries)
        .map(|i| {
            genomedsm_seq::random_protein(q_len / 2 + (i * 11) % q_len, 41_000 + i as u64)
                .into_bytes()
        })
        .collect();
    // `top_k` rounds of homolog records; each round packs every query
    // into one of `queries / per_rec` records, so each query appears in
    // exactly `top_k` distinct records.
    let per_rec = 6usize;
    let groups = queries.div_ceil(per_rec);
    let mut records: Vec<genomedsm_seq::ProteinRecord> = Vec::new();
    for round in 0..top_k {
        for g in 0..groups {
            let mut bytes = genomedsm_seq::random_protein(40, 43_000 + (round * groups + g) as u64)
                .into_bytes();
            for (qi, q) in qs.iter().enumerate() {
                if qi % groups == g {
                    bytes.extend_from_slice(q);
                    bytes.extend_from_slice(
                        genomedsm_seq::random_protein(20, 45_000 + (round * queries + qi) as u64)
                            .as_bytes(),
                    );
                }
            }
            records.push(genomedsm_seq::ProteinRecord {
                id: format!("hom{round}_{g}"),
                seq: genomedsm_seq::ProteinSeq::from_residues(bytes),
            });
        }
    }
    for i in 0..background {
        records.push(genomedsm_seq::ProteinRecord {
            id: format!("bg{i}"),
            seq: genomedsm_seq::random_protein(bg_len / 4 + (i * 37) % bg_len, 47_000 + i as u64),
        });
    }
    (
        qs,
        genomedsm_batch::SeqDatabase::from_protein_records(records),
    )
}

/// Per-pair affine baseline: one Gotoh kernel launch per (query, record)
/// pair, the same top-k bookkeeping as the engine. The scalar instance of
/// this is the oracle every other protein path is checked against.
fn per_pair_protein(
    choice: genomedsm_kernels::KernelChoice,
    refs: &[&[u8]],
    db: &genomedsm_batch::SeqDatabase,
    ms: &genomedsm_core::submat::MatrixScoring,
    top_k: usize,
) -> Vec<Vec<genomedsm_batch::Hit>> {
    let kernel = genomedsm_kernels::kernel_for(choice);
    refs.iter()
        .map(|q| {
            let mut tk = genomedsm_batch::TopK::new(top_k);
            for t in 0..db.len() {
                let r = kernel.score_affine(q, db.seq(t), ms, 0);
                if r.best_score > 0 {
                    tk.push(genomedsm_batch::Hit {
                        score: r.best_score,
                        target: t,
                        end: r.best_end,
                    });
                }
            }
            tk.into_sorted()
        })
        .collect()
}

fn protein_bench(args: &HarnessArgs) {
    use genomedsm_batch::{build_index, prefiltered_search, BatchConfig, BatchEngine};
    use genomedsm_core::submat::MatrixScoring;
    use genomedsm_kernels::KernelChoice;

    let ms = MatrixScoring::blosum62();
    let top_k = 5;

    // ---- Engine GCUPS: uniform random workload, every path checked
    // bit-for-bit against the per-pair scalar Gotoh oracle.
    let (queries, db) = protein_workload(64, 96, 160, 320);
    let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    let cells: f64 = refs.iter().map(|q| q.len() as f64).sum::<f64>() * db.total_bases() as f64;

    let mut tab = Table::new(
        &format!(
            "Protein engines: {} queries x {} records ({:.1} Mcells), BLOSUM62 -11/-1",
            refs.len(),
            db.len(),
            cells / 1e6
        ),
        &["path", "kernel", "time (s)", "GCUPS", "vs per-pair scalar"],
    );
    let reference = per_pair_protein(KernelChoice::Scalar, &refs, &db, &ms, top_k);
    let mut base: Option<Duration> = None;
    let mut timed = |name: &str,
                     kernel: KernelChoice,
                     tab: &mut Table,
                     run: &dyn Fn() -> Vec<Vec<genomedsm_batch::Hit>>| {
        let mut bestt = Duration::MAX;
        let mut hits = Vec::new();
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            hits = std::hint::black_box(run());
            bestt = bestt.min(t0.elapsed());
        }
        assert_eq!(
            hits, reference,
            "{name}/{kernel} diverged from scalar Gotoh"
        );
        let base = *base.get_or_insert(bestt);
        tab.row(&[
            name.into(),
            format!("{kernel}"),
            secs(bestt),
            format!("{:.3}", gcups(cells, bestt)),
            format!("{:.2}", base.as_secs_f64() / bestt.as_secs_f64()),
        ]);
        eprintln!("[protein] {name}/{kernel} done");
        bestt
    };
    let per_pair = |choice: KernelChoice| {
        let refs = &refs;
        let db = &db;
        let ms = &ms;
        move || per_pair_protein(choice, refs, db, ms, top_k)
    };
    let engine = |choice: KernelChoice| {
        let refs = &refs;
        let db = &db;
        move || {
            BatchEngine::new(BatchConfig {
                kernel: choice,
                top_k,
                mode: genomedsm_batch::ScoreMode::Protein(ms),
                ..BatchConfig::default()
            })
            .search(db, refs)
            .hits
        }
    };
    timed(
        "per-pair",
        KernelChoice::Scalar,
        &mut tab,
        &per_pair(KernelChoice::Scalar),
    );
    timed(
        "per-pair",
        KernelChoice::Simd,
        &mut tab,
        &per_pair(KernelChoice::Simd),
    );
    timed(
        "batch",
        KernelChoice::Scalar,
        &mut tab,
        &engine(KernelChoice::Scalar),
    );
    let t_batch = timed(
        "batch",
        KernelChoice::Simd,
        &mut tab,
        &engine(KernelChoice::Simd),
    );
    print!("{}", tab.render());
    println!(
        "(striped Gotoh: E/F lanes in the Farrar layout, lazy-F correction; \
         {:.3} GCUPS batch aggregate)\n",
        gcups(cells, t_batch)
    );
    tab.save_csv(&args.artifact("protein.csv")).expect("csv");

    // ---- Prefilter: planted-homolog workload where the composition
    // bound has something to prune; full scan vs prefiltered scan, both
    // checked bit-identical to the scalar Gotoh oracle.
    let (pqs, pdb) = prefilter_workload(48, 96, top_k, 240, 160);
    let prefs: Vec<&[u8]> = pqs.iter().map(Vec::as_slice).collect();
    let pcells: f64 = prefs.iter().map(|q| q.len() as f64).sum::<f64>() * pdb.total_bases() as f64;
    let want = per_pair_protein(KernelChoice::Scalar, &prefs, &pdb, &ms, top_k);

    let t0 = std::time::Instant::now();
    let index = build_index(&pdb);
    let t_index = t0.elapsed();

    let mut ptab = Table::new(
        &format!(
            "Composition prefilter: {} queries x {} records ({:.1} Mcells), planted homologs",
            prefs.len(),
            pdb.len(),
            pcells / 1e6
        ),
        &[
            "path",
            "time (s)",
            "GCUPS",
            "DP launches",
            "pruned",
            "pruning rate",
        ],
    );
    let mut full_t = Duration::MAX;
    let mut full_hits = Vec::new();
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        full_hits = std::hint::black_box(per_pair_protein(
            KernelChoice::Simd,
            &prefs,
            &pdb,
            &ms,
            top_k,
        ));
        full_t = full_t.min(t0.elapsed());
    }
    assert_eq!(full_hits, want, "full simd scan diverged from scalar Gotoh");
    ptab.row(&[
        "full scan (simd)".into(),
        secs(full_t),
        format!("{:.3}", gcups(pcells, full_t)),
        format!("{}", prefs.len() * pdb.len()),
        "0".into(),
        "0.0%".into(),
    ]);
    let mut pf_t = Duration::MAX;
    let mut pf = (Vec::new(), genomedsm::index::PrefilterStats::default());
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        pf = std::hint::black_box(prefiltered_search(
            &pdb,
            &index,
            &prefs,
            &ms,
            KernelChoice::Simd,
            top_k,
        ));
        pf_t = pf_t.min(t0.elapsed());
    }
    let (pf_hits, stats) = pf;
    assert_eq!(pf_hits, want, "prefiltered scan changed the top-k");
    ptab.row(&[
        "prefiltered (simd)".into(),
        secs(pf_t),
        format!("{:.3}", gcups(pcells, pf_t)),
        format!("{}", stats.scored),
        format!("{}", stats.pruned),
        format!("{:.1}%", stats.pruning_rate() * 100.0),
    ]);
    print!("{}", ptab.render());
    println!(
        "(index built in {} — 24 counts + a length per record; every pruned record is\n \
         provably below the k-th best score, so both rows are bit-identical;\n \
         {:.2}x end-to-end over the unfiltered simd scan)\n",
        secs(t_index),
        full_t.as_secs_f64() / pf_t.as_secs_f64()
    );
    ptab.save_csv(&args.artifact("protein_prefilter.csv"))
        .expect("csv");
}

// ---------------------------------------------------------------------
// Serve: the always-on alignment service (DESIGN.md §5.11)
// ---------------------------------------------------------------------

/// Generates a serve database and writes it as FASTA; returns the same
/// records as a [`genomedsm_batch::SeqDatabase`] for the local oracle.
fn serve_db_file(
    path: &std::path::Path,
    records: usize,
    t_len: usize,
    seed: u64,
) -> genomedsm_batch::SeqDatabase {
    let recs: Vec<genomedsm_seq::fasta::FastaRecord> = (0..records)
        .map(|i| genomedsm_seq::fasta::FastaRecord {
            id: format!("rec{i}"),
            seq: genomedsm_seq::random_dna(t_len / 2 + (i * 29) % t_len, seed + i as u64),
        })
        .collect();
    genomedsm_seq::fasta::write_fasta_file(path, &recs).expect("write serve db");
    genomedsm_batch::SeqDatabase::from_records(recs)
}

/// Multi-client cold/warm sweep against a running server, then a hot
/// reload under load. Every answer the service returns — computed or
/// cached, before or after the reload — is checked bit-for-bit against
/// a local [`genomedsm_batch::BatchEngine`] run, so the throughput
/// numbers are backed by a correctness gate.
fn serve_bench(args: &HarnessArgs) {
    use genomedsm_batch::{BatchConfig, BatchEngine};
    use genomedsm_serve::{ServeClient, Server, ServerConfig};

    let top_k = 5;
    let reqs_per_client = 2;
    let db1_path = args.artifact("serve_db1.fa");
    let db2_path = args.artifact("serve_db2.fa");
    let db1 = serve_db_file(&db1_path, 96, 256, 7_000);
    let db2 = serve_db_file(&db2_path, 128, 256, 8_000);
    let socket = args.artifact("serve.sock");

    let mut config = ServerConfig::new(&socket, &db1_path);
    config.queue_capacity = 64;
    config.cache_capacity = 4096;
    config.workers = 2;
    let server = Server::start(config).expect("start server");
    let oracle = BatchEngine::new(BatchConfig {
        top_k,
        ..BatchConfig::default()
    });

    let mut tab = Table::new(
        "Always-on service: cold/warm multi-client sweep, single host",
        &[
            "clients",
            "phase",
            "time (s)",
            "req/s",
            "answers",
            "cached",
            "identical",
        ],
    );
    for &clients in &[1usize, 2, 4] {
        // A fresh query set per client count keeps the cold pass cold
        // (the server cache persists across the sweep).
        let qs: Vec<Vec<u8>> = (0..48)
            .map(|i| {
                genomedsm_seq::random_dna(
                    32 + (i * 13) % 64,
                    11_000 + clients as u64 * 997 + i as u64,
                )
                .into_bytes()
            })
            .collect();
        let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
        let want = oracle.search(&db1, &refs).hits;
        for phase in ["cold", "warm"] {
            let t0 = std::time::Instant::now();
            let per_client: Vec<(usize, usize, bool)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let qs = &qs;
                        let want = &want;
                        let socket = &socket;
                        scope.spawn(move || {
                            let mut cl = ServeClient::connect(socket).expect("connect");
                            cl.hello(&format!("bench-{c}"), 1).expect("hello");
                            let mut answers = 0usize;
                            let mut cached = 0usize;
                            let mut identical = true;
                            for _ in 0..reqs_per_client {
                                let sum = cl.search(qs, top_k, |_| {}).expect("search");
                                answers += sum.answers.len();
                                cached += sum.answers.iter().filter(|a| a.cached).count();
                                identical &= sum.hit_lists() == *want;
                            }
                            (answers, cached, identical)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client"))
                    .collect()
            });
            let elapsed = t0.elapsed();
            let answers: usize = per_client.iter().map(|r| r.0).sum();
            let cached: usize = per_client.iter().map(|r| r.1).sum();
            let identical = per_client.iter().all(|r| r.2);
            assert!(
                identical,
                "{clients}-client {phase} pass diverged from local engine"
            );
            let requests = clients * reqs_per_client;
            tab.row(&[
                clients.to_string(),
                phase.into(),
                secs(elapsed),
                format!("{:.1}", requests as f64 / elapsed.as_secs_f64()),
                answers.to_string(),
                cached.to_string(),
                "yes".into(),
            ]);
            eprintln!("[serve] {clients} clients / {phase} done");
        }
    }

    // Hot reload under load: a runner hammers one query set while an
    // admin swaps the database; every answer must match the local oracle
    // for whichever epoch the server says it was computed against.
    let qs: Vec<Vec<u8>> = (0..24)
        .map(|i| genomedsm_seq::random_dna(32 + (i * 13) % 64, 15_000 + i as u64).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
    let want1 = oracle.search(&db1, &refs).hits;
    let want2 = oracle.search(&db2, &refs).hits;
    let (e1_answers, e2_answers, mismatched) = std::thread::scope(|scope| {
        let runner = {
            let qs = &qs;
            let want1 = &want1;
            let want2 = &want2;
            let socket = &socket;
            scope.spawn(move || {
                let mut cl = ServeClient::connect(socket).expect("connect runner");
                cl.hello("reload-runner", 1).expect("hello");
                let (mut e1, mut e2, mut bad) = (0usize, 0usize, 0usize);
                // Hammer until a full post-reload pass has been seen
                // (bounded, in case the reload fails outright).
                for round in 0..400 {
                    let sum = cl.search(qs, top_k, |_| {}).expect("search under reload");
                    for a in &sum.answers {
                        let want = if a.epoch == 1 { want1 } else { want2 };
                        if a.hits == want[a.query] {
                            if a.epoch == 1 {
                                e1 += 1;
                            } else {
                                e2 += 1;
                            }
                        } else {
                            bad += 1;
                        }
                    }
                    if round >= 40 && e2 >= qs.len() {
                        break;
                    }
                }
                (e1, e2, bad)
            })
        };
        let admin = {
            let socket = &socket;
            let db2_path = &db2_path;
            scope.spawn(move || {
                let mut cl = ServeClient::connect(socket).expect("connect admin");
                std::thread::sleep(Duration::from_millis(20));
                cl.reload(db2_path.to_str().expect("utf8 path"))
                    .expect("reload")
            })
        };
        let (epoch, records, purged) = admin.join().expect("admin");
        eprintln!(
            "[serve] reload -> epoch {epoch}, {records} records, {purged} cache entries purged"
        );
        runner.join().expect("runner")
    });
    assert_eq!(
        mismatched, 0,
        "answers under reload diverged from their epoch's oracle"
    );

    let stats = server.stats();
    server.stop();
    print!("{}", tab.render());
    println!(
        "(reload under load: {e1_answers} epoch-1 + {e2_answers} epoch-2 answers, 0 mismatches;\n \
         cache {} hits / {} misses, {} purged by reload; {} rejected, {} protocol errors)\n",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_stale_purged,
        stats.rejected,
        stats.protocol_errors
    );
    assert_eq!(stats.protocol_errors, 0, "service saw protocol errors");
    tab.save_csv(&args.artifact("serve.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Chaos: the reliability-layer sweep (DESIGN.md §5.7)
// ---------------------------------------------------------------------

/// Pre-process runs under increasing per-link drop rates (with fixed 5%
/// duplication and 5% reordering), plus one run that also crashes a node
/// mid-band. Every row must stay bit-identical to the fault-free
/// scoreboard; the table records what the transport paid for that.
/// Resolves the `genomedsm` CLI binary, which `cluster::launch` re-execs
/// as the per-rank `node` processes. Cargo places every workspace binary
/// in the same target directory, so it lives next to this harness.
fn genomedsm_exe() -> Result<std::path::PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "harness binary has no parent directory".to_string())?;
    let exe = dir.join(format!("genomedsm{}", std::env::consts::EXE_SUFFIX));
    if exe.is_file() {
        Ok(exe)
    } else {
        Err(format!(
            "{} not found — build the workspace (`cargo build --release`) so the \
             genomedsm CLI sits next to the paper harness",
            exe.display()
        ))
    }
}

fn sockets_bench(args: &HarnessArgs) {
    use genomedsm::cluster::{launch, WorkloadSpec};
    let exe = match genomedsm_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("sockets: {e}");
            std::process::exit(2);
        }
    };
    let len = args.size(8_000);
    let ranks = (*args.procs.iter().max().expect("procs")).max(2);
    let mut tab = Table::new(
        &format!(
            "Sockets sweep: {ranks} OS processes over loopback UDP, {len} bp x {len} bp \
             (corrupt 3%, dup 5%, reorder 10% whenever drop > 0)"
        ),
        &[
            "drop",
            "identical",
            "datagrams",
            "retransmits",
            "host time (s)",
        ],
    );
    let mut all_identical = true;
    for (i, &drop) in [0.0f64, 0.05, 0.15, 0.25].iter().enumerate() {
        let plan =
            (drop > 0.0).then(|| format!("seed=11,drop={drop},corrupt=0.03,dup=0.05,reorder=0.1"));
        let spec = WorkloadSpec {
            len,
            seed: 42,
            procs: ranks,
            plan,
        };
        let t0 = std::time::Instant::now();
        // `launch` itself asserts every rank's report is byte-identical
        // and matches a clean in-process reference run.
        let out = launch(&exe, &spec, 1_000 + (i as u64) * 10);
        let host = t0.elapsed();
        match out {
            Ok(out) => {
                tab.row(&[
                    format!("{:.0}%", drop * 100.0),
                    "yes".into(),
                    out.datagrams_sent.to_string(),
                    out.retransmits.to_string(),
                    secs(host),
                ]);
            }
            Err(e) => {
                all_identical = false;
                eprintln!("[sockets] drop={drop} FAILED: {e}");
                tab.row(&[
                    format!("{:.0}%", drop * 100.0),
                    "NO".into(),
                    "-".into(),
                    "-".into(),
                    secs(host),
                ]);
            }
        }
        eprintln!("[sockets] drop={drop} done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("sockets.csv")).expect("csv");
    if !all_identical {
        eprintln!("sockets: at least one multi-process run diverged");
        std::process::exit(1);
    }
}

fn chaos_sweep(args: &HarnessArgs) {
    use genomedsm_chaos::{FaultPlan, LinkFaults, SeededFaults};
    let len = args.size(40_000);
    let (s, t, _) = workloads::pair(len, 47);
    let nprocs = *args.procs.iter().max().expect("procs");
    let base_config = || {
        let mut config = PreprocessConfig::new(nprocs);
        config.band = BandScheme::Balanced(args.size(1024));
        config.chunk = ChunkPlan::Fixed(args.size(1024));
        config
    };
    let clean = preprocess_align(&s, &t, &SC, &base_config()).unwrap();

    let mut tab = Table::new(
        &format!(
            "Chaos sweep: pre-process, {len} bp x {len} bp, {nprocs} nodes (dup 5%, reorder 5%)"
        ),
        &[
            "drop",
            "crash",
            "identical",
            "retransmits",
            "dups dropped",
            "corrupt dropped",
            "recoveries",
            "time (s)",
            "overhead",
        ],
    );
    let cases: &[(f64, bool)] = &[
        (0.02, false),
        (0.05, false),
        (0.10, false),
        (0.15, false),
        (0.05, true),
    ];
    for &(drop, crash) in cases {
        let mut plan = FaultPlan {
            link: LinkFaults {
                drop,
                corrupt: 0.01,
                duplicate: 0.05,
                reorder: 0.05,
                max_extra_delay: Duration::from_millis(2),
            },
            ..FaultPlan::quiet(4242)
        };
        if crash {
            plan = plan.with_crash(1 % nprocs, 2);
        }
        let mut config = base_config();
        config.checkpoint = true;
        config.dsm = config
            .dsm
            .faults(std::sync::Arc::new(SeededFaults::new(plan, nprocs)));
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let identical = out.result == clean.result && out.best_score == clean.best_score;
        let mut agg = genomedsm_dsm::NodeStats::default();
        for st in &out.per_node {
            agg.merge(st);
        }
        tab.row(&[
            format!("{:.0}%", drop * 100.0),
            if crash { "1@2".into() } else { "-".to_string() },
            if identical { "yes" } else { "NO" }.to_string(),
            agg.retransmits.to_string(),
            agg.dups_dropped.to_string(),
            agg.corrupt_dropped.to_string(),
            agg.recoveries.to_string(),
            secs(out.wall),
            format!(
                "{:+.1}%",
                (out.wall.as_secs_f64() / clean.wall.as_secs_f64().max(1e-12) - 1.0) * 100.0
            ),
        ]);
        eprintln!("[chaos] drop={drop} crash={crash} done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("chaos.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Takeover: the graceful-degradation sweep
// ---------------------------------------------------------------------

/// Runs every phase-1 strategy (and phase 2) with 0–3 of the cluster's
/// nodes fail-stopped mid-run and verifies the survivors' results match
/// the fault-free run exactly, recording takeover counts and the
/// virtual-time cost of each death. The `killed=0` supervised row
/// measures the supervision layer's fault-free overhead.
fn takeover_sweep(args: &HarnessArgs) {
    use genomedsm_strategies::KillPlan;
    let len = args.size(20_000);
    let (s, t, _) = workloads::pair(len, 53);
    let nprocs = (*args.procs.iter().max().expect("procs")).max(4);
    let max_killed = 3.min(nprocs - 1);
    let supervise = |dsm: genomedsm_dsm::DsmConfig| dsm.tolerate_failures();
    // Stagger the fail-stops across work-unit depths so the deaths land
    // at different stages of the wavefront.
    let kills = |k: usize, stagger: &[u64]| -> std::sync::Arc<KillPlan> {
        let mut plan = KillPlan::new();
        for victim in 1..=k {
            plan = plan.kill(victim, stagger[(victim - 1) % stagger.len()]);
        }
        std::sync::Arc::new(plan)
    };

    let mut tab = Table::new(
        &format!("Takeover sweep: {len} bp x {len} bp, {nprocs} nodes, 0-{max_killed} killed"),
        &[
            "strategy",
            "killed",
            "exact match",
            "takeovers",
            "obituaries",
            "time (s)",
            "overhead",
        ],
    );

    // (strategy name, work-unit stagger, run closure). Each closure runs
    // its strategy under the given DSM config and returns a result
    // fingerprint plus aggregated stats and the virtual wall time.
    type Run<'a> = Box<
        dyn Fn(Option<std::sync::Arc<KillPlan>>, bool) -> (u64, genomedsm_dsm::NodeStats, Duration)
            + 'a,
    >;
    let fingerprint_regions = |regions: &[LocalRegion]| -> u64 {
        // Order-sensitive FNV over the region list: any divergence flips it.
        let mut h: u64 = 0xcbf29ce484222325;
        for r in regions {
            for v in [r.s_begin, r.t_begin, r.s_end, r.t_end, r.score as usize] {
                h ^= v as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    };
    let agg_of = |per_node: &[genomedsm_dsm::NodeStats]| {
        let mut agg = genomedsm_dsm::NodeStats::default();
        for st in per_node {
            agg.merge(st);
        }
        agg
    };

    let rows = s.len() as u64;
    let heuristic_stagger = [rows / 20, rows / 10, rows * 3 / 20];
    let strategies: Vec<(&str, Vec<u64>, Run)> = vec![
        (
            "heuristic",
            heuristic_stagger.to_vec(),
            Box::new(|plan, tolerant| {
                let mut config = HeuristicDsmConfig::new(nprocs);
                if tolerant {
                    config.dsm = supervise(config.dsm);
                }
                if let Some(p) = plan {
                    config.dsm = config.dsm.faults(p as _);
                }
                let out = heuristic_align_dsm(&s, &t, &SC, &params(), &config);
                (fingerprint_regions(&out.regions), out.aggregate(), out.wall)
            }),
        ),
        (
            "blocked",
            vec![5, 9, 13],
            Box::new(|plan, tolerant| {
                let mut config = BlockedConfig::new(nprocs, 24, 12);
                if tolerant {
                    config.dsm = supervise(config.dsm);
                }
                if let Some(p) = plan {
                    config.dsm = config.dsm.faults(p as _);
                }
                let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
                (fingerprint_regions(&out.regions), out.aggregate(), out.wall)
            }),
        ),
        (
            "preprocess",
            vec![3, 5, 7],
            Box::new(|plan, tolerant| {
                let mut config = PreprocessConfig::new(nprocs);
                config.band = BandScheme::Balanced(args.size(1024));
                config.chunk = ChunkPlan::Fixed(args.size(1024));
                if tolerant {
                    config.dsm = supervise(config.dsm);
                }
                if let Some(p) = plan {
                    config.dsm = config.dsm.faults(p as _);
                }
                let out = preprocess_align(&s, &t, &SC, &config).expect("preprocess");
                // Fingerprint the scoreboard and the best score together.
                let mut h: u64 = 0xcbf29ce484222325 ^ out.best_score as u64;
                for row in &out.result {
                    for &v in row {
                        h ^= v as u64;
                        h = h.wrapping_mul(0x100000001b3);
                    }
                }
                (h, agg_of(&out.per_node), out.wall)
            }),
        ),
    ];

    for (name, stagger, run) in &strategies {
        let (clean_fp, _, clean_wall) = run(None, false);
        for k in 0..=max_killed {
            let plan = (k > 0).then(|| kills(k, stagger));
            let (fp, agg, wall) = run(plan, true);
            tab.row(&[
                name.to_string(),
                k.to_string(),
                if fp == clean_fp { "yes" } else { "NO" }.to_string(),
                agg.takeovers.to_string(),
                agg.obituaries.to_string(),
                secs(wall),
                format!(
                    "{:+.1}%",
                    (wall.as_secs_f64() / clean_wall.as_secs_f64().max(1e-12) - 1.0) * 100.0
                ),
            ]);
            eprintln!("[takeover] {name} killed={k} done");
        }
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("takeover.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Rejoin: the elastic-membership sweep
// ---------------------------------------------------------------------

/// Runs a 3-round heuristic campaign three ways — fault-free, with k
/// nodes killed in round 0 and readmitted at the next workload
/// boundary, and with the same k kills left permanent — asserting that
/// every round of every scenario stays bit-identical to the fault-free
/// campaign and recording whether the post-rejoin rounds recover
/// full-strength throughput instead of staying degraded at N−k.
fn rejoin_sweep(args: &HarnessArgs) {
    use genomedsm_strategies::{heuristic_campaign, KillPlan};
    let len = args.size(20_000);
    let (s, t, _) = workloads::pair(len, 61);
    let nprocs = (*args.procs.iter().max().expect("procs")).max(4);
    let rounds = 3usize;
    let max_killed = 2.min(nprocs - 1);
    // Round-0 fail-stop points, staggered inside each victim's share of
    // the wavefront (heuristic work units are per-node rows), and a
    // short virtual downtime so the boundary admission lands the
    // joiner at the round-1 membership-refresh barrier.
    let per_node_rows = (s.len() / nprocs) as u64;
    let stagger = [per_node_rows / 5, per_node_rows / 2];
    let downtime = 8u64;

    let campaign = |plan: Option<std::sync::Arc<KillPlan>>| {
        let mut config = HeuristicDsmConfig::new(nprocs);
        config.dsm = config.dsm.tolerate_failures();
        if let Some(p) = plan {
            config.dsm = config.dsm.faults(p as _);
        }
        heuristic_campaign(&s, &t, &SC, &params(), &config, rounds)
    };
    let clean = campaign(None);

    let mut tab = Table::new(
        &format!("Rejoin sweep: {len} bp x {len} bp, {nprocs} nodes, {rounds}-round campaign"),
        &[
            "killed",
            "round",
            "exact match",
            "rejoins",
            "elastic (s)",
            "degraded (s)",
            "clean (s)",
            "recovered",
        ],
    );
    for k in 1..=max_killed {
        let mut rejoining = KillPlan::new();
        let mut permanent = KillPlan::new();
        for victim in 1..=k {
            let at = stagger[(victim - 1) % stagger.len()];
            rejoining = rejoining.kill(victim, at).rejoin(victim, downtime);
            permanent = permanent.kill(victim, at);
        }
        let elastic = campaign(Some(std::sync::Arc::new(rejoining)));
        let degraded = campaign(Some(std::sync::Arc::new(permanent)));
        let rejoins: u64 = elastic.per_node.iter().map(|st| st.rejoins).sum();
        for w in 0..rounds {
            let exact = elastic.rounds[w].regions == clean.rounds[w].regions
                && degraded.rounds[w].regions == clean.rounds[w].regions;
            tab.row(&[
                k.to_string(),
                w.to_string(),
                if exact { "yes" } else { "NO" }.to_string(),
                rejoins.to_string(),
                secs(elastic.rounds[w].wall),
                secs(degraded.rounds[w].wall),
                secs(clean.rounds[w].wall),
                // Round 0 contains the deaths; full strength is only
                // owed from the first post-rejoin round on.
                if w == 0 {
                    "n/a".to_string()
                } else if elastic.rounds[w].wall < degraded.rounds[w].wall {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                },
            ]);
        }
        eprintln!("[rejoin] killed={k} done");
    }
    print!("{}", tab.render());
    println!();
    tab.save_csv(&args.artifact("rejoin.csv")).expect("csv");
}

// ---------------------------------------------------------------------
// Summary: the machine-checked repro gate
// ---------------------------------------------------------------------

/// Re-runs a minimal version of each headline claim and prints PASS/FAIL.
/// Thresholds are deliberately loose — they guard the *shape* of each
/// result (who wins, which direction trends point), not exact numbers.
fn summary(args: &HarnessArgs) {
    let mut results: Vec<(&str, bool, String)> = Vec::new();
    let nprocs = *args.procs.iter().max().expect("procs");

    // Claim 1: speed-up grows with size (heuristic strategy, small vs large).
    {
        let small = args.size(15_000);
        let large = args.size(150_000);
        let sp = |len: usize| {
            let (s, t, _) = workloads::pair(len, 1);
            let serial = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(1));
            let par = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(nprocs));
            speedup(serial.wall, par.wall)
        };
        let (lo, hi) = (sp(small), sp(large));
        results.push((
            "speed-up grows with sequence size (Fig. 9)",
            hi > lo && hi > 1.5,
            format!("{lo:.2} @ {small} bp -> {hi:.2} @ {large} bp"),
        ));
        eprintln!("[summary] claim 1 done");
    }

    // Claim 2: blocking beats non-blocking at max procs (Fig. 13).
    {
        let len = args.size(50_000);
        let (s, t, _) = workloads::pair(len, 3);
        let blocked =
            heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 40, 25));
        let unblocked =
            heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(nprocs));
        let factor = unblocked.wall.as_secs_f64() / blocked.wall.as_secs_f64();
        results.push((
            "blocking beats non-blocking by a large factor (Fig. 13)",
            factor > 2.0,
            format!("{factor:.1}x (paper: ~3.8x)"),
        ));
        results.push((
            "blocked and non-blocked find identical regions",
            blocked.regions == unblocked.regions,
            format!("{} regions", blocked.regions.len()),
        ));
        eprintln!("[summary] claims 2-3 done");
    }

    // Claim 4: phase 2 is near-linear and lock-free (Fig. 15).
    {
        let pairs = workloads::subsequence_pairs(400, 253, 5);
        let mut s = Vec::new();
        let mut t = Vec::new();
        let mut regions = Vec::new();
        for (ps, pt) in &pairs {
            regions.push(LocalRegion {
                s_begin: s.len(),
                s_end: s.len() + ps.len(),
                t_begin: t.len(),
                t_end: t.len() + pt.len(),
                score: 0,
            });
            s.extend_from_slice(ps.as_bytes());
            t.extend_from_slice(pt.as_bytes());
        }
        let serial = phase2_scattered(&s, &t, &regions, &SC, 1).unwrap();
        let par = phase2_scattered(&s, &t, &regions, &SC, nprocs).unwrap();
        let sp = speedup(serial.wall, par.wall);
        let lockfree = par.per_node.iter().all(|n| n.lock_cv == Duration::ZERO);
        results.push((
            "phase-2 scattered mapping is near-linear (Fig. 15)",
            sp > 0.75 * nprocs as f64,
            format!("{sp:.2} on {nprocs} procs"),
        ));
        results.push((
            "phase 2 uses no locks or condition variables (§4.4)",
            lockfree,
            "lock_cv time is zero on every node".into(),
        ));
        eprintln!("[summary] claims 4-5 done");
    }

    // Claim 6: pre-process is exact (hits == oracle) and I/O is cheap.
    {
        let len = args.size(40_000);
        let (s, t, _) = workloads::pair(len, 7);
        let mut config = PreprocessConfig::new(nprocs);
        config.band = BandScheme::Balanced(args.size(1024));
        config.chunk = ChunkPlan::Fixed(args.size(1024));
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let oracle = genomedsm_core::linear::sw_score_linear(&s, &t, &SC, config.threshold);
        results.push((
            "pre-process strategy is exact (§5)",
            out.total_hits() == oracle.hits as i64 && out.best_score == oracle.best_score,
            format!("{} hits, best {}", out.total_hits(), out.best_score),
        ));
        let dir = args.artifact("summary_columns");
        std::fs::create_dir_all(&dir).expect("dir");
        let mut io_config = config.clone();
        io_config.io_mode = IoMode::Immediate;
        io_config.save_dir = Some(dir.clone());
        let with_io = preprocess_align(&s, &t, &SC, &io_config).unwrap();
        let ratio = with_io.core_time().as_secs_f64() / out.core_time().as_secs_f64();
        results.push((
            "column saving costs little (Fig. 20)",
            ratio < 1.10,
            format!("{:.1}% overhead", (ratio - 1.0) * 100.0),
        ));
        std::fs::remove_dir_all(&dir).ok();
        eprintln!("[summary] claims 6-7 done");
    }

    // Claim 8: Section 6 worked example is exact.
    {
        let s = b"TCTCGACGGATTAGTATATATATA";
        let t = b"ATATGATCGGAATAGCTCT";
        let full = genomedsm_core::matrix::sw_matrix(s, t, &SC);
        let (ei, ej, best) = full.maximum();
        let ok = best == 6 && (ei, ej) == (14, 15);
        let rec = recover_start(s, t, &SC, ei, ej, best);
        results.push((
            "Section-6 worked example (score 6 at (14,15), start recovery)",
            ok && rec.is_some(),
            format!("score {best} at ({ei},{ej})"),
        ));
    }

    // Claim 9: reverse-window useful area near 1/3 (Eqs. 2-3).
    {
        let plan = genomedsm_seq::HomologyPlan {
            region_count: 1,
            region_len_mean: 1000,
            region_len_jitter: 0,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, _) = genomedsm_seq::planted_pair(3000, 3000, &plan, 1000);
        let rec = genomedsm_core::reverse::reverse_align_best(&s, &t, &SC).expect("planted");
        let frac = rec.stats.evaluated_fraction();
        results.push((
            "reverse-window useful area ~ 1/3 (Eqs. 2-3)",
            (0.2..0.5).contains(&frac),
            format!("{:.1}% (theory 33.4%)", frac * 100.0),
        ));
        eprintln!("[summary] claims 8-9 done");
    }

    // Claim 10: the striped SIMD kernel is >= 3x the scalar kernel on a
    // 10k x 10k score-only workload (single thread, host hardware), with
    // one GCUPS row recorded per kernel the host can run.
    {
        let (s, t, _) = workloads::pair(10_000, 31);
        let cells = 10_000f64 * 10_000f64;
        let kernels = genomedsm_kernels::available_kernels();
        let mut base: Option<Duration> = None;
        let mut best_speedup = 0.0f64;
        for kernel in kernels {
            let time = time_kernel(kernel, &s, &t);
            let base = *base.get_or_insert(time); // scalar comes first
            let sp = base.as_secs_f64() / time.as_secs_f64();
            best_speedup = best_speedup.max(sp);
            results.push((
                "kernel GCUPS (10k x 10k score-only, 1 thread)",
                true,
                format!(
                    "{}: {:.3} GCUPS ({sp:.2}x scalar)",
                    kernel.name(),
                    gcups(cells, time)
                ),
            ));
        }
        results.push((
            "striped SIMD kernel >= 3x scalar (10k x 10k score-only)",
            best_speedup >= 3.0,
            format!("best striped kernel at {best_speedup:.1}x"),
        ));
        eprintln!("[summary] claim 10 done");
    }

    // Claim 11: the reliability layer delivers exactly-once under 5%
    // per-link loss + duplication + reordering + a node crash — the
    // pre-process scoreboard stays bit-identical and the transport
    // counters prove faults were actually injected and absorbed.
    {
        use genomedsm_chaos::{FaultPlan, SeededFaults};
        let len = args.size(30_000);
        let (s, t, _) = workloads::pair(len, 47);
        let base = || {
            let mut config = PreprocessConfig::new(nprocs);
            config.band = BandScheme::Balanced(args.size(1024));
            config.chunk = ChunkPlan::Fixed(args.size(1024));
            config
        };
        let clean = preprocess_align(&s, &t, &SC, &base()).unwrap();
        let mut config = base();
        config.checkpoint = true;
        config.dsm = config.dsm.faults(std::sync::Arc::new(SeededFaults::new(
            FaultPlan::paper_chaos(4242).with_crash(1 % nprocs, 2),
            nprocs,
        )));
        let chaotic = preprocess_align(&s, &t, &SC, &config).unwrap();
        let identical = chaotic.result == clean.result && chaotic.best_score == clean.best_score;
        let mut agg = genomedsm_dsm::NodeStats::default();
        for st in &chaotic.per_node {
            agg.merge(st);
        }
        results.push((
            "exactly-once under 5% loss + crash, bit-identical scoreboard (§5.7)",
            identical && agg.retransmits > 0 && agg.dups_dropped > 0 && agg.recoveries > 0,
            format!(
                "{} retransmits, {} dups dropped, {} recovery",
                agg.retransmits, agg.dups_dropped, agg.recoveries
            ),
        ));
        eprintln!("[summary] claim 11 done");
    }

    // Claim 12: an N−1 run matches the fault-free output exactly — a
    // node fail-stopped mid-run (never restarted) has its bands adopted
    // by the survivors through the supervision layer, and the blocked
    // strategy's candidate regions stay bit-identical.
    {
        use genomedsm_strategies::KillPlan;
        let len = args.size(30_000);
        let (s, t, _) = workloads::pair(len, 53);
        let clean =
            heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 24, 12));
        let mut config = BlockedConfig::new(nprocs, 24, 12);
        config.dsm = config
            .dsm
            .tolerate_failures()
            .faults(std::sync::Arc::new(KillPlan::new().kill(1 % nprocs, 7)));
        let degraded = heuristic_block_align(&s, &t, &SC, &params(), &config);
        let agg = degraded.aggregate();
        results.push((
            "N-1 run matches fault-free output exactly (§5.8 takeover)",
            degraded.regions == clean.regions && agg.takeovers >= 1 && agg.obituaries > 0,
            format!(
                "{} regions, {} takeover(s), {} obituaries",
                degraded.regions.len(),
                agg.takeovers,
                agg.obituaries
            ),
        ));
        eprintln!("[summary] claim 12 done");
    }

    // Claim 13: the batch engine's aggregate GCUPS on a many-small-
    // queries database search exceeds the per-pair kernel-launch
    // baseline at the same kernel choice (inter-sequence lane packing +
    // profile reuse beat per-pair launch overhead), with identical hits.
    {
        use genomedsm_batch::{BatchConfig, BatchEngine};
        use genomedsm_kernels::KernelChoice;
        let (queries, db) = batch_workload(64, 64, 128, 256);
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let cells: f64 = refs.iter().map(|q| q.len() as f64).sum::<f64>() * db.total_bases() as f64;
        let time_best = |run: &dyn Fn() -> Vec<Vec<genomedsm_batch::Hit>>| {
            let mut best = Duration::MAX;
            let mut hits = Vec::new();
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                hits = std::hint::black_box(run());
                best = best.min(t0.elapsed());
            }
            (hits, best)
        };
        let (pp_hits, pp_time) = time_best(&|| per_pair_search(KernelChoice::Simd, &refs, &db, 5));
        let (b_hits, b_time) = time_best(&|| {
            BatchEngine::new(BatchConfig {
                kernel: KernelChoice::Simd,
                top_k: 5,
                ..BatchConfig::default()
            })
            .search(&db, &refs)
            .hits
        });
        let ratio = pp_time.as_secs_f64() / b_time.as_secs_f64();
        results.push((
            "batch engine beats per-pair launches on many small queries (§5.9)",
            b_hits == pp_hits && ratio > 1.0,
            format!(
                "{:.3} vs {:.3} GCUPS ({ratio:.2}x), identical top-k",
                gcups(cells, b_time),
                gcups(cells, pp_time)
            ),
        ));
        eprintln!("[summary] claim 13 done");
    }

    // Claim 14: the always-on service answers bit-identically to a
    // local engine run — cold (computed), warm (served from the result
    // cache), and across a hot reload (new epoch, cache purged, old
    // answers never served) — with zero protocol errors.
    {
        use genomedsm_batch::{BatchConfig, BatchEngine};
        use genomedsm_serve::{ServeClient, Server, ServerConfig};
        let top_k = 5;
        let db1_path = args.artifact("summary_serve_db1.fa");
        let db2_path = args.artifact("summary_serve_db2.fa");
        let db1 = serve_db_file(&db1_path, 48, 192, 17_000);
        let db2 = serve_db_file(&db2_path, 64, 192, 18_000);
        let mut config = ServerConfig::new(args.artifact("summary_serve.sock"), &db1_path);
        config.workers = 2;
        let server = Server::start(config).expect("start server");
        let qs: Vec<Vec<u8>> = (0..12)
            .map(|i| genomedsm_seq::random_dna(32 + (i * 13) % 48, 19_000 + i as u64).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
        let oracle = BatchEngine::new(BatchConfig {
            top_k,
            ..BatchConfig::default()
        });
        let want1 = oracle.search(&db1, &refs).hits;
        let want2 = oracle.search(&db2, &refs).hits;

        let mut cl = ServeClient::connect(server.socket()).expect("connect");
        cl.hello("summary", 1).expect("hello");
        let cold = cl.search(&qs, top_k, |_| {}).expect("cold search");
        let warm = cl.search(&qs, top_k, |_| {}).expect("warm search");
        let cold_ok = cold.hit_lists() == want1 && cold.answers.iter().all(|a| !a.cached);
        let warm_ok = warm.hit_lists() == want1 && warm.answers.iter().all(|a| a.cached);
        let (epoch, _records, purged) = cl
            .reload(db2_path.to_str().expect("utf8 path"))
            .expect("reload");
        let after = cl.search(&qs, top_k, |_| {}).expect("post-reload search");
        let reload_ok = epoch == 2
            && after.hit_lists() == want2
            && after.answers.iter().all(|a| !a.cached && a.epoch == 2);
        let stats = server.stats();
        server.stop();
        results.push((
            "service cache hits and hot reload are bit-exact (§5.11)",
            cold_ok && warm_ok && reload_ok && stats.protocol_errors == 0,
            format!(
                "cold/warm/post-reload all match the local engine; warm fully cached; \
                 reload purged {purged} entries; {} protocol errors",
                stats.protocol_errors
            ),
        ));
        eprintln!("[summary] claim 14 done");
    }

    // Claim 15: the cluster runs as real OS processes over loopback UDP
    // datagrams — four ranks, 15% injected datagram loss plus
    // corruption, duplication, and reordering — and every rank's report
    // is bit-identical to the in-process run, with the transport
    // counters proving the loss was real and absorbed by retransmission.
    {
        use genomedsm::cluster::{launch, WorkloadSpec};
        match genomedsm_exe() {
            Ok(exe) => {
                let spec = WorkloadSpec {
                    len: args.size(8_000),
                    seed: 42,
                    procs: 4,
                    plan: Some("seed=11,drop=0.15,corrupt=0.03,dup=0.05,reorder=0.1".into()),
                };
                let (pass, evidence) = match launch(&exe, &spec, 2_000) {
                    Ok(out) => (
                        out.retransmits > 0,
                        format!(
                            "4 processes over UDP, reports bit-identical to in-process \
                             ({} datagrams, {} retransmits)",
                            out.datagrams_sent, out.retransmits
                        ),
                    ),
                    Err(e) => (false, e),
                };
                results.push((
                    "4-process UDP run bit-identical under 15% datagram loss (§5.12)",
                    pass,
                    evidence,
                ));
            }
            Err(e) => {
                results.push((
                    "4-process UDP run bit-identical under 15% datagram loss (§5.12)",
                    false,
                    e,
                ));
            }
        }
        eprintln!("[summary] claim 15 done");
    }

    // Claim 16: elastic membership — a rank killed in round 0 of a
    // 3-round campaign and readmitted at the next workload boundary
    // leaves every round bit-identical to the fault-free campaign and
    // restores full-strength throughput from the first post-rejoin
    // round on, while a permanent kill stays degraded at N−1.
    {
        use genomedsm_strategies::{heuristic_campaign, KillPlan};
        let len = args.size(15_000);
        let (s, t, _) = workloads::pair(len, 61);
        let rounds = 3usize;
        let victim = 1 % nprocs;
        let kill_at = (s.len() / nprocs.max(1)) as u64 / 5;
        let campaign = |plan: Option<KillPlan>| {
            let mut config = HeuristicDsmConfig::new(nprocs);
            config.dsm = config.dsm.tolerate_failures();
            if let Some(p) = plan {
                config.dsm = config.dsm.faults(std::sync::Arc::new(p));
            }
            heuristic_campaign(&s, &t, &SC, &params(), &config, rounds)
        };
        let clean = campaign(None);
        let elastic = campaign(Some(
            KillPlan::new().kill(victim, kill_at).rejoin(victim, 8),
        ));
        let degraded = campaign(Some(KillPlan::new().kill(victim, kill_at)));
        let identical = (0..rounds).all(|w| {
            elastic.rounds[w].regions == clean.rounds[w].regions
                && degraded.rounds[w].regions == clean.rounds[w].regions
        });
        let rejoins: u64 = elastic.per_node.iter().map(|st| st.rejoins).sum();
        let recovered = (1..rounds).all(|w| elastic.rounds[w].wall < degraded.rounds[w].wall);
        let gain =
            degraded.rounds[1].wall.as_secs_f64() / elastic.rounds[1].wall.as_secs_f64().max(1e-12);
        results.push((
            "kill-then-rejoin campaign: bit-identical, throughput recovered (§5.13)",
            identical && rejoins == 1 && recovered,
            format!(
                "{rounds} rounds bit-identical; {rejoins} rejoin; post-rejoin round \
                 {gain:.2}x faster than permanent N-1"
            ),
        ));
        eprintln!("[summary] claim 16 done");
    }

    // Claim 17: the protein subsystem is exact and fast — every affine
    // (Gotoh) engine's top-k is bit-identical to the sequential scalar
    // Gotoh scan, the striped SIMD kernel is at least 2x the scalar on
    // the lane-packed path, and the composition prefilter prunes DP
    // launches without ever changing the top-k.
    {
        use genomedsm_batch::{
            build_index, oracle_search_mode, prefiltered_search, BatchConfig, BatchEngine,
            ScoreMode,
        };
        use genomedsm_core::submat::MatrixScoring;
        use genomedsm_kernels::KernelChoice;
        let ms = MatrixScoring::blosum62();
        let top_k = 5;
        let (queries, db) = protein_workload(48, 96, 128, 320);
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let want = oracle_search_mode(&db, &refs, &ScoreMode::Protein(ms), &SC, top_k);
        let time_best = |choice: KernelChoice| {
            let mut best = Duration::MAX;
            let mut hits = Vec::new();
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                hits = std::hint::black_box(
                    BatchEngine::new(BatchConfig {
                        kernel: choice,
                        top_k,
                        mode: ScoreMode::Protein(ms),
                        ..BatchConfig::default()
                    })
                    .search(&db, &refs)
                    .hits,
                );
                best = best.min(t0.elapsed());
            }
            (hits, best)
        };
        let (scalar_hits, scalar_t) = time_best(KernelChoice::Scalar);
        let (simd_hits, simd_t) = time_best(KernelChoice::Simd);
        let ratio = scalar_t.as_secs_f64() / simd_t.as_secs_f64();

        let (pqs, pdb) = prefilter_workload(32, 96, top_k, 160, 160);
        let prefs: Vec<&[u8]> = pqs.iter().map(Vec::as_slice).collect();
        let pwant = oracle_search_mode(&pdb, &prefs, &ScoreMode::Protein(ms), &SC, top_k);
        let index = build_index(&pdb);
        let (pf_hits, stats) =
            prefiltered_search(&pdb, &index, &prefs, &ms, KernelChoice::Simd, top_k);
        results.push((
            "protein Gotoh: SIMD >= 2x scalar, prefilter prunes, all bit-exact (§5.14)",
            scalar_hits == want
                && simd_hits == want
                && pf_hits == pwant
                && ratio >= 2.0
                && stats.pruned > 0,
            format!(
                "striped Gotoh {ratio:.2}x over scalar; prefilter pruned {} of {} DP \
                 launches ({:.0}%), top-k unchanged",
                stats.pruned,
                stats.evaluated,
                stats.pruning_rate() * 100.0
            ),
        ));
        eprintln!("[summary] claim 17 done");
    }

    let mut table = Table::new(
        "Reproduction gate: headline claims",
        &["claim", "verdict", "evidence"],
    );
    let mut failures = 0;
    for (claim, pass, evidence) in &results {
        if !pass {
            failures += 1;
        }
        table.row(&[
            claim.to_string(),
            if *pass { "PASS" } else { "FAIL" }.to_string(),
            evidence.clone(),
        ]);
    }
    print!("{}", table.render());
    println!();
    table.save_csv(&args.artifact("summary.csv")).expect("csv");
    if failures > 0 {
        eprintln!("{failures} claim(s) FAILED");
        std::process::exit(1);
    }
    println!("all {} claims PASS", results.len());
}
