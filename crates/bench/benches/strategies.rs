//! Criterion benchmarks of the parallel strategies: real host time of the
//! simulated-cluster runs (protocol overhead included) against the plain
//! shared-memory port and the serial kernel, plus the phase-2 scattered
//! mapping in both DSM and rayon forms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genomedsm_bench::workloads;
use genomedsm_core::heuristic::{heuristic_align, HeuristicParams};
use genomedsm_core::Scoring;
use genomedsm_strategies::{
    heuristic_block_align, heuristic_block_align_shm, phase2_scattered, phase2_scattered_pool,
    preprocess_align, BlockedConfig, PreprocessConfig,
};
use std::hint::black_box;

const SC: Scoring = Scoring::paper();
const LEN: usize = 1024;

fn params() -> HeuristicParams {
    HeuristicParams::default_for_dna()
}

fn bench_phase1_variants(c: &mut Criterion) {
    let (s, t, _) = workloads::pair(LEN, 21);
    let mut g = c.benchmark_group("phase1_host_time");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| black_box(heuristic_align(&s, &t, &SC, &params())));
    });
    for nprocs in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("blocked_dsm", nprocs), &nprocs, |b, &p| {
            b.iter(|| {
                black_box(heuristic_block_align(
                    &s,
                    &t,
                    &SC,
                    &params(),
                    &BlockedConfig::new(p, 8, 8),
                ))
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked_shm", nprocs), &nprocs, |b, &p| {
            b.iter(|| black_box(heuristic_block_align_shm(&s, &t, &SC, &params(), p, 8, 8)));
        });
    }
    g.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let (s, t, _) = workloads::pair(LEN, 22);
    let mut g = c.benchmark_group("preprocess_host_time");
    g.sample_size(10);
    for nprocs in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(nprocs), &nprocs, |b, &p| {
            let config = PreprocessConfig::new(p);
            b.iter(|| black_box(preprocess_align(&s, &t, &SC, &config).unwrap()));
        });
    }
    g.finish();
}

fn bench_phase2(c: &mut Criterion) {
    let (s, t, _) = workloads::pair(2048, 23);
    let phase1 = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(2, 4, 4));
    let regions = phase1.regions;
    let mut g = c.benchmark_group("phase2_host_time");
    g.sample_size(10);
    g.bench_function("dsm_scattered", |b| {
        b.iter(|| black_box(phase2_scattered(&s, &t, &regions, &SC, 4).unwrap()));
    });
    g.bench_function("pool", |b| {
        b.iter(|| black_box(phase2_scattered_pool(&s, &t, &regions, &SC, 4).unwrap()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_phase1_variants,
    bench_preprocess,
    bench_phase2
);
criterion_main!(benches);
