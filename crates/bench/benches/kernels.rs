//! Criterion micro-benchmarks of the alignment kernels on the host
//! hardware (real time, not the era model): per-cell rates of the plain
//! SW recurrence, the striped SIMD score kernels (scalar vs SSE2/AVX2
//! GCUPS), the heuristic cell, global alignment, Hirschberg, the
//! Section-6 reverse recovery, and the BlastN baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomedsm_bench::workloads;
use genomedsm_core::affine::{nw_affine_align, sw_affine_score, AffineScoring};
use genomedsm_core::heuristic::{heuristic_align, HeuristicParams};
use genomedsm_core::hirschberg::hirschberg_align;
use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::matrix::nw_align;
use genomedsm_core::reverse::reverse_align_best;
use genomedsm_core::Scoring;
use std::hint::black_box;

const SC: Scoring = Scoring::paper();

fn bench_linear_sw(c: &mut Criterion) {
    let mut g = c.benchmark_group("linear_sw");
    g.sample_size(10);
    for len in [512usize, 2048] {
        let (s, t, _) = workloads::pair(len, 11);
        g.throughput(Throughput::Elements((len * len) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(sw_score_linear(&s, &t, &SC, i32::MAX)));
        });
    }
    g.finish();
}

/// GCUPS rows for the vectorized kernel layer: the scalar oracle plus
/// every striped engine this host can run (portable, SSE2, AVX2), on the
/// same score-only workload (`i32::MAX` threshold disables hit counting).
fn bench_striped_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_kernels");
    g.sample_size(10);
    for len in [2048usize, 10_000] {
        let (s, t, _) = workloads::pair(len, 31);
        g.throughput(Throughput::Elements((len * len) as u64));
        for kernel in genomedsm_kernels::available_kernels() {
            g.bench_with_input(BenchmarkId::new(kernel.name(), len), &len, |b, _| {
                b.iter(|| black_box(kernel.score(&s, &t, &SC, i32::MAX)));
            });
        }
    }
    g.finish();
}

fn bench_heuristic_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("heuristic_kernel");
    g.sample_size(10);
    let params = HeuristicParams::default_for_dna();
    for len in [512usize, 2048] {
        let (s, t, _) = workloads::pair(len, 12);
        g.throughput(Throughput::Elements((len * len) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(heuristic_align(&s, &t, &SC, &params)));
        });
    }
    g.finish();
}

fn bench_global_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_alignment");
    g.sample_size(10);
    let (s, t, _) = workloads::pair(512, 13);
    g.throughput(Throughput::Elements((512 * 512) as u64));
    g.bench_function("nw_full_matrix", |b| {
        b.iter(|| black_box(nw_align(&s, &t, &SC)));
    });
    g.bench_function("hirschberg", |b| {
        b.iter(|| black_box(hirschberg_align(&s, &t, &SC)));
    });
    g.finish();
}

fn bench_reverse_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("reverse_recovery");
    g.sample_size(10);
    for len in [1024usize, 4096] {
        let (s, t, _) = workloads::pair(len, 14);
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(reverse_align_best(&s, &t, &SC)));
        });
    }
    g.finish();
}

fn bench_blast(c: &mut Criterion) {
    let mut g = c.benchmark_group("blastn_baseline");
    g.sample_size(10);
    for len in [2048usize, 8192] {
        let (s, t, _) = workloads::pair(len, 15);
        let blast = genomedsm_blast::BlastN::default();
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(blast.search(&s, &t).expect("clean DNA input")));
        });
    }
    g.finish();
}

fn bench_affine(c: &mut Criterion) {
    let mut g = c.benchmark_group("affine_gotoh");
    g.sample_size(10);
    let aff = AffineScoring::dna();
    for len in [512usize, 2048] {
        let (s, t, _) = workloads::pair(len, 16);
        g.throughput(Throughput::Elements((len * len) as u64));
        g.bench_with_input(BenchmarkId::new("sw_score", len), &len, |b, _| {
            b.iter(|| black_box(sw_affine_score(&s, &t, &aff)));
        });
    }
    let (s, t, _) = workloads::pair(512, 17);
    g.bench_function("nw_align_512", |b| {
        b.iter(|| black_box(nw_affine_align(&s, &t, &aff)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linear_sw,
    bench_striped_kernels,
    bench_heuristic_kernel,
    bench_global_alignment,
    bench_reverse_recovery,
    bench_blast,
    bench_affine
);
criterion_main!(benches);
