//! Criterion benchmarks of the DSM substrate's host-side primitive costs:
//! page fetch, diff flush (unlock), lock round trip, cv hand-off, and the
//! barrier, plus the byte-diff kernel itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genomedsm_dsm::page::{apply_patches, diff_bytes};
use genomedsm_dsm::{DsmConfig, DsmSystem, NetworkModel};
use std::hint::black_box;

fn config(n: usize) -> DsmConfig {
    DsmConfig::new(n).network(NetworkModel::zero())
}

fn bench_page_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsm_primitives");
    g.sample_size(10);
    g.bench_function("page_fetch_x100", |b| {
        b.iter(|| {
            DsmSystem::run(config(2), |node| {
                let v = node.alloc_vec::<i64>(100 * 512);
                node.barrier();
                // Touch 100 distinct pages.
                let mut sum = 0i64;
                for k in 0..100 {
                    sum += node.vec_get(&v, k * 512);
                }
                node.barrier();
                black_box(sum)
            })
        });
    });
    g.bench_function("lock_roundtrip_x100", |b| {
        b.iter(|| {
            DsmSystem::run(config(2), |node| {
                for _ in 0..100 {
                    node.lock(3);
                    node.unlock(3);
                }
                node.barrier();
            })
        });
    });
    g.bench_function("cv_handoff_x100", |b| {
        b.iter(|| {
            DsmSystem::run(config(2), |node| {
                if node.id() == 0 {
                    for _ in 0..100 {
                        node.setcv(0);
                        node.waitcv(1);
                    }
                } else {
                    for _ in 0..100 {
                        node.waitcv(0);
                        node.setcv(1);
                    }
                }
                node.barrier();
            })
        });
    });
    for nprocs in [2usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("barrier_x100", nprocs),
            &nprocs,
            |b, &n| {
                b.iter(|| {
                    DsmSystem::run(config(n), |node| {
                        for _ in 0..100 {
                            node.barrier();
                        }
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_diff_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_kernel");
    g.sample_size(20);
    let twin = vec![0u8; 4096];
    let mut sparse = twin.clone();
    for i in (0..4096).step_by(97) {
        sparse[i] = 1;
    }
    let dense = vec![1u8; 4096];
    g.bench_function("diff_sparse_4k", |b| {
        b.iter(|| black_box(diff_bytes(&twin, &sparse)));
    });
    g.bench_function("diff_dense_4k", |b| {
        b.iter(|| black_box(diff_bytes(&twin, &dense)));
    });
    let patches = diff_bytes(&twin, &sparse);
    g.bench_function("apply_sparse_4k", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| {
                apply_patches(&mut page, &patches);
                black_box(page)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_page_fetch, bench_diff_kernel);
criterion_main!(benches);
