//! A minimal Rust token-surface scanner.
//!
//! The lint rules need to know where *code* is — as opposed to comments,
//! string/char literals, and doc text — and what each comment says. A
//! full parse is unnecessary (and the build is hermetic, so there is no
//! `syn` to lean on): a single pass tracking the literal/comment state is
//! enough. [`scan`] returns the source with every comment body and
//! literal interior blanked to spaces (newlines preserved, so byte
//! offsets and line numbers still line up) plus the per-line comment
//! text for the SAFETY-comment rule.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings `r#"…"#` (any hash depth, `b`/`br` prefixes),
//! char literals (including escapes), and the char-vs-lifetime
//! ambiguity (`'a'` is a literal, `'a` in `&'a str` is not).

/// Result of scanning one source file.
pub struct Scanned {
    /// The source with comments and literal interiors blanked to spaces.
    /// Same byte length and line structure as the input.
    pub code: String,
    /// For each 0-based line, the concatenation of all comment text
    /// appearing on that line (empty if none).
    pub comments: Vec<String>,
}

impl Scanned {
    /// 0-based line number of byte offset `at` in `code`.
    pub fn line_of(&self, at: usize) -> usize {
        self.code.as_bytes()[..at]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

/// True if `b` can be part of an identifier.
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte length of the UTF-8 sequence starting with leading byte `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scans `src`, blanking comments and literal interiors.
pub fn scan(src: &str) -> Scanned {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut code: Vec<u8> = Vec::with_capacity(n);
    let line_count = src.lines().count().max(1);
    let mut comments: Vec<String> = vec![String::new(); line_count + 1];
    let mut line = 0usize;

    // Pushes `b` through to the masked output, tracking line numbers.
    let push = |out: &mut Vec<u8>, b: u8, line: &mut usize| {
        if b == b'\n' {
            *line += 1;
            out.push(b'\n');
        } else {
            out.push(b);
        }
    };
    // Blanks `b`: newlines survive, everything else becomes a space.
    let blank = |out: &mut Vec<u8>, b: u8, line: &mut usize| {
        if b == b'\n' {
            *line += 1;
            out.push(b'\n');
        } else {
            out.push(b' ');
        }
    };

    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            let start = i;
            while i < n && bytes[i] != b'\n' {
                blank(&mut code, bytes[i], &mut line);
                i += 1;
            }
            if let Ok(text) = std::str::from_utf8(&bytes[start..i]) {
                comments[line].push_str(text);
                comments[line].push(' ');
            }
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let start = i;
            let mut depth = 0usize;
            let text_start_line = line;
            while i < n {
                if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut code, bytes[i], &mut line);
                    blank(&mut code, bytes[i + 1], &mut line);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut code, bytes[i], &mut line);
                    blank(&mut code, bytes[i + 1], &mut line);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut code, bytes[i], &mut line);
                    i += 1;
                }
            }
            if let Ok(text) = std::str::from_utf8(&bytes[start..i]) {
                for (k, part) in text.split('\n').enumerate() {
                    comments[text_start_line + k].push_str(part);
                    comments[text_start_line + k].push(' ');
                }
            }
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#), only when `r`/`b` starts a
        // token (not the tail of an identifier).
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident(bytes[i - 1])) {
            let mut j = i;
            if bytes[j] == b'b' && j + 1 < n && bytes[j + 1] == b'r' {
                j += 1;
            }
            if bytes[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && bytes[k] == b'"' {
                    // Emit the prefix as code, blank the interior.
                    while i <= k {
                        push(&mut code, bytes[i], &mut line);
                        i += 1;
                    }
                    'raw: while i < n {
                        if bytes[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && bytes[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    push(&mut code, bytes[i], &mut line);
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        blank(&mut code, bytes[i], &mut line);
                        i += 1;
                    }
                    continue;
                }
            }
            // Plain byte string b"…" falls through to the `"` case below
            // on its quote; emit the prefix byte as code.
            push(&mut code, b, &mut line);
            i += 1;
            continue;
        }
        // String literal.
        if b == b'"' {
            push(&mut code, b, &mut line);
            i += 1;
            while i < n {
                if bytes[i] == b'\\' && i + 1 < n {
                    blank(&mut code, bytes[i], &mut line);
                    blank(&mut code, bytes[i + 1], &mut line);
                    i += 2;
                } else if bytes[i] == b'"' {
                    push(&mut code, bytes[i], &mut line);
                    i += 1;
                    break;
                } else {
                    blank(&mut code, bytes[i], &mut line);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                // Multi-byte scalar like 'é' or '→': the closing quote sits
                // after the whole UTF-8 sequence, not at i + 2.
                Some(c) if c >= 0x80 => bytes.get(i + 1 + utf8_len(c)).copied() == Some(b'\''),
                Some(c) if is_ident(c) => bytes.get(i + 2).copied() == Some(b'\''),
                Some(_) => bytes.get(i + 2).copied() == Some(b'\''),
                None => false,
            };
            if is_char {
                push(&mut code, b, &mut line);
                i += 1;
                while i < n {
                    if bytes[i] == b'\\' && i + 1 < n {
                        blank(&mut code, bytes[i], &mut line);
                        blank(&mut code, bytes[i + 1], &mut line);
                        i += 2;
                    } else if bytes[i] == b'\'' {
                        push(&mut code, bytes[i], &mut line);
                        i += 1;
                        break;
                    } else {
                        blank(&mut code, bytes[i], &mut line);
                        i += 1;
                    }
                }
            } else {
                // Lifetime: keep the quote, code continues normally.
                push(&mut code, b, &mut line);
                i += 1;
            }
            continue;
        }
        push(&mut code, b, &mut line);
        i += 1;
    }

    comments.truncate(line + 1);
    Scanned {
        code: String::from_utf8(code).unwrap_or_default(),
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_but_captured() {
        let s = scan("let x = 1; // SAFETY: fine\nlet y = 2;\n");
        assert!(!s.code.contains("SAFETY"));
        assert!(s.comments[0].contains("SAFETY: fine"));
        assert!(s.comments[1].is_empty());
    }

    #[test]
    fn strings_are_blanked() {
        let s = scan(r#"let x = "call .unwrap() now"; x.len();"#);
        assert!(!s.code.contains(".unwrap()"));
        assert!(s.code.contains("x.len()"));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let s = scan("let a = r#\"unsafe \"quoted\" here\"#; let b = \"esc \\\" unsafe\";");
        assert!(!s.code.contains("unsafe"), "{}", s.code);
        assert!(s.code.contains("let b"));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let s = scan("let c = '\"'; let d: &'static str = \"x\"; let e = '\\n';");
        assert!(s.code.contains("&'static str"));
        assert!(s.code.contains("let e"));
    }

    #[test]
    fn multibyte_char_literals_are_not_lifetimes() {
        // 'é' is two UTF-8 bytes, '→' is three: the closing quote is not
        // at i + 2, and mistaking the literal for a lifetime would leave
        // the closing quote to poison the rest of the line.
        let s = scan("let a = 'é'; let b = '→'; let c = '𝄞'; keep_me();");
        assert!(s.code.contains("keep_me()"), "{}", s.code);
        assert!(!s.code.contains('é'), "{}", s.code);
        assert!(!s.code.contains('→'), "{}", s.code);
    }

    #[test]
    fn byte_literals_are_blanked() {
        let s = scan("let a = b'x'; let b = b\"unsafe bytes\"; let c = br#\"unsafe raw\"#; end();");
        assert!(!s.code.contains("unsafe"), "{}", s.code);
        assert!(s.code.contains("end()"), "{}", s.code);
    }

    #[test]
    fn raw_identifiers_survive() {
        let s = scan("let r#match = 1; r#match + 1;");
        assert!(s.code.contains("r#match"), "{}", s.code);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner unsafe */ SAFETY: yes */ let x = 1;");
        assert!(!s.code.contains("unsafe"));
        assert!(s.code.contains("let x = 1;"));
        assert!(s.comments[0].contains("SAFETY: yes"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* c1\nc2 */\nb\n";
        let s = scan(src);
        assert_eq!(s.code.matches('\n').count(), src.matches('\n').count());
        assert_eq!(s.line_of(s.code.find('b').unwrap()), 3);
    }
}
