//! Static concurrency-hygiene lints for the GenomeDSM workspace.
//!
//! A `syn`-style source-level linter, adapted to the hermetic build (no
//! registry, so no real `syn`): a small token-surface scanner
//! ([`lexer`]) distinguishes code from comments and literals, and the
//! rule engine ([`rules`]) enforces the workspace policy on top of it —
//! SAFETY comments on every `unsafe`, no `unwrap()`/`expect()`, no
//! `Ordering::Relaxed`, no `thread::sleep`, and no
//! `todo!`/`unimplemented!`/`dbg!` in the protocol crates
//! (`genomedsm-dsm`, `genomedsm-strategies`, `genomedsm-batch`,
//! `genomedsm-index`, `genomedsm-serve`), all outside test code.
//!
//! Run it with `cargo run -p genomedsm-lint` (CI runs it in the `verify`
//! job). There is **no allowlist**: the workspace itself must be clean,
//! and the `repo_clean` integration test keeps it that way.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{Finding, RuleScope};

use std::path::{Path, PathBuf};

/// Crates whose `src/` is subject to the protocol rules (`no-unwrap`,
/// `no-relaxed`, `no-sleep`, `no-todo`) in addition to `safety-comment`.
pub const PROTOCOL_CRATES: &[&str] = &["dsm", "strategies", "batch", "index", "serve"];

/// Recursively collects `.rs` files under `dir` (sorted for determinism).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every first-party source file of the workspace rooted at `root`:
/// the root package's `src/` and each `crates/*/src`. Vendored dependency
/// shims (`vendor/`), `tests/`, and `benches/` are out of scope.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut targets: Vec<(PathBuf, RuleScope)> =
        vec![(root.join("src"), RuleScope { protocol: false })];
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let protocol = PROTOCOL_CRATES.contains(&name);
        targets.push((dir.join("src"), RuleScope { protocol }));
    }

    let mut findings = Vec::new();
    for (src_dir, scope) in targets {
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        for file in files {
            let src = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file);
            findings.extend(rules::lint_source(rel, &src, scope));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}
