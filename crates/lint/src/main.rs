//! Workspace lint driver: `cargo run -p genomedsm-lint [ROOT]`.
//!
//! Lints the GenomeDSM workspace (defaulting to the workspace this
//! binary was built from) and exits non-zero if any finding survives.
//! There is no allowlist — a finding means the source must change.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    let findings = match genomedsm_lint::lint_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("genomedsm-lint: failed to walk {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("genomedsm-lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("genomedsm-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
