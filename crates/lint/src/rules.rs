//! The lint rules and the per-file rule engine.
//!
//! Four rules, mirroring the workspace's concurrency-hygiene policy:
//!
//! * **safety-comment** (every first-party file): each `unsafe` keyword
//!   must carry a `// SAFETY:` comment on the same line or the contiguous
//!   comment/attribute block directly above it (a `# Safety` rustdoc
//!   section on an `unsafe fn` also counts).
//! * **no-unwrap** (protocol crates only): no `.unwrap()` / `.expect(`
//!   outside test code — protocol errors must propagate as typed
//!   `DsmError`s or panic through an explicit `panic!`/`unreachable!`
//!   with protocol context. `unwrap_or*` / `expect_err` are fine.
//! * **no-relaxed** (protocol crates only): `Ordering::Relaxed` must not
//!   appear at all — cross-thread handoff flags need acquire/release
//!   edges, and no counter in these crates is hot enough to justify the
//!   footgun.
//! * **no-sleep** (protocol crates only): `thread::sleep` in protocol
//!   code hides lost-wakeup bugs behind timing; blocking must use the
//!   channel/cv primitives.
//! * **no-todo** (protocol crates only): `todo!`, `unimplemented!`, and
//!   `dbg!` must not ship in protocol `src/` — a stubbed protocol path
//!   is a runtime panic waiting for a schedule, and `dbg!` output
//!   corrupts the line-oriented serve protocol on shared stderr.
//!
//! Test code is excluded structurally: files under `tests/` and
//! `benches/` are never walked, and `#[cfg(test)]` items inside `src/`
//! are span-skipped by brace matching on the masked source.

use crate::lexer::{scan, Scanned};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule slug (`safety-comment`, `no-unwrap`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    /// The `no-unwrap` / `no-relaxed` / `no-sleep` protocol rules.
    pub protocol: bool,
}

/// Byte ranges of `#[cfg(test)]`-gated items in masked code.
///
/// Public so structural consumers (`genomedsm-analyze`) share exactly
/// the lint engine's notion of what counts as test code.
pub fn test_spans(code: &str) -> Vec<Range<usize>> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = code[i..].find("#[") {
        let attr_start = i + rel;
        // Parse the attribute's balanced brackets.
        let mut j = attr_start + 1;
        let mut depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr = &code[attr_start..=j.min(bytes.len() - 1)];
        i = j + 1;
        if !(attr.contains("cfg") && has_word(attr, "test")) {
            continue;
        }
        // Skip whitespace and any further attributes, then span the item:
        // a `{…}` block (brace-matched) or up to the first `;`.
        let mut k = i;
        loop {
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if code[k..].starts_with("#[") {
                let mut d = 0usize;
                while k < bytes.len() {
                    match bytes[k] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            break;
        }
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => {
                    brace_depth += 1;
                    entered = true;
                }
                b'}' => {
                    brace_depth -= 1;
                    if entered && brace_depth == 0 {
                        k += 1;
                        break;
                    }
                }
                b';' if !entered => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        spans.push(attr_start..k);
        i = k;
    }
    spans
}

fn in_spans(spans: &[Range<usize>], at: usize) -> bool {
    spans.iter().any(|s| s.contains(&at))
}

/// Whole-word occurrences of `word` in `hay` (ASCII identifier bounds).
fn word_positions(hay: &str, word: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = hay[i..].find(word) {
        let at = i + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        i = at + word.len();
    }
    out
}

fn has_word(hay: &str, word: &str) -> bool {
    !word_positions(hay, word).is_empty()
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True if a masked code line is "transparent" for the SAFETY
/// scan-upward: blank (comment-only lines mask to blank) or attribute.
fn is_transparent(code_line: &str) -> bool {
    let t = code_line.trim();
    t.is_empty() || (t.starts_with('#') && t.ends_with(']'))
}

/// Does the `unsafe` at `line` (0-based) have a justification comment?
///
/// Accepted: a `SAFETY:` (or `# Safety` rustdoc) comment on the `unsafe`
/// line itself, on the nearest code line above, or anywhere in the
/// contiguous comment/attribute/blank block directly above. The first
/// code line above ends the walk, so a SAFETY comment cannot leak past
/// intervening statements to sanction an unrelated `unsafe`.
fn unsafe_is_documented(s: &Scanned, code_lines: &[&str], line: usize) -> bool {
    let says = |l: usize| {
        s.comments
            .get(l)
            .is_some_and(|c| c.contains("SAFETY:") || c.contains("# Safety"))
    };
    if says(line) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        if says(l) {
            return true;
        }
        if !is_transparent(code_lines.get(l).copied().unwrap_or("")) {
            return false;
        }
    }
    false
}

/// Lints one file's source text.
pub fn lint_source(file: &std::path::Path, src: &str, scope: RuleScope) -> Vec<Finding> {
    let s = scan(src);
    let code_lines: Vec<&str> = s.code.split('\n').collect();
    let skip = test_spans(&s.code);
    let mut findings = Vec::new();
    let mut push = |at: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: file.to_path_buf(),
            line: s.line_of(at) + 1,
            rule,
            message,
        });
    };

    for at in word_positions(&s.code, "unsafe") {
        if in_spans(&skip, at) {
            continue;
        }
        let line = s.line_of(at);
        if !unsafe_is_documented(&s, &code_lines, line) {
            push(
                at,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment (or `# Safety` rustdoc) on or \
                 directly above it"
                    .into(),
            );
        }
    }

    if scope.protocol {
        for pat in [".unwrap()", ".expect("] {
            let mut i = 0usize;
            while let Some(rel) = s.code[i..].find(pat) {
                let at = i + rel;
                i = at + pat.len();
                if in_spans(&skip, at) {
                    continue;
                }
                push(
                    at,
                    "no-unwrap",
                    format!(
                        "`{pat}` in protocol code — propagate a typed DsmError (or use an \
                         explicit panic!/unreachable! stating the protocol invariant)",
                        pat = pat.trim_end_matches('(')
                    ),
                );
            }
        }
        for at in word_positions(&s.code, "Relaxed") {
            if in_spans(&skip, at) {
                continue;
            }
            push(
                at,
                "no-relaxed",
                "`Ordering::Relaxed` in protocol code — cross-thread handoffs need \
                 acquire/release edges"
                    .into(),
            );
        }
        let mut i = 0usize;
        while let Some(rel) = s.code[i..].find("thread::sleep") {
            let at = i + rel;
            i = at + "thread::sleep".len();
            if in_spans(&skip, at) {
                continue;
            }
            push(
                at,
                "no-sleep",
                "`thread::sleep` in protocol code — blocking must go through the \
                 channel/cv primitives, not timing"
                    .into(),
            );
        }
        for mac in ["todo", "unimplemented", "dbg"] {
            for at in word_positions(&s.code, mac) {
                if in_spans(&skip, at) {
                    continue;
                }
                // Only the macro invocation `name!` is banned; the bare
                // word (e.g. in an identifier path) is not.
                if s.code.as_bytes().get(at + mac.len()).copied() != Some(b'!') {
                    continue;
                }
                push(
                    at,
                    "no-todo",
                    format!(
                        "`{mac}!` in protocol code — stubs and debug prints must not \
                         ship on protocol paths"
                    ),
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const PROTO: RuleScope = RuleScope { protocol: true };
    const PLAIN: RuleScope = RuleScope { protocol: false };

    fn lint(src: &str, scope: RuleScope) -> Vec<Finding> {
        lint_source(Path::new("x.rs"), src, scope)
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = "
// SAFETY: bounds checked above.
let x = unsafe { *p };
";
        assert!(lint(src, PLAIN).is_empty());
    }

    #[test]
    fn same_line_safety_comment_passes() {
        let src = "let x = unsafe { *p }; // SAFETY: p is valid\n";
        assert!(lint(src, PLAIN).is_empty());
    }

    #[test]
    fn safety_doc_section_passes_through_attributes() {
        let src = "
/// Does things.
///
/// # Safety
/// Caller must ensure `p` is valid.
#[target_feature(enable = \"avx2\")]
pub unsafe fn f(p: *const u8) {}
";
        assert!(lint(src, PLAIN).is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_flagged_with_line() {
        let src = "fn f(p: *const u8) {\n    let x = unsafe { *p };\n}\n";
        let f = lint(src, PLAIN);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unrelated_comment_above_does_not_count() {
        let src = "// reads the byte\nlet x = unsafe { *p };\n";
        assert_eq!(lint(src, PLAIN).len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "let s = \"unsafe\"; // the word unsafe in prose\n";
        assert!(lint(src, PLAIN).is_empty());
    }

    #[test]
    fn unwrap_and_expect_flagged_only_in_protocol_scope() {
        let src = "fn f() { x.unwrap(); y.expect(\"reason\"); }\n";
        assert!(lint(src, PLAIN).is_empty());
        let f = lint(src, PROTO);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "no-unwrap"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(id); x.unwrap_or_default(); \
                   r.expect_err(\"no\"); }\n";
        assert!(lint(src, PROTO).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
fn live() {}

#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); let y = unsafe { *p }; std::thread::sleep(d); }
}
";
        assert!(lint(src, PROTO).is_empty());
    }

    #[test]
    fn code_after_a_test_mod_is_still_linted() {
        let src = "
#[cfg(test)]
mod tests { fn t() { x.unwrap(); } }

fn live() { y.unwrap(); }
";
        let f = lint(src, PROTO);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn relaxed_and_sleep_flagged_in_protocol_scope() {
        let src = "fn f() { a.store(1, Ordering::Relaxed); std::thread::sleep(d); }\n";
        let f = lint(src, PROTO);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "no-relaxed");
        assert_eq!(f[1].rule, "no-sleep");
    }

    #[test]
    fn acquire_release_orderings_pass() {
        let src = "fn f() { a.store(1, Ordering::Release); b.load(Ordering::Acquire); }\n";
        assert!(lint(src, PROTO).is_empty());
    }

    #[test]
    fn todo_macros_flagged_only_in_protocol_scope() {
        let src =
            "fn f() { todo!(\"later\"); }\nfn g() { unimplemented!() }\nfn h() { dbg!(x); }\n";
        assert!(lint(src, PLAIN).is_empty());
        let f = lint(src, PROTO);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|f| f.rule == "no-todo"));
        assert_eq!((f[0].line, f[1].line, f[2].line), (1, 2, 3));
    }

    #[test]
    fn todo_word_without_bang_passes() {
        let src = "fn f() { let todo = 1; mark_todo(todo); } // TODO: prose is fine\n";
        assert!(lint(src, PROTO).is_empty());
    }

    #[test]
    fn todo_in_cfg_test_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn t() { todo!(); dbg!(1); } }\n";
        assert!(lint(src, PROTO).is_empty());
    }

    #[test]
    fn cfg_feature_strings_do_not_trigger_test_skip() {
        let src = "#[cfg(feature = \"test-utils\")]\nfn f() { x.unwrap(); }\n";
        let f = lint(src, PROTO);
        assert_eq!(f.len(), 1, "feature strings are masked, not cfg(test)");
    }
}
