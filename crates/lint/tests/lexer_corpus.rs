//! Runs the lexer over the fixture corpus in `tests/corpus/`.
//!
//! Each corpus file is plain data (subdirectories of `tests/` are not
//! compiled as test targets) carrying a self-describing contract:
//! every identifier matching `MUST_SURVIVE_<word>` sits in code
//! position and must remain in [`genomedsm_lint::lexer::scan`]'s masked
//! output, and every identifier matching `MUST_VANISH_<word>` sits
//! inside a comment or literal and must be blanked. Marker mentions in
//! prose use a trailing `*` so they never match the identifier pattern.

use genomedsm_lint::lexer::scan;
use std::path::PathBuf;

/// Extracts every maximal identifier starting with `prefix` from `src`.
fn markers(src: &str, prefix: &str) -> Vec<String> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = src.get(i..).and_then(|s| s.find(prefix)) {
        let start = i + pos;
        // Must start a token, not be the tail of a longer identifier.
        let standalone =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start + prefix.len();
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        // Require at least one word char after the prefix (skips prose
        // mentions written as `PREFIX_*`).
        if standalone && end > start + prefix.len() {
            out.push(src[start..end].to_string());
        }
        i = end.max(start + 1);
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn corpus_contract_holds() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "corpus should have several files");

    for file in files {
        let src = std::fs::read_to_string(&file).expect("read corpus file");
        let s = scan(&src);
        let name = file.file_name().unwrap().to_string_lossy().into_owned();

        // The mask preserves byte length and line structure exactly.
        assert_eq!(s.code.len(), src.len(), "{name}: masked length changed");
        assert_eq!(
            s.code.matches('\n').count(),
            src.matches('\n').count(),
            "{name}: line structure changed"
        );

        let survive = markers(&src, "MUST_SURVIVE_");
        let vanish = markers(&src, "MUST_VANISH_");
        assert!(!survive.is_empty(), "{name}: no MUST_SURVIVE markers");
        assert!(!vanish.is_empty(), "{name}: no MUST_VANISH markers");
        for m in &survive {
            assert!(
                s.code.contains(m.as_str()),
                "{name}: lexer blanked code token {m}"
            );
        }
        for m in &vanish {
            assert!(
                !s.code.contains(m.as_str()),
                "{name}: lexer leaked literal/comment token {m}"
            );
        }
    }
}

#[test]
fn comment_text_is_captured_per_line() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let src = std::fs::read_to_string(dir.join("comments.rs")).expect("read comments corpus");
    let s = scan(&src);
    let joined = s.comments.join("\n");
    assert!(joined.contains("MUST_VANISH_line_comment"));
    assert!(joined.contains("MUST_VANISH_doc_comment"));
    assert!(joined.contains("MUST_VANISH_nested_block"));
}
