// Lexer corpus: comments. MUST_VANISH_* tokens below live only inside
// comment bodies and string escapes; MUST_SURVIVE_* are code.

// MUST_VANISH_line_comment
/// MUST_VANISH_doc_comment
//! is not valid here but the scanner treats it as a line comment anyway

/* MUST_VANISH_block /* MUST_VANISH_nested_block */ still in the outer */

fn MUST_SURVIVE_fn_between_comments() {
    let s = "escaped quote \" then MUST_VANISH_in_string";
    let t = "backslash at end \\";
    MUST_SURVIVE_call(s, t); // trailing MUST_VANISH_trailing
}

/* unterminated-looking content with a lone " quote */
fn MUST_SURVIVE_last() {}
