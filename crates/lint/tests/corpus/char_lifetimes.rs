// Lexer corpus: char literals vs lifetime ticks.
//
// MUST_SURVIVE_* tokens are code; MUST_VANISH_* tokens sit inside
// literals/comments. See lexer_corpus.rs for the marker contract.

fn MUST_SURVIVE_lifetimes<'a>(x: &'a str) -> &'a str {
    // Lifetimes and loop labels keep the tick in code position.
    'outer: loop {
        break 'outer;
    }
    let _: &'static str = x;
    x
}

fn MUST_SURVIVE_chars() {
    let a = 'x';
    let b = '\'';
    let c = '\\';
    let d = '"';
    // Multi-byte scalars: closing quote is more than 2 bytes away.
    let e = 'é';
    let f = '→';
    let g = '𝄞';
    let h = '\u{1F600}';
    MUST_SURVIVE_after_chars(a, b, c, d, e, f, g, h);
}

fn MUST_SURVIVE_after_chars() {
    // A char literal containing a quote char must not open a string:
    // everything after `'"'` here is still code. MUST_VANISH_char_prose
    let q = '"';
    let s = "MUST_VANISH_in_string after the quote char";
    let MUST_SURVIVE_post_quote = (q, s);
    let _ = MUST_SURVIVE_post_quote;
}
