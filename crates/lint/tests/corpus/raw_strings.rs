// Lexer corpus: raw strings and byte/byte-string literals.
//
// Tokens named MUST_SURVIVE_* sit in code position and must remain in
// the masked output; tokens named MUST_VANISH_* sit inside literals or
// comments and must be blanked. The corpus runner (lexer_corpus.rs)
// greps this file for both marker families.

fn MUST_SURVIVE_plain() {
    let a = r"MUST_VANISH_raw_plain";
    let b = r#"MUST_VANISH_raw_one_hash "quoted" inside"#;
    let c = r##"MUST_VANISH_raw_two_hash ends with "# not yet"##;
    let d = b"MUST_VANISH_byte_string";
    let e = br#"MUST_VANISH_byte_raw"#;
    let f = b'\'';
    let g = b'x';
    MUST_SURVIVE_after_literals(a, b, c, d, e, f, g);
}

fn MUST_SURVIVE_after_literals() {
    // A raw identifier is code, not a raw string.
    let r#type = 0;
    let MUST_SURVIVE_raw_ident = r#type;
    // `br` as identifier tail must not start a raw string: `abr` is code.
    let abr = MUST_SURVIVE_raw_ident;
    let _ = abr;
}
