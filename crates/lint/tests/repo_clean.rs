//! The workspace must lint clean — with zero allowlist entries.

use std::path::PathBuf;

#[test]
fn workspace_has_no_lint_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = genomedsm_lint::lint_workspace(&root).expect("walk workspace");
    for finding in &findings {
        eprintln!("{finding}");
    }
    assert!(
        findings.is_empty(),
        "{} lint finding(s); see stderr",
        findings.len()
    );
}
