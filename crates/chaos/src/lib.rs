//! Deterministic fault injection for the simulated DSM cluster.
//!
//! The paper's JIAJIA DSM ran over UDP on an 8-machine cluster, where
//! message loss, duplication, reordering, and machine failure are facts of
//! life. This crate supplies the *adversary* for the reliability layer in
//! `genomedsm-dsm`: a [`FaultPlan`] describes per-link fault rates and
//! scheduled node crashes, and [`SeededFaults`] turns it into a
//! [`FaultInjector`] whose every verdict is a pure hash of
//! `(seed, link, sequence number, attempt)` — so a chaos run is exactly
//! reproducible from its seed, regardless of host thread scheduling.
//!
//! ```
//! use genomedsm_chaos::{FaultPlan, SeededFaults};
//! use genomedsm_dsm::DsmConfig;
//! use std::sync::Arc;
//!
//! let plan = FaultPlan::paper_chaos(42); // 5% drop + dup + reorder + corrupt
//! let config = DsmConfig::new(4).faults(Arc::new(SeededFaults::new(plan, 4)));
//! # let _ = config;
//! ```

#![warn(missing_docs)]

use genomedsm_dsm::{FaultInjector, LinkMsg, TransmitFate};
use std::time::Duration;

/// Fault rates of one directed link (all probabilities in `[0, 1]`).
///
/// The three delivery faults are resolved in order per transmission
/// attempt: first a loss draw (`drop`, then `corrupt`), and for surviving
/// copies independent draws for duplication and reordering delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a copy is silently lost.
    pub drop: f64,
    /// Probability a copy arrives bit-corrupted (rejected by checksum,
    /// behaves like a loss but is counted separately).
    pub corrupt: f64,
    /// Probability a delivered copy is duplicated.
    pub duplicate: f64,
    /// Probability a delivered copy is held back in a queue, arriving up
    /// to [`LinkFaults::max_extra_delay`] late — which reorders it in
    /// virtual time against messages sent after it.
    pub reorder: f64,
    /// Maximum extra queueing delay applied to reordered copies.
    pub max_extra_delay: Duration,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub fn none() -> Self {
        Self {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_extra_delay: Duration::ZERO,
        }
    }

    /// Loss-only link with the given drop probability.
    pub fn drop_rate(p: f64) -> Self {
        Self {
            drop: p,
            ..Self::none()
        }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate {p} outside [0, 1]"));
            }
        }
        if self.drop + self.corrupt > 1.0 {
            return Err(format!(
                "drop ({}) + corrupt ({}) exceed 1",
                self.drop, self.corrupt
            ));
        }
        Ok(())
    }
}

/// A scheduled fail-stop crash of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The machine that fails.
    pub node: usize,
    /// Strategy-defined work-unit ordinal after which it fails (for
    /// `pre_process`: the number of chunks completed).
    pub after_unit: u64,
}

/// A scheduled rejoin of a previously crashed worker (elastic
/// membership: the node announces itself after a spell of virtual
/// downtime and is readmitted at the next workload boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinEvent {
    /// The crashed machine that comes back.
    pub node: usize,
    /// Work units of virtual downtime before it announces itself.
    pub after_unit: u64,
}

/// A complete, reproducible description of a chaos experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fate stream.
    pub seed: u64,
    /// Fault rates applied to every inter-machine link.
    pub link: LinkFaults,
    /// Overrides for specific directed machine pairs `(from, to)`.
    pub per_link: Vec<((usize, usize), LinkFaults)>,
    /// Scheduled node crashes.
    pub crashes: Vec<CrashEvent>,
    /// Scheduled rejoins of crashed nodes.
    pub rejoins: Vec<RejoinEvent>,
}

impl FaultPlan {
    /// A plan with no faults at all (useful as a parse/CLI default).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            link: LinkFaults::none(),
            per_link: Vec::new(),
            crashes: Vec::new(),
            rejoins: Vec::new(),
        }
    }

    /// Uniform loss: every inter-machine link drops copies with
    /// probability `p`.
    pub fn drop_rate(seed: u64, p: f64) -> Self {
        Self {
            link: LinkFaults::drop_rate(p),
            ..Self::quiet(seed)
        }
    }

    /// The reference chaos mix used by the test suite and the bench
    /// harness: 5% drop, 1% corruption, 5% duplication, 5% reordering
    /// with up to 2 ms of extra queueing delay — harsh for a LAN, yet
    /// every protocol run must still produce bit-identical results.
    pub fn paper_chaos(seed: u64) -> Self {
        Self {
            link: LinkFaults {
                drop: 0.05,
                corrupt: 0.01,
                duplicate: 0.05,
                reorder: 0.05,
                max_extra_delay: Duration::from_millis(2),
            },
            ..Self::quiet(seed)
        }
    }

    /// Adds a scheduled crash (builder-style).
    pub fn with_crash(mut self, node: usize, after_unit: u64) -> Self {
        self.crashes.push(CrashEvent { node, after_unit });
        self
    }

    /// Adds a scheduled rejoin of a crashed node (builder-style). Only
    /// meaningful for a node with a scheduled crash; the rejoin must name
    /// a workload boundary inside the run (see the elastic-membership
    /// notes in DESIGN.md §5.13).
    pub fn with_rejoin(mut self, node: usize, after_unit: u64) -> Self {
        self.rejoins.push(RejoinEvent { node, after_unit });
        self
    }

    /// Overrides the fault rates of the directed machine link
    /// `from → to` (builder-style).
    pub fn with_link(mut self, from: usize, to: usize, faults: LinkFaults) -> Self {
        self.per_link.push(((from, to), faults));
        self
    }

    /// Parses a plan specification.
    ///
    /// Accepts a named preset (`none`, `paper`) or a comma-separated list
    /// of `key=value` settings:
    ///
    /// ```text
    /// seed=42,drop=0.05,dup=0.02,reorder=0.05,corrupt=0.01,delay_us=2000,crash=3@40
    /// ```
    ///
    /// `crash=NODE@UNIT` and `rejoin=NODE@UNIT` may repeat (a rejoin
    /// needs a matching crash). Unknown keys and malformed values are
    /// errors, so a typo cannot silently run a different experiment.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "none" => return Ok(Self::quiet(0)),
            "paper" => return Ok(Self::paper_chaos(42)),
            _ => {}
        }
        let mut plan = Self::quiet(42);
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{item}'"))?;
            let fnum = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("bad number for {key}: '{value}'"))
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed: '{value}'"))?;
                }
                "drop" => plan.link.drop = fnum()?,
                "corrupt" => plan.link.corrupt = fnum()?,
                "dup" | "duplicate" => plan.link.duplicate = fnum()?,
                "reorder" => plan.link.reorder = fnum()?,
                "delay_us" => {
                    plan.link.max_extra_delay = Duration::from_micros(
                        value
                            .parse()
                            .map_err(|_| format!("bad delay_us: '{value}'"))?,
                    );
                }
                "crash" => {
                    let (node, unit) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash wants NODE@UNIT, got '{value}'"))?;
                    plan.crashes.push(CrashEvent {
                        node: node
                            .parse()
                            .map_err(|_| format!("bad crash node: '{node}'"))?,
                        after_unit: unit
                            .parse()
                            .map_err(|_| format!("bad crash unit: '{unit}'"))?,
                    });
                }
                "rejoin" => {
                    let (node, unit) = value
                        .split_once('@')
                        .ok_or_else(|| format!("rejoin wants NODE@UNIT, got '{value}'"))?;
                    plan.rejoins.push(RejoinEvent {
                        node: node
                            .parse()
                            .map_err(|_| format!("bad rejoin node: '{node}'"))?,
                        after_unit: unit
                            .parse()
                            .map_err(|_| format!("bad rejoin unit: '{unit}'"))?,
                    });
                }
                other => return Err(format!("unknown fault-plan key '{other}'")),
            }
        }
        if plan.link.reorder > 0.0 && plan.link.max_extra_delay == Duration::ZERO {
            plan.link.max_extra_delay = Duration::from_millis(2);
        }
        for r in &plan.rejoins {
            if !plan.crashes.iter().any(|c| c.node == r.node) {
                return Err(format!(
                    "rejoin={}@{} has no matching crash for node {}",
                    r.node, r.after_unit, r.node
                ));
            }
        }
        plan.link.validate()?;
        Ok(plan)
    }

    /// Whether the plan injects any fault at all.
    pub fn is_quiet(&self) -> bool {
        let quiet = |l: &LinkFaults| {
            l.drop == 0.0 && l.corrupt == 0.0 && l.duplicate == 0.0 && l.reorder == 0.0
        };
        quiet(&self.link) && self.per_link.iter().all(|(_, l)| quiet(l)) && self.crashes.is_empty()
    }
}

// ---------------------------------------------------------------------
// Seeded injector
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: a strong, cheap 64-bit mixer (public domain
/// constants from Steele et al., "Fast Splittable Pseudorandom Number
/// Generators").
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a hash state (53 mantissa bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic [`FaultInjector`]: fates are pure hashes of the
/// plan seed and the transmission identity.
#[derive(Debug, Clone)]
pub struct SeededFaults {
    plan: FaultPlan,
    nprocs: usize,
}

impl SeededFaults {
    /// Wraps a plan for a cluster of `nprocs` machines (needed to map
    /// transport endpoint ids — worker `w`, daemon `nprocs + d` — back to
    /// machines for per-link overrides).
    pub fn new(plan: FaultPlan, nprocs: usize) -> Self {
        assert!(nprocs >= 1, "need at least one machine");
        plan.link.validate().expect("invalid default link faults");
        for ((f, t), l) in &plan.per_link {
            assert!(*f < nprocs && *t < nprocs, "per-link override out of range");
            l.validate().expect("invalid per-link faults");
        }
        Self { plan, nprocs }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn machine(&self, endpoint: usize) -> usize {
        endpoint % self.nprocs
    }

    fn link_faults(&self, from: usize, to: usize) -> LinkFaults {
        let key = (self.machine(from), self.machine(to));
        self.plan
            .per_link
            .iter()
            .rev() // later overrides win
            .find(|(k, _)| *k == key)
            .map(|(_, l)| *l)
            .unwrap_or(self.plan.link)
    }

    /// One independent hash stream per (link message, purpose salt).
    fn draw(&self, link: &LinkMsg, salt: u64) -> u64 {
        let mut h = self.plan.seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
        for field in [
            link.from as u64,
            link.to as u64,
            link.chan as u64,
            link.seq,
            link.attempt as u64,
        ] {
            h = splitmix64(h ^ field);
        }
        h
    }
}

impl FaultInjector for SeededFaults {
    fn fate(&self, link: &LinkMsg) -> TransmitFate {
        let lf = self.link_faults(link.from, link.to);
        let loss = unit(self.draw(link, 1));
        if loss < lf.drop {
            return TransmitFate::Drop;
        }
        if loss < lf.drop + lf.corrupt {
            return TransmitFate::Corrupt;
        }
        let duplicates = u8::from(unit(self.draw(link, 2)) < lf.duplicate);
        let extra_delay = if unit(self.draw(link, 3)) < lf.reorder {
            lf.max_extra_delay.mul_f64(unit(self.draw(link, 4)))
        } else {
            Duration::ZERO
        };
        TransmitFate::Deliver {
            extra_delay,
            duplicates,
        }
    }

    fn crash_point(&self, node: usize) -> Option<u64> {
        self.plan
            .crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.after_unit)
            .min()
    }

    fn rejoin_point(&self, node: usize) -> Option<u64> {
        self.plan
            .rejoins
            .iter()
            .filter(|r| r.node == node)
            .map(|r| r.after_unit)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(n: u64) -> impl Iterator<Item = LinkMsg> {
        (0..n).map(|seq| LinkMsg {
            from: 0,
            to: 9, // daemon 1 in an 8-proc cluster
            chan: 0,
            seq,
            attempt: 0,
        })
    }

    #[test]
    fn fates_are_deterministic() {
        let a = SeededFaults::new(FaultPlan::paper_chaos(7), 8);
        let b = SeededFaults::new(FaultPlan::paper_chaos(7), 8);
        for l in links(500) {
            assert_eq!(a.fate(&l), b.fate(&l));
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = SeededFaults::new(FaultPlan::paper_chaos(1), 8);
        let b = SeededFaults::new(FaultPlan::paper_chaos(2), 8);
        let diff = links(500).filter(|l| a.fate(l) != b.fate(l)).count();
        assert!(diff > 0, "seed must matter");
    }

    #[test]
    fn empirical_rates_track_configured_rates() {
        let inj = SeededFaults::new(FaultPlan::drop_rate(11, 0.2), 8);
        let n = 20_000u64;
        let drops = links(n)
            .filter(|l| matches!(inj.fate(l), TransmitFate::Drop))
            .count() as f64;
        let rate = drops / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn quiet_plan_always_delivers_clean() {
        let inj = SeededFaults::new(FaultPlan::quiet(3), 4);
        for l in links(200) {
            assert_eq!(
                inj.fate(&l),
                TransmitFate::Deliver {
                    extra_delay: Duration::ZERO,
                    duplicates: 0
                }
            );
        }
    }

    #[test]
    fn per_link_override_wins() {
        let plan = FaultPlan::quiet(5).with_link(0, 1, LinkFaults::drop_rate(1.0));
        let inj = SeededFaults::new(plan, 4);
        // Worker 0 → daemon 1 (endpoint 5 in a 4-proc cluster).
        let bad = LinkMsg {
            from: 0,
            to: 5,
            chan: 0,
            seq: 0,
            attempt: 0,
        };
        assert_eq!(inj.fate(&bad), TransmitFate::Drop);
        // The reverse direction stays healthy.
        let ok = LinkMsg {
            from: 5,
            to: 0,
            chan: 1,
            seq: 0,
            attempt: 0,
        };
        assert!(matches!(inj.fate(&ok), TransmitFate::Deliver { .. }));
    }

    #[test]
    fn crash_point_reports_earliest_event() {
        let plan = FaultPlan::quiet(0).with_crash(2, 40).with_crash(2, 10);
        let inj = SeededFaults::new(plan, 8);
        assert_eq!(inj.crash_point(2), Some(10));
        assert_eq!(inj.crash_point(3), None);
    }

    #[test]
    fn parse_round_trips_settings() {
        let plan = FaultPlan::parse(
            "seed=9,drop=0.1,dup=0.02,reorder=0.3,corrupt=0.01,delay_us=500,crash=3@40",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.link.drop, 0.1);
        assert_eq!(plan.link.duplicate, 0.02);
        assert_eq!(plan.link.reorder, 0.3);
        assert_eq!(plan.link.corrupt, 0.01);
        assert_eq!(plan.link.max_extra_delay, Duration::from_micros(500));
        assert_eq!(
            plan.crashes,
            vec![CrashEvent {
                node: 3,
                after_unit: 40
            }]
        );
    }

    #[test]
    fn parse_rejects_typos_and_bad_rates() {
        assert!(FaultPlan::parse("dorp=0.1").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("crash=3").is_err());
        assert!(FaultPlan::parse("drop=abc").is_err());
    }

    #[test]
    fn parse_rejoin_needs_a_matching_crash() {
        let plan = FaultPlan::parse("crash=2@10,rejoin=2@6").unwrap();
        assert_eq!(
            plan.rejoins,
            vec![RejoinEvent {
                node: 2,
                after_unit: 6
            }]
        );
        assert!(FaultPlan::parse("rejoin=2@6").is_err());
        assert!(FaultPlan::parse("crash=1@10,rejoin=2@6").is_err());
        assert!(FaultPlan::parse("crash=2@10,rejoin=2").is_err());
        assert!(FaultPlan::parse("crash=2@10,rejoin=x@6").is_err());
    }

    #[test]
    fn rejoin_point_reports_earliest_event_for_scheduled_nodes_only() {
        let plan = FaultPlan::quiet(0)
            .with_crash(2, 10)
            .with_rejoin(2, 8)
            .with_rejoin(2, 4);
        let inj = SeededFaults::new(plan, 8);
        assert_eq!(inj.rejoin_point(2), Some(4));
        assert_eq!(inj.rejoin_point(3), None);
    }

    #[test]
    fn parse_presets() {
        assert!(FaultPlan::parse("none").unwrap().is_quiet());
        assert_eq!(
            FaultPlan::parse("paper").unwrap(),
            FaultPlan::paper_chaos(42)
        );
    }
}
