//! Property tests for cache correctness (ISSUE 6 satellite): a cache hit
//! equals a fresh recompute byte for byte across kernel choices, and a
//! hot-reload invalidates exactly the superseded epoch — stale-epoch
//! requests re-run, never serve stale hits.

use genomedsm_batch::{BatchConfig, BatchEngine, SchedulerConfig, SeqDatabase};
use genomedsm_kernels::KernelChoice;
use genomedsm_seq::fasta::{write_fasta_file, FastaRecord};
use genomedsm_seq::random_dna;
use genomedsm_serve::{EpochDb, QueryKey, ResultCache};
use proptest::prelude::*;
use std::sync::Arc;

fn make_db(n: usize, len: usize, seed: u64) -> SeqDatabase {
    SeqDatabase::from_records(
        (0..n)
            .map(|i| FastaRecord {
                id: format!("r{i}"),
                seq: random_dna(len / 2 + (i * 17) % len.max(1), seed + i as u64),
            })
            .collect(),
    )
}

fn make_queries(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| random_dna((i * 11) % (len + 1), seed ^ (i as u64) << 5).into_bytes())
        .collect()
}

fn engine(kernel: KernelChoice, top_k: usize, workers: usize) -> BatchEngine {
    BatchEngine::new(BatchConfig {
        kernel,
        top_k,
        scheduler: SchedulerConfig { workers, window: 2 },
        ..BatchConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fill the cache with one kernel's answers, then verify the hits are
    /// byte-identical to a fresh recompute under EVERY kernel choice and
    /// a different worker count — the determinism that makes caching
    /// sound at all.
    #[test]
    fn cache_hit_equals_recompute_across_kernels(
        seed in 0u64..500,
        nq in 1usize..6,
        nr in 1usize..10,
        top_k in 1usize..6,
    ) {
        let db = make_db(nr, 50, seed);
        let qs = make_queries(nq, 40, seed.wrapping_mul(31));
        let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
        let cache = ResultCache::new(64);
        let epoch = 1u64;

        // Populate from the Auto kernel with 2 workers.
        let filled = engine(KernelChoice::Auto, top_k, 2).search(&db, &refs);
        for (q, hits) in filled.hits.iter().enumerate() {
            cache.insert(QueryKey::of(&qs[q]), top_k, epoch, 0, Arc::new(hits.clone()));
        }

        // Every kernel choice, different parallelism: recompute must
        // equal the cached answer byte for byte.
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let fresh = engine(kernel, top_k, 1).search(&db, &refs);
            for (q, hits) in fresh.hits.iter().enumerate() {
                let cached = cache
                    .get(QueryKey::of(&qs[q]), top_k, epoch, 0)
                    .expect("warm cache");
                prop_assert_eq!(
                    &*cached, hits,
                    "kernel {} query {} cache/recompute divergence", kernel, q
                );
            }
        }
    }

    /// Hot-reload invalidates exactly the old epoch: lookups under the
    /// new epoch miss (forcing a re-run on the new database), purged
    /// entries are exactly the stale ones, and the re-run result differs
    /// from the stale answer whenever the databases differ.
    #[test]
    fn reload_invalidates_exactly_the_old_epoch(
        seed in 0u64..500,
        nq in 1usize..5,
    ) {
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("gdsm-props-{}-{seed}-1.fa", std::process::id()));
        let p2 = dir.join(format!("gdsm-props-{}-{seed}-2.fa", std::process::id()));
        let db1 = make_db(6, 40, seed);
        let db2 = make_db(9, 40, seed.wrapping_add(1000));
        write_fasta_file(&p1, &fasta_of(&db1)).expect("write db1");
        write_fasta_file(&p2, &fasta_of(&db2)).expect("write db2");

        let qs = make_queries(nq, 30, seed.wrapping_mul(7).wrapping_add(1));
        let top_k = 3;
        let cache = ResultCache::new(64);
        let handle = EpochDb::load(&p1).expect("load epoch 1");

        // Epoch 1: compute and cache every answer.
        let snap1 = handle.current();
        let eng = engine(KernelChoice::Auto, top_k, 2);
        let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
        let at1 = eng.search(&snap1.db, &refs).hits;
        for (q, hits) in at1.iter().enumerate() {
            cache.insert(QueryKey::of(&qs[q]), top_k, snap1.epoch, 0, Arc::new(hits.clone()));
        }

        // Reload: epoch bumps, purge removes exactly the old entries.
        let snap2 = handle.reload(&p2).expect("reload");
        prop_assert_eq!(snap2.epoch, snap1.epoch + 1);
        let purged = cache.purge_epoch(snap2.epoch);
        prop_assert_eq!(purged, qs.len() as u64, "exactly the stale entries");

        // Stale-epoch lookups now miss: the service must re-run, and the
        // re-run answers the NEW database.
        let at2 = eng.search(&snap2.db, &refs).hits;
        for (q, want) in at2.iter().enumerate() {
            let key = QueryKey::of(&qs[q]);
            prop_assert!(cache.get(key, top_k, snap2.epoch, 0).is_none(), "no stale hit");
            cache.insert(key, top_k, snap2.epoch, 0, Arc::new(want.clone()));
            let roundtrip = cache.get(key, top_k, snap2.epoch, 0).expect("fresh insert");
            prop_assert_eq!(&*roundtrip, want);
        }

        // The old snapshot still answers exactly as before (in-flight
        // requests holding it are unaffected by the reload).
        let again1 = eng.search(&snap1.db, &refs).hits;
        prop_assert_eq!(again1, at1);

        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}

/// Rebuilds FASTA records from a database (ids regenerated; the arena
/// orders by length, which `from_records` re-applies stably).
fn fasta_of(db: &SeqDatabase) -> Vec<FastaRecord> {
    (0..db.len())
        .map(|i| FastaRecord {
            id: format!("r{i}"),
            seq: genomedsm_seq::DnaSeq::from_bases(db.seq(i).to_vec()),
        })
        .collect()
}
