//! End-to-end service tests over a real Unix socket: the acceptance
//! demonstrations of ISSUE 6 — cached ≡ recomputed, hot-reload with zero
//! failed in-flight requests, typed overload rejection (never a hang),
//! per-client fairness in the stats ledger, and zero protocol errors.

use genomedsm_batch::{BatchConfig, BatchEngine, SchedulerConfig, SeqDatabase};
use genomedsm_seq::fasta::{write_fasta_file, FastaRecord};
use genomedsm_seq::random_dna;
use genomedsm_serve::{ServeClient, ServeError, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gdsm-e2e-{}-{name}", std::process::id()))
}

fn write_db(path: &PathBuf, n: usize, len: usize, seed: u64) -> SeqDatabase {
    let records: Vec<FastaRecord> = (0..n)
        .map(|i| FastaRecord {
            id: format!("r{i}"),
            seq: random_dna(len / 2 + (i * 13) % len.max(1), seed + i as u64),
        })
        .collect();
    write_fasta_file(path, &records).unwrap();
    SeqDatabase::from_records(
        records
            .iter()
            .map(|r| FastaRecord {
                id: r.id.clone(),
                seq: r.seq.clone(),
            })
            .collect(),
    )
}

fn queries(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| random_dna(len / 2 + (i * 7) % len.max(1), seed ^ (i as u64) << 3).into_bytes())
        .collect()
}

fn local_answer(db: &SeqDatabase, qs: &[Vec<u8>], top_k: usize) -> Vec<Vec<genomedsm_batch::Hit>> {
    let engine = BatchEngine::new(BatchConfig {
        top_k,
        ..BatchConfig::default()
    });
    let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
    engine.search(db, &refs).hits
}

#[test]
fn cached_and_recomputed_answers_are_bit_identical() {
    let db_path = tmp("cache-db.fa");
    let db = write_db(&db_path, 20, 60, 11);
    let server = Server::start(ServerConfig::new(tmp("cache.sock"), &db_path)).unwrap();

    let qs = queries(7, 50, 5);
    let want = local_answer(&db, &qs, 5);

    let mut client = ServeClient::connect(server.socket()).unwrap();
    client.hello("alice", 1).unwrap();

    // Cold pass: everything computed; answers equal the local engine's.
    let cold = client.search(&qs, 5, |_| {}).unwrap();
    assert!(cold.answers.iter().all(|a| !a.cached));
    assert_eq!(cold.hit_lists(), want);

    // Warm pass: everything served from cache, byte-identical.
    let warm = client.search(&qs, 5, |_| {}).unwrap();
    assert!(warm.answers.iter().all(|a| a.cached), "all answers cached");
    assert_eq!(warm.hit_lists(), want, "cache hit == recompute");

    // Streaming order: ascending query index, a prefix of the final
    // answer at every step.
    let mut seen = Vec::new();
    let third = client
        .search(&qs, 5, |qh| {
            assert_eq!(qh.query, seen.len());
            seen.push(qh.hits.clone());
            assert_eq!(seen[..], want[..seen.len()], "prefix property");
        })
        .unwrap();
    assert_eq!(third.hit_lists(), want);

    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.cache_hits >= qs.len() as u64 * 2);
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn hot_reload_mid_run_fails_no_inflight_request() {
    let db1_path = tmp("reload-db1.fa");
    let db2_path = tmp("reload-db2.fa");
    let db1 = write_db(&db1_path, 16, 50, 21);
    let db2 = write_db(&db2_path, 24, 50, 99);
    let server = Server::start(ServerConfig::new(tmp("reload.sock"), &db1_path)).unwrap();
    let socket = server.socket().to_path_buf();

    let qs = queries(5, 40, 17);
    let want_epoch1 = local_answer(&db1, &qs, 4);
    let want_epoch2 = local_answer(&db2, &qs, 4);

    // A worker hammers searches while the main thread reloads mid-run.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let qs2 = qs.clone();
    let runner = std::thread::spawn(move || {
        let mut client = ServeClient::connect(&socket).unwrap();
        client.hello("steady", 1).unwrap();
        let mut epochs_seen = Vec::new();
        let mut completed = 0u64;
        while !stop2.load(Ordering::SeqCst) {
            let summary = client
                .search(&qs2, 4, |_| {})
                .expect("in-flight search failed");
            for a in &summary.answers {
                // Every answer must match the database of the epoch it
                // claims — stale hits would disagree.
                let want = match a.epoch {
                    1 => &want_epoch1[a.query],
                    2 => &want_epoch2[a.query],
                    e => panic!("unexpected epoch {e}"),
                };
                assert_eq!(&a.hits, want, "epoch {} answer exact", a.epoch);
                epochs_seen.push(a.epoch);
            }
            completed += 1;
        }
        (completed, epochs_seen)
    });

    // Let a few searches land, then hot-reload.
    std::thread::sleep(Duration::from_millis(100));
    let mut admin = ServeClient::connect(server.socket()).unwrap();
    let (epoch, records, _purged) = admin.reload(db2_path.to_str().unwrap()).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(records, 24);
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let (completed, epochs_seen) = runner.join().unwrap();

    assert!(completed > 0, "runner made progress");
    assert!(epochs_seen.contains(&2), "post-reload answers on epoch 2");
    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0);
    std::fs::remove_file(&db1_path).ok();
    std::fs::remove_file(&db2_path).ok();
}

#[test]
fn overload_rejects_typed_and_never_hangs() {
    let db_path = tmp("overload-db.fa");
    write_db(&db_path, 120, 400, 31);
    let mut config = ServerConfig::new(tmp("overload.sock"), &db_path);
    config.queue_capacity = 1;
    config.workers = 1;
    config.cache_capacity = 0; // every request must really compute
    config.engine.scheduler = SchedulerConfig {
        workers: 1,
        window: 1,
    };
    let server = Server::start(config).unwrap();

    // Fire eight heavy searches concurrently: capacity 1 + a single
    // slow worker ⇒ admission control must refuse some, answer all.
    let heavy = queries(4, 800, 3);
    let socket = server.socket().to_path_buf();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let socket = socket.clone();
            let heavy = heavy.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(&socket).unwrap();
                c.hello(&format!("storm-{i}"), 1).unwrap();
                match c.search(&heavy, 3, |_| {}) {
                    Ok(_) => (1u64, 0u64),
                    Err(ServeError::Overloaded { depth, limit }) => {
                        assert_eq!(limit, 1);
                        assert!(depth >= 1);
                        (0, 1)
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            })
        })
        .collect();
    let (mut done, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (d, r) = h.join().unwrap();
        done += d;
        rejected += r;
    }
    assert_eq!(done + rejected, 8, "every request answered: no hang");
    assert!(rejected > 0, "admission control rejected under overload");
    let stats = server.stop();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.dispatched, done);
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.high_water <= 1, "queue depth never exceeded capacity");
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn slow_client_does_not_stall_fast_client() {
    let db_path = tmp("chaos-db.fa");
    write_db(&db_path, 30, 80, 41);
    let mut config = ServerConfig::new(tmp("chaos.sock"), &db_path);
    config.workers = 2;
    let server = Server::start(config).unwrap();
    let socket = server.socket().to_path_buf();

    // Chaos-injected slow client: reads its streamed answers with a
    // delay per message, keeping its connection (and socket buffer)
    // dawdling for the whole test.
    let slow_socket = socket.clone();
    let slow = std::thread::spawn(move || {
        let mut c = ServeClient::connect(&slow_socket).unwrap();
        c.hello("slow", 1).unwrap();
        let qs = queries(6, 60, 77);
        c.search(&qs, 4, |_| {
            std::thread::sleep(Duration::from_millis(150));
        })
        .unwrap();
    });

    // Meanwhile the fast client must complete a burst of searches.
    let mut fast = ServeClient::connect(&socket).unwrap();
    fast.hello("fast", 1).unwrap();
    let qs = queries(3, 40, 7);
    let start = std::time::Instant::now();
    for _ in 0..10 {
        fast.search(&qs, 3, |_| {}).unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "fast client unimpeded by the slow one"
    );
    slow.join().unwrap();

    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0);
    let ledger: Vec<_> = stats.clients.iter().map(|c| c.client.as_str()).collect();
    assert!(ledger.contains(&"fast") && ledger.contains(&"slow"));
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn fairness_ledger_accounts_per_client() {
    let db_path = tmp("fair-db.fa");
    write_db(&db_path, 25, 60, 51);
    let mut config = ServerConfig::new(tmp("fair.sock"), &db_path);
    config.workers = 1; // serialize dispatch so the ledger is exact
    let server = Server::start(config).unwrap();
    let socket = server.socket().to_path_buf();

    let handles: Vec<_> = [("ant", 1u32, 6usize), ("bee", 2, 6)]
        .into_iter()
        .map(|(name, weight, reqs)| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(&socket).unwrap();
                c.hello(name, weight).unwrap();
                let qs = queries(4, 50, weight as u64 * 1000);
                for _ in 0..reqs {
                    c.search(&qs, 3, |_| {}).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.clients.len(), 2);
    for row in &stats.clients {
        assert_eq!(row.submitted, 6, "{}", row.client);
        assert_eq!(row.dispatched, 6, "{}", row.client);
        assert_eq!(row.served_units, 24, "{}", row.client);
        assert_eq!(row.rejected, 0, "{}", row.client);
    }
    let weights: Vec<u64> = stats.clients.iter().map(|c| c.weight).collect();
    assert_eq!(weights, vec![1, 2], "ant then bee, weights recorded");
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn remote_shutdown_stops_the_server() {
    let db_path = tmp("shutdown-db.fa");
    write_db(&db_path, 5, 40, 61);
    let server = Server::start(ServerConfig::new(tmp("shutdown.sock"), &db_path)).unwrap();
    let socket = server.socket().to_path_buf();

    let waiter = std::thread::spawn(move || server.wait());
    let mut client = ServeClient::connect(&socket).unwrap();
    client.shutdown().unwrap();
    let stats = waiter.join().unwrap();
    assert_eq!(stats.protocol_errors, 0);
    assert!(!socket.exists(), "socket file removed on teardown");
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn protein_mode_serves_gotoh_answers_with_params_keyed_caching() {
    use genomedsm_batch::{oracle_search_mode, ScoreMode, SeqDatabase};
    use genomedsm_core::scoring::Scoring;
    use genomedsm_core::submat::{MatrixScoring, SubstMatrix};
    use genomedsm_seq::fasta::{write_protein_fasta_file, ProteinRecord};
    use genomedsm_seq::random_protein;

    let db_path = tmp("protein-db.fa");
    let records: Vec<ProteinRecord> = (0..15)
        .map(|i| ProteinRecord {
            id: format!("p{i}"),
            seq: random_protein(30 + (i * 7) % 40, 900 + i as u64),
        })
        .collect();
    write_protein_fasta_file(&db_path, &records).unwrap();
    let db = SeqDatabase::from_protein_records(records);

    // The server's configured mode is protein BLOSUM62: the database
    // loads (and would hot-reload) through the protein parser.
    let blosum = MatrixScoring::blosum62();
    let mut config = ServerConfig::new(tmp("protein.sock"), &db_path);
    config.engine.mode = ScoreMode::Protein(blosum);
    let server = Server::start(config).unwrap();

    let qs: Vec<Vec<u8>> = (0..5)
        .map(|i| random_protein(20 + i, 700 + i as u64).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = qs.iter().map(Vec::as_slice).collect();
    let top_k = 4;

    let mut client = ServeClient::connect(server.socket()).unwrap();
    client.hello("prot", 1).unwrap();

    // Default mode (no override): the scalar Gotoh oracle's answer,
    // byte for byte.
    let want_blosum = oracle_search_mode(
        &db,
        &refs,
        &ScoreMode::Protein(blosum),
        &Scoring::paper(),
        top_k,
    );
    let cold = client.search(&qs, top_k, |_| {}).unwrap();
    assert_eq!(cold.hit_lists(), want_blosum);
    assert!(cold.answers.iter().all(|a| !a.cached));

    // Same queries under a DIFFERENT scheme (PAM250, other gaps): the
    // override travels in the request; the params-keyed cache must MISS
    // — a BLOSUM62 answer can never be served for a PAM250 ask.
    let pam = MatrixScoring::new(SubstMatrix::pam250(), -10, -2);
    let want_pam = oracle_search_mode(
        &db,
        &refs,
        &ScoreMode::Protein(pam),
        &Scoring::paper(),
        top_k,
    );
    let other = client.search_scored(&qs, top_k, Some(pam), |_| {}).unwrap();
    assert_eq!(other.hit_lists(), want_pam);
    assert!(
        other.answers.iter().all(|a| !a.cached),
        "different scoring params must never hit the cache"
    );

    // Warm passes under each scheme hit their own cache lines and stay
    // bit-identical.
    let warm = client.search(&qs, top_k, |_| {}).unwrap();
    assert!(warm.answers.iter().all(|a| a.cached));
    assert_eq!(warm.hit_lists(), want_blosum);
    let warm_pam = client.search_scored(&qs, top_k, Some(pam), |_| {}).unwrap();
    assert!(warm_pam.answers.iter().all(|a| a.cached));
    assert_eq!(warm_pam.hit_lists(), want_pam);

    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0);
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn malformed_lines_are_counted_and_answered_not_fatal() {
    use std::io::{BufRead, BufReader, Write};
    let db_path = tmp("garbage-db.fa");
    write_db(&db_path, 5, 40, 71);
    let server = Server::start(ServerConfig::new(tmp("garbage.sock"), &db_path)).unwrap();

    let mut raw = std::os::unix::net::UnixStream::connect(server.socket()).unwrap();
    raw.write_all(b"not-hex-at-all\n").unwrap();
    raw.write_all(b"abcd\n").unwrap(); // valid hex, garbage frame
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let frame = genomedsm_serve::from_hex_line(&line).unwrap();
    assert!(matches!(
        genomedsm_serve::Response::decode(&frame).unwrap(),
        genomedsm_serve::Response::Error { .. }
    ));

    // The same server keeps serving a healthy client afterwards.
    let mut client = ServeClient::connect(server.socket()).unwrap();
    let (epoch, records) = client.hello("healthy", 1).unwrap();
    assert_eq!((epoch, records), (1, 5));

    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 2);
    std::fs::remove_file(&db_path).ok();
}
