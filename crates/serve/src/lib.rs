//! Always-on alignment service: the batch engine behind a socket.
//!
//! The paper's cluster runs one batch job and exits; the north-star
//! deployment is a resident service answering alignment queries from many
//! concurrent clients against a long-lived database (the shape DSA gives
//! a distributed SIMD-SW system — see PAPERS.md). This crate is that
//! service, built from parts the workspace already trusts:
//!
//! * [`proto`] — the request/response protocol: checksummed binary frames
//!   built with the `dsm` wire codec ([`genomedsm_dsm::FrameWriter`] /
//!   [`FrameReader`](genomedsm_dsm::FrameReader)), hex-armored one frame
//!   per line so the transport is line-delimited and every byte is
//!   checksum-protected. Decoding never panics.
//! * [`admission`] — a bounded request queue with typed
//!   [`Overloaded`] rejection (the server refuses,
//!   never hangs) and **per-client weighted fair scheduling**: the next
//!   request dispatched is the one whose client has the smallest
//!   served-units/weight ratio. The `genomedsm-verify` model of this gate
//!   proves no request is lost or double-dispatched.
//! * [`cache`] — a result cache keyed by *(query digest, top-k, db
//!   epoch)*. The engine is deterministic, so a hit is bit-identical to
//!   recomputation by construction — and the property tests check it
//!   byte for byte anyway.
//! * [`epoch`] — the hot-reloadable database: an atomically swapped
//!   `Arc` snapshot with a monotonically increasing epoch. In-flight
//!   requests finish against the arena they started with; the cache
//!   purges exactly the superseded epoch.
//! * [`server`] / [`client`] — the Unix-socket server (reader, writer,
//!   and worker threads per the threading notes in DESIGN.md §5.11) and
//!   the matching client library the CLI `genomedsm client` wraps.
//!
//! Responses stream: each query's top-k is sent as soon as the engine
//! finalizes it (ascending query order, via
//! [`BatchEngine::search_streaming`](genomedsm_batch::BatchEngine::search_streaming)),
//! so everything a client has received is a prefix of the final answer.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod epoch;
pub mod proto;
pub mod server;

pub use admission::{AdmissionQueue, AdmissionStats, ClientStats, Overloaded};
pub use cache::{CacheStats, QueryKey, ResultCache};
pub use client::{QueryHits, SearchSummary, ServeClient};
pub use epoch::{DbSnapshot, EpochDb};
pub use proto::{from_hex_line, to_hex_line, Request, Response, ServiceStats};
pub use server::{Server, ServerConfig};

use genomedsm_batch::BatchError;
use genomedsm_dsm::DsmError;
use std::fmt;
use std::io;

/// Typed error of the service layer.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation failed; `context` names the operation.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A frame failed to decode (checksum, truncation, bad tag…).
    Protocol(DsmError),
    /// A line was not valid hex armor.
    BadLine {
        /// What was wrong with it.
        what: String,
    },
    /// The server refused the request: its bounded queue is full.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The queue's capacity.
        limit: usize,
    },
    /// The server reported a request-level failure.
    Server(String),
    /// The peer closed the connection mid-exchange.
    Disconnected,
    /// Loading inputs failed (database or query file).
    Batch(BatchError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::BadLine { what } => write!(f, "bad line: {what}"),
            ServeError::Overloaded { depth, limit } => {
                write!(f, "server overloaded: queue depth {depth} of {limit}")
            }
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Disconnected => write!(f, "peer disconnected"),
            ServeError::Batch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Protocol(e) => Some(e),
            ServeError::Batch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DsmError> for ServeError {
    fn from(e: DsmError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<BatchError> for ServeError {
    fn from(e: BatchError) -> Self {
        ServeError::Batch(e)
    }
}

impl ServeError {
    /// Wraps an `io::Error` with a context string.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }
}
