//! The service client: one connection, synchronous request/response.
//!
//! [`ServeClient`] speaks the [`crate::proto`] line protocol over a Unix
//! socket. It is deliberately blocking and single-request — the service
//! multiplexes across *connections*, not within one — which keeps the
//! client trivially correct: every response on this connection belongs
//! to the one request in flight.
//!
//! [`ServeClient::search`] surfaces the server's streaming: the
//! callback sees each query's final top-k as it arrives (ascending
//! query order — a prefix of the final answer at every instant), and
//! the returned [`SearchSummary`] has everything collected.

use crate::proto::{from_hex_line, to_hex_line, Request, Response, ServiceStats};
use crate::ServeError;
use genomedsm_batch::Hit;
use genomedsm_core::submat::MatrixScoring;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One query's answer, as streamed by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHits {
    /// Query index within the request.
    pub query: usize,
    /// Whether the server answered from its result cache.
    pub cached: bool,
    /// Database epoch the answer was computed against.
    pub epoch: u64,
    /// The top-k hits, best first.
    pub hits: Vec<Hit>,
}

/// Everything one search returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSummary {
    /// Per query, input order.
    pub answers: Vec<QueryHits>,
}

impl SearchSummary {
    /// Just the hit lists, input order (the [`genomedsm_batch`] shape).
    pub fn hit_lists(&self) -> Vec<Vec<Hit>> {
        self.answers.iter().map(|a| a.hits.clone()).collect()
    }
}

/// A blocking client connection to a running server.
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects to the server socket.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the socket is absent or refuses.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Self, ServeError> {
        let socket = socket.as_ref();
        let stream = UnixStream::connect(socket)
            .map_err(|e| ServeError::io(format!("connect {socket:?}"), e))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ServeError::io("clone stream", e))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ServeError> {
        let line = to_hex_line(&req.encode());
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| ServeError::io("send request", e))
    }

    fn recv(&mut self) -> Result<Response, ServeError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| ServeError::io("read response", e))?;
            if n == 0 {
                return Err(ServeError::Disconnected);
            }
            if line.trim().is_empty() {
                continue;
            }
            let frame = from_hex_line(&line)?;
            return Ok(Response::decode(&frame)?);
        }
    }

    /// Introduces this client to the fairness ledger; returns
    /// `(epoch, records)` of the resident database.
    ///
    /// # Errors
    /// [`ServeError`] on transport failure or an unexpected response.
    pub fn hello(&mut self, client: &str, weight: u32) -> Result<(u64, u64), ServeError> {
        self.send(&Request::Hello {
            client: client.to_string(),
            weight,
        })?;
        match self.recv()? {
            Response::Welcome { epoch, records } => Ok((epoch, records)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs one search, invoking `on_hits` for every streamed answer
    /// (ascending query order) and returning the collected summary.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when admission control refuses —
    /// typed, so callers can back off and retry; other [`ServeError`]s
    /// on transport or protocol failure.
    pub fn search(
        &mut self,
        queries: &[Vec<u8>],
        top_k: usize,
        on_hits: impl FnMut(&QueryHits),
    ) -> Result<SearchSummary, ServeError> {
        self.search_scored(queries, top_k, None, on_hits)
    }

    /// [`search`](Self::search) with an explicit scoring scheme: `Some`
    /// runs the queries in protein mode under the given substitution
    /// matrix and affine gap penalties (the full matrix travels with the
    /// request, so any scheme works — not just the baked-in names);
    /// `None` uses whatever mode the server was configured with.
    ///
    /// # Errors
    /// Same contract as [`search`](Self::search).
    pub fn search_scored(
        &mut self,
        queries: &[Vec<u8>],
        top_k: usize,
        scoring: Option<MatrixScoring>,
        mut on_hits: impl FnMut(&QueryHits),
    ) -> Result<SearchSummary, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Search {
            id,
            top_k: top_k as u32,
            queries: queries.to_vec(),
            scoring,
        })?;
        let mut answers: Vec<QueryHits> = Vec::with_capacity(queries.len());
        loop {
            match self.recv()? {
                Response::Hits {
                    id: rid,
                    query,
                    cached,
                    epoch,
                    hits,
                } if rid == id => {
                    let qh = QueryHits {
                        query: query as usize,
                        cached,
                        epoch,
                        hits,
                    };
                    on_hits(&qh);
                    answers.push(qh);
                }
                Response::Done {
                    id: rid,
                    queries: n,
                } if rid == id => {
                    if answers.len() != n as usize {
                        return Err(ServeError::Server(format!(
                            "server announced {n} answers, streamed {}",
                            answers.len()
                        )));
                    }
                    return Ok(SearchSummary { answers });
                }
                Response::Overloaded {
                    id: rid,
                    depth,
                    limit,
                } if rid == id => {
                    return Err(ServeError::Overloaded {
                        depth: depth as usize,
                        limit: limit as usize,
                    });
                }
                Response::Error { message, .. } => return Err(ServeError::Server(message)),
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Hot-reloads the server database from `path` (a path visible to
    /// the **server**). Returns `(new_epoch, records, purged_entries)`.
    ///
    /// # Errors
    /// [`ServeError::Server`] when the server could not load the file
    /// (its database is left untouched); transport errors otherwise.
    pub fn reload(&mut self, path: &str) -> Result<(u64, u64, u64), ServeError> {
        self.send(&Request::Reload {
            path: path.to_string(),
        })?;
        match self.recv()? {
            Response::Reloaded {
                epoch,
                records,
                purged,
            } => Ok((epoch, records, purged)),
            Response::Error { message, .. } => Err(ServeError::Server(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service statistics snapshot.
    ///
    /// # Errors
    /// [`ServeError`] on transport failure or an unexpected response.
    pub fn stats(&mut self) -> Result<ServiceStats, ServeError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::StatsReply(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down; returns once the server has
    /// acknowledged.
    ///
    /// # Errors
    /// [`ServeError`] on transport failure or an unexpected response.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Done { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Server(format!("unexpected response {resp:?}"))
}
