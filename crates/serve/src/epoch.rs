//! The hot-reloadable database: epoch-stamped `Arc` snapshots.
//!
//! A reload must be **atomic** for readers (a request sees entirely the
//! old database or entirely the new one, never a mix) and **non-fatal**
//! for in-flight work (requests already dispatched finish against the
//! arena they started with). Both fall out of one representation: the
//! resident database is an `Arc<DbSnapshot>` behind a mutex, swapped
//! wholesale on reload. A worker clones the `Arc` once at dispatch and
//! keeps the old arena alive for exactly as long as it needs it; the
//! epoch is bumped with the swap, so the result cache's epoch-stamped
//! keys cleanly separate answers computed before and after.
//!
//! A **failed** reload (missing file, parse error) leaves the current
//! snapshot untouched — the service keeps answering on the old epoch.

use crate::ServeError;
use genomedsm_batch::SeqDatabase;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// One immutable generation of the resident database.
#[derive(Debug)]
pub struct DbSnapshot {
    /// Monotonically increasing generation number (starts at 1).
    pub epoch: u64,
    /// The length-sorted record arena.
    pub db: SeqDatabase,
    /// Where this generation was loaded from.
    pub source: PathBuf,
}

/// The swappable handle the server shares with its workers.
///
/// The handle remembers which FASTA alphabet it was loaded with (DNA or
/// protein), so a hot-reload parses replacement files under the **same**
/// alphabet as the original database — a protein service can never be
/// silently reloaded through the DNA ambiguity mapping.
pub struct EpochDb {
    current: Mutex<Arc<DbSnapshot>>,
    protein: bool,
}

impl EpochDb {
    /// Wraps an already-loaded DNA database as epoch 1.
    pub fn new(db: SeqDatabase, source: impl Into<PathBuf>) -> Self {
        Self::with_alphabet(db, source, false)
    }

    /// Wraps an already-loaded protein database as epoch 1; reloads will
    /// parse with the protein alphabet.
    pub fn new_protein(db: SeqDatabase, source: impl Into<PathBuf>) -> Self {
        Self::with_alphabet(db, source, true)
    }

    fn with_alphabet(db: SeqDatabase, source: impl Into<PathBuf>, protein: bool) -> Self {
        Self {
            current: Mutex::new(Arc::new(DbSnapshot {
                epoch: 1,
                db,
                source: source.into(),
            })),
            protein,
        }
    }

    /// Loads `path` as DNA FASTA and wraps it as epoch 1.
    ///
    /// # Errors
    /// [`ServeError::Batch`] if the file is unreadable, malformed, or
    /// empty.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let db = SeqDatabase::load_fasta_file(path)?;
        Ok(Self::new(db, path))
    }

    /// Loads `path` as protein FASTA (full IUPAC amino-acid alphabet,
    /// typed `InvalidResidue` errors) and wraps it as epoch 1.
    ///
    /// # Errors
    /// [`ServeError::Batch`] if the file is unreadable, malformed, or
    /// empty.
    pub fn load_protein(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let db = SeqDatabase::load_protein_fasta_file(path)?;
        Ok(Self::new_protein(db, path))
    }

    /// The current snapshot. Cheap (one `Arc` clone); hold the returned
    /// `Arc` for the duration of a request and the arena cannot change
    /// underneath it.
    pub fn current(&self) -> Arc<DbSnapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the database with the contents of `path`
    /// (parsed under this handle's alphabet), bumping the epoch. Returns
    /// the new snapshot.
    ///
    /// # Errors
    /// [`ServeError::Batch`] on load failure — the current snapshot is
    /// left untouched (the service keeps serving the old epoch).
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<Arc<DbSnapshot>, ServeError> {
        let path = path.as_ref();
        // Load outside the lock: readers keep snapshotting the old arena
        // while the new one parses.
        let db = if self.protein {
            SeqDatabase::load_protein_fasta_file(path)?
        } else {
            SeqDatabase::load_fasta_file(path)?
        };
        let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let next = Arc::new(DbSnapshot {
            epoch: current.epoch + 1,
            db,
            source: path.to_path_buf(),
        });
        *current = Arc::clone(&next);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_seq::fasta::{write_fasta_file, FastaRecord};
    use genomedsm_seq::random_dna;

    fn write_db(name: &str, n: usize, seed: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("genomedsm-epoch-{}-{name}.fa", std::process::id()));
        let records: Vec<FastaRecord> = (0..n)
            .map(|i| FastaRecord {
                id: format!("r{i}"),
                seq: random_dna(30 + i, seed + i as u64),
            })
            .collect();
        write_fasta_file(&path, &records).unwrap();
        path
    }

    #[test]
    fn reload_bumps_epoch_and_keeps_old_snapshot_alive() {
        let p1 = write_db("a", 3, 1);
        let p2 = write_db("b", 5, 2);
        let handle = EpochDb::load(&p1).unwrap();
        let old = handle.current();
        assert_eq!(old.epoch, 1);
        assert_eq!(old.db.len(), 3);

        let new = handle.reload(&p2).unwrap();
        assert_eq!(new.epoch, 2);
        assert_eq!(new.db.len(), 5);
        assert_eq!(handle.current().epoch, 2);
        // The held Arc still reads the old arena.
        assert_eq!(old.db.len(), 3);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn protein_handle_reloads_with_the_protein_alphabet() {
        use genomedsm_seq::fasta::{write_protein_fasta_file, ProteinRecord};
        use genomedsm_seq::random_protein;
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("genomedsm-epoch-prot-{}-1.fa", std::process::id()));
        let p2 = dir.join(format!("genomedsm-epoch-prot-{}-2.fa", std::process::id()));
        let recs = |n: usize, seed: u64| -> Vec<ProteinRecord> {
            (0..n)
                .map(|i| ProteinRecord {
                    id: format!("p{i}"),
                    seq: random_protein(20 + i, seed + i as u64),
                })
                .collect()
        };
        write_protein_fasta_file(&p1, &recs(3, 1)).unwrap();
        write_protein_fasta_file(&p2, &recs(5, 2)).unwrap();
        let handle = EpochDb::load_protein(&p1).unwrap();
        assert_eq!(handle.current().db.len(), 3);
        // A protein file with residues outside the DNA alphabet reloads
        // fine because the handle remembers its alphabet...
        assert_eq!(handle.reload(&p2).unwrap().db.len(), 5);
        // ...while the same file fails through a DNA handle.
        let dna = EpochDb::new(SeqDatabase::from_records(vec![]), &p1);
        std::fs::write(&p1, ">x\nWQHKRWCEW\n").unwrap();
        assert!(dna.reload(&p1).is_err());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn failed_reload_leaves_current_untouched() {
        let p1 = write_db("c", 2, 3);
        let handle = EpochDb::load(&p1).unwrap();
        assert!(handle.reload("/nonexistent/nope.fa").is_err());
        assert_eq!(handle.current().epoch, 1);
        assert_eq!(handle.current().db.len(), 2);
        std::fs::remove_file(&p1).ok();
    }
}
