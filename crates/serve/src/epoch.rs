//! The hot-reloadable database: epoch-stamped `Arc` snapshots.
//!
//! A reload must be **atomic** for readers (a request sees entirely the
//! old database or entirely the new one, never a mix) and **non-fatal**
//! for in-flight work (requests already dispatched finish against the
//! arena they started with). Both fall out of one representation: the
//! resident database is an `Arc<DbSnapshot>` behind a mutex, swapped
//! wholesale on reload. A worker clones the `Arc` once at dispatch and
//! keeps the old arena alive for exactly as long as it needs it; the
//! epoch is bumped with the swap, so the result cache's epoch-stamped
//! keys cleanly separate answers computed before and after.
//!
//! A **failed** reload (missing file, parse error) leaves the current
//! snapshot untouched — the service keeps answering on the old epoch.

use crate::ServeError;
use genomedsm_batch::SeqDatabase;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// One immutable generation of the resident database.
#[derive(Debug)]
pub struct DbSnapshot {
    /// Monotonically increasing generation number (starts at 1).
    pub epoch: u64,
    /// The length-sorted record arena.
    pub db: SeqDatabase,
    /// Where this generation was loaded from.
    pub source: PathBuf,
}

/// The swappable handle the server shares with its workers.
pub struct EpochDb {
    current: Mutex<Arc<DbSnapshot>>,
}

impl EpochDb {
    /// Wraps an already-loaded database as epoch 1.
    pub fn new(db: SeqDatabase, source: impl Into<PathBuf>) -> Self {
        Self {
            current: Mutex::new(Arc::new(DbSnapshot {
                epoch: 1,
                db,
                source: source.into(),
            })),
        }
    }

    /// Loads `path` and wraps it as epoch 1.
    ///
    /// # Errors
    /// [`ServeError::Batch`] if the file is unreadable, malformed, or
    /// empty.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let db = SeqDatabase::load_fasta_file(path)?;
        Ok(Self::new(db, path))
    }

    /// The current snapshot. Cheap (one `Arc` clone); hold the returned
    /// `Arc` for the duration of a request and the arena cannot change
    /// underneath it.
    pub fn current(&self) -> Arc<DbSnapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the database with the contents of `path`,
    /// bumping the epoch. Returns the new snapshot.
    ///
    /// # Errors
    /// [`ServeError::Batch`] on load failure — the current snapshot is
    /// left untouched (the service keeps serving the old epoch).
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<Arc<DbSnapshot>, ServeError> {
        let path = path.as_ref();
        // Load outside the lock: readers keep snapshotting the old arena
        // while the new one parses.
        let db = SeqDatabase::load_fasta_file(path)?;
        let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let next = Arc::new(DbSnapshot {
            epoch: current.epoch + 1,
            db,
            source: path.to_path_buf(),
        });
        *current = Arc::clone(&next);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_seq::fasta::{write_fasta_file, FastaRecord};
    use genomedsm_seq::random_dna;

    fn write_db(name: &str, n: usize, seed: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("genomedsm-epoch-{}-{name}.fa", std::process::id()));
        let records: Vec<FastaRecord> = (0..n)
            .map(|i| FastaRecord {
                id: format!("r{i}"),
                seq: random_dna(30 + i, seed + i as u64),
            })
            .collect();
        write_fasta_file(&path, &records).unwrap();
        path
    }

    #[test]
    fn reload_bumps_epoch_and_keeps_old_snapshot_alive() {
        let p1 = write_db("a", 3, 1);
        let p2 = write_db("b", 5, 2);
        let handle = EpochDb::load(&p1).unwrap();
        let old = handle.current();
        assert_eq!(old.epoch, 1);
        assert_eq!(old.db.len(), 3);

        let new = handle.reload(&p2).unwrap();
        assert_eq!(new.epoch, 2);
        assert_eq!(new.db.len(), 5);
        assert_eq!(handle.current().epoch, 2);
        // The held Arc still reads the old arena.
        assert_eq!(old.db.len(), 3);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn failed_reload_leaves_current_untouched() {
        let p1 = write_db("c", 2, 3);
        let handle = EpochDb::load(&p1).unwrap();
        assert!(handle.reload("/nonexistent/nope.fa").is_err());
        assert_eq!(handle.current().epoch, 1);
        assert_eq!(handle.current().db.len(), 2);
        std::fs::remove_file(&p1).ok();
    }
}
