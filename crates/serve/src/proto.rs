//! The service wire protocol: dsm-framed messages, one hex line each.
//!
//! Every message is a checksummed binary frame built with the `dsm`
//! codec's [`FrameWriter`] and decoded — without ever panicking — by
//! [`FrameReader`]. Frames are hex-armored onto a single line
//! ([`to_hex_line`] / [`from_hex_line`]), so the transport is plain
//! line-delimited text while every payload byte stays under the wrapping
//! byte-sum checksum; a corrupted or truncated line surfaces as a typed
//! error, never a wrong answer.
//!
//! The exchange is client-driven:
//!
//! ```text
//! client                         server
//!   Hello {name, weight}    →
//!                           ←    Welcome {epoch, records}
//!   Search {id, queries,…}  →
//!                           ←    Hits {id, query 0, …}   (streamed,
//!                           ←    Hits {id, query 1, …}    ascending)
//!                           ←    Done {id, queries}
//!   Search {id', …}         →
//!                           ←    Overloaded {id', depth, limit}
//!   Reload {path}           →
//!                           ←    Reloaded {epoch, records, purged}
//!   Stats                   →
//!                           ←    StatsReply {…}
//! ```
//!
//! `Hits` messages for one request arrive in ascending query order and
//! each carries that query's *final* top-k (the engine's streaming
//! emission) — the received stream is always a prefix of the complete
//! answer.

use genomedsm_batch::Hit;
use genomedsm_core::submat::{MatrixScoring, SubstMatrix, AA_N};
use genomedsm_dsm::{DsmError, FrameReader, FrameWriter};

const REQ_HELLO: u8 = 0x40;
const REQ_SEARCH: u8 = 0x41;
const REQ_RELOAD: u8 = 0x42;
const REQ_STATS: u8 = 0x43;
const REQ_SHUTDOWN: u8 = 0x44;

const RSP_WELCOME: u8 = 0x50;
const RSP_HITS: u8 = 0x51;
const RSP_DONE: u8 = 0x52;
const RSP_OVERLOADED: u8 = 0x53;
const RSP_RELOADED: u8 = 0x54;
const RSP_STATS: u8 = 0x55;
const RSP_ERROR: u8 = 0x56;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
// `Search` carries the full 24x24 substitution matrix inline; requests are
// transient (decode, serve, drop), so the size is irrelevant and keeping
// `MatrixScoring` unboxed lets it flow into `ScoreMode` by plain copy.
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Introduces the client: a display name for the fairness ledger and
    /// a scheduling weight (≥ 1; a weight-2 client is entitled to twice
    /// the served units of a weight-1 client under contention).
    Hello {
        /// Client name (fairness ledger key).
        client: String,
        /// Scheduling weight, clamped to ≥ 1 by the server.
        weight: u32,
    },
    /// A search: score every query against the resident database.
    Search {
        /// Client-chosen request id, echoed on every response.
        id: u64,
        /// Hits to keep per query.
        top_k: u32,
        /// Query sequences.
        queries: Vec<Vec<u8>>,
        /// Protein scoring override: the full substitution matrix plus
        /// affine gap penalties. `None` runs the server's configured
        /// scoring mode (DNA linear-gap by default). The matrix travels
        /// in full — 24×24 `i16` scores — so a client can use any scheme,
        /// not just the baked-in names, and the server's cache keys on
        /// its fingerprint.
        scoring: Option<MatrixScoring>,
    },
    /// Hot-reload the database from a FASTA path visible to the server.
    Reload {
        /// The FASTA file to load.
        path: String,
    },
    /// Ask for service statistics.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session opener: the resident database's identity.
    Welcome {
        /// Current database epoch.
        epoch: u64,
        /// Records in the database.
        records: u64,
    },
    /// One query's final top-k (streamed in ascending query order).
    Hits {
        /// The request this answers.
        id: u64,
        /// Query index within the request.
        query: u32,
        /// Whether this answer came from the result cache.
        cached: bool,
        /// Database epoch the answer was computed against.
        epoch: u64,
        /// The top-k hits, best first.
        hits: Vec<Hit>,
    },
    /// The request is complete; all `queries` answers were sent.
    Done {
        /// The request this finishes.
        id: u64,
        /// Number of queries answered.
        queries: u32,
    },
    /// Admission control refused the request: the queue is full.
    Overloaded {
        /// The refused request.
        id: u64,
        /// Queue depth at rejection.
        depth: u64,
        /// Queue capacity.
        limit: u64,
    },
    /// A reload completed.
    Reloaded {
        /// The new epoch.
        epoch: u64,
        /// Records in the new database.
        records: u64,
        /// Cache entries purged (exactly the superseded epochs).
        purged: u64,
    },
    /// Service statistics snapshot.
    StatsReply(ServiceStats),
    /// A request-level failure (bad reload path, malformed search…).
    Error {
        /// The request this concerns (0 when unattributable).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
}

/// A statistics snapshot, as carried by [`Response::StatsReply`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Current database epoch.
    pub epoch: u64,
    /// Records in the resident database.
    pub records: u64,
    /// Requests currently queued.
    pub depth: u64,
    /// Highest queue depth observed.
    pub high_water: u64,
    /// Queue capacity (admission limit).
    pub capacity: u64,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused with `Overloaded`.
    pub rejected: u64,
    /// Requests dispatched to workers.
    pub dispatched: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache insertions.
    pub cache_inserts: u64,
    /// Cache entries evicted by capacity.
    pub cache_evicted: u64,
    /// Cache entries purged by epoch reloads.
    pub cache_stale_purged: u64,
    /// Malformed or undecodable request lines the server has seen.
    pub protocol_errors: u64,
    /// Per-client fairness ledger.
    pub clients: Vec<ClientLedger>,
}

/// One client's row in the fairness ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientLedger {
    /// Client name (from `Hello`).
    pub client: String,
    /// Scheduling weight.
    pub weight: u64,
    /// Requests this client submitted.
    pub submitted: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests dispatched to a worker.
    pub dispatched: u64,
    /// Work units (queries) served for this client.
    pub served_units: u64,
}

impl Request {
    /// Encodes the request into one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { client, weight } => {
                let mut w = FrameWriter::new(REQ_HELLO);
                w.str(client);
                w.u32(*weight);
                w.finish()
            }
            Request::Search {
                id,
                top_k,
                queries,
                scoring,
            } => {
                let mut w = FrameWriter::new(REQ_SEARCH);
                w.u64(*id);
                w.u32(*top_k);
                w.u64(queries.len() as u64);
                for q in queries {
                    w.bytes(q);
                }
                match scoring {
                    None => w.u32(0),
                    Some(ms) => {
                        w.u32(1);
                        w.bytes(&matrix_bytes(&ms.matrix));
                        w.u32(ms.gap_open as u32);
                        w.u32(ms.gap_extend as u32);
                    }
                }
                w.finish()
            }
            Request::Reload { path } => {
                let mut w = FrameWriter::new(REQ_RELOAD);
                w.str(path);
                w.finish()
            }
            Request::Stats => FrameWriter::new(REQ_STATS).finish(),
            Request::Shutdown => FrameWriter::new(REQ_SHUTDOWN).finish(),
        }
    }

    /// Decodes one frame into a request.
    ///
    /// # Errors
    /// Typed [`DsmError`] on any malformation; never panics.
    pub fn decode(frame: &[u8]) -> Result<Self, DsmError> {
        let mut r = FrameReader::checked(frame)?;
        let tag = r.u8()?;
        match tag {
            REQ_HELLO => {
                let client = r.str()?;
                let weight = r.u32()?;
                r.done(Request::Hello { client, weight })
            }
            REQ_SEARCH => {
                let id = r.u64()?;
                let top_k = r.u32()?;
                let n = r.len(8)?;
                let queries = (0..n).map(|_| r.bytes()).collect::<Result<_, _>>()?;
                let scoring = match r.u32()? {
                    0 => None,
                    1 => Some(read_scoring(&mut r)?),
                    other => {
                        return Err(DsmError::Oversize {
                            len: other as usize,
                            max: 1,
                        })
                    }
                };
                r.done(Request::Search {
                    id,
                    top_k,
                    queries,
                    scoring,
                })
            }
            REQ_RELOAD => {
                let path = r.str()?;
                r.done(Request::Reload { path })
            }
            REQ_STATS => r.done(Request::Stats),
            REQ_SHUTDOWN => r.done(Request::Shutdown),
            other => Err(DsmError::BadTag(other)),
        }
    }
}

/// Bytes of a Search frame's matrix payload: 24×24 `i16` scores,
/// row-major, little-endian.
const MATRIX_BYTES: usize = AA_N * AA_N * 2;

fn matrix_bytes(m: &SubstMatrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(MATRIX_BYTES);
    for row in m.table() {
        for &s in row {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out
}

fn read_scoring(r: &mut FrameReader<'_>) -> Result<MatrixScoring, DsmError> {
    let raw = r.bytes()?;
    if raw.len() != MATRIX_BYTES {
        return Err(DsmError::Oversize {
            len: raw.len(),
            max: MATRIX_BYTES,
        });
    }
    let mut scores = [[0i16; AA_N]; AA_N];
    for (cell, pair) in scores.iter_mut().flatten().zip(raw.chunks_exact(2)) {
        if let &[a, b] = pair {
            *cell = i16::from_le_bytes([a, b]);
        }
    }
    let gap_open = r.u32()? as i32;
    let gap_extend = r.u32()? as i32;
    Ok(MatrixScoring::new(
        SubstMatrix::from_scores(scores),
        gap_open,
        gap_extend,
    ))
}

fn write_hits(w: &mut FrameWriter, hits: &[Hit]) {
    w.u64(hits.len() as u64);
    for h in hits {
        w.u32(h.score as u32);
        w.usize(h.target);
        w.usize(h.end.0);
        w.usize(h.end.1);
    }
}

fn read_hits(r: &mut FrameReader<'_>) -> Result<Vec<Hit>, DsmError> {
    let n = r.len(28)?;
    (0..n)
        .map(|_| {
            Ok(Hit {
                score: r.u32()? as i32,
                target: r.usize()?,
                end: (r.usize()?, r.usize()?),
            })
        })
        .collect()
}

impl Response {
    /// Encodes the response into one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Welcome { epoch, records } => {
                let mut w = FrameWriter::new(RSP_WELCOME);
                w.u64(*epoch);
                w.u64(*records);
                w.finish()
            }
            Response::Hits {
                id,
                query,
                cached,
                epoch,
                hits,
            } => {
                let mut w = FrameWriter::new(RSP_HITS);
                w.u64(*id);
                w.u32(*query);
                w.u32(u32::from(*cached));
                w.u64(*epoch);
                write_hits(&mut w, hits);
                w.finish()
            }
            Response::Done { id, queries } => {
                let mut w = FrameWriter::new(RSP_DONE);
                w.u64(*id);
                w.u32(*queries);
                w.finish()
            }
            Response::Overloaded { id, depth, limit } => {
                let mut w = FrameWriter::new(RSP_OVERLOADED);
                w.u64(*id);
                w.u64(*depth);
                w.u64(*limit);
                w.finish()
            }
            Response::Reloaded {
                epoch,
                records,
                purged,
            } => {
                let mut w = FrameWriter::new(RSP_RELOADED);
                w.u64(*epoch);
                w.u64(*records);
                w.u64(*purged);
                w.finish()
            }
            Response::StatsReply(s) => {
                let mut w = FrameWriter::new(RSP_STATS);
                for v in [
                    s.epoch,
                    s.records,
                    s.depth,
                    s.high_water,
                    s.capacity,
                    s.submitted,
                    s.rejected,
                    s.dispatched,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_inserts,
                    s.cache_evicted,
                    s.cache_stale_purged,
                    s.protocol_errors,
                ] {
                    w.u64(v);
                }
                w.u64(s.clients.len() as u64);
                for c in &s.clients {
                    w.str(&c.client);
                    w.u64(c.weight);
                    w.u64(c.submitted);
                    w.u64(c.rejected);
                    w.u64(c.dispatched);
                    w.u64(c.served_units);
                }
                w.finish()
            }
            Response::Error { id, message } => {
                let mut w = FrameWriter::new(RSP_ERROR);
                w.u64(*id);
                w.str(message);
                w.finish()
            }
        }
    }

    /// Decodes one frame into a response.
    ///
    /// # Errors
    /// Typed [`DsmError`] on any malformation; never panics.
    pub fn decode(frame: &[u8]) -> Result<Self, DsmError> {
        let mut r = FrameReader::checked(frame)?;
        let tag = r.u8()?;
        match tag {
            RSP_WELCOME => {
                let epoch = r.u64()?;
                let records = r.u64()?;
                r.done(Response::Welcome { epoch, records })
            }
            RSP_HITS => {
                let id = r.u64()?;
                let query = r.u32()?;
                let cached = r.u32()? != 0;
                let epoch = r.u64()?;
                let hits = read_hits(&mut r)?;
                r.done(Response::Hits {
                    id,
                    query,
                    cached,
                    epoch,
                    hits,
                })
            }
            RSP_DONE => {
                let id = r.u64()?;
                let queries = r.u32()?;
                r.done(Response::Done { id, queries })
            }
            RSP_OVERLOADED => {
                let id = r.u64()?;
                let depth = r.u64()?;
                let limit = r.u64()?;
                r.done(Response::Overloaded { id, depth, limit })
            }
            RSP_RELOADED => {
                let epoch = r.u64()?;
                let records = r.u64()?;
                let purged = r.u64()?;
                r.done(Response::Reloaded {
                    epoch,
                    records,
                    purged,
                })
            }
            RSP_STATS => {
                let mut vals = [0u64; 14];
                for v in &mut vals {
                    *v = r.u64()?;
                }
                let n = r.len(48)?;
                let clients = (0..n)
                    .map(|_| {
                        Ok(ClientLedger {
                            client: r.str()?,
                            weight: r.u64()?,
                            submitted: r.u64()?,
                            rejected: r.u64()?,
                            dispatched: r.u64()?,
                            served_units: r.u64()?,
                        })
                    })
                    .collect::<Result<_, DsmError>>()?;
                let [epoch, records, depth, high_water, capacity, submitted, rejected, dispatched, cache_hits, cache_misses, cache_inserts, cache_evicted, cache_stale_purged, protocol_errors] =
                    vals;
                r.done(Response::StatsReply(ServiceStats {
                    epoch,
                    records,
                    depth,
                    high_water,
                    capacity,
                    submitted,
                    rejected,
                    dispatched,
                    cache_hits,
                    cache_misses,
                    cache_inserts,
                    cache_evicted,
                    cache_stale_purged,
                    protocol_errors,
                    clients,
                }))
            }
            RSP_ERROR => {
                let id = r.u64()?;
                let message = r.str()?;
                r.done(Response::Error { id, message })
            }
            other => Err(DsmError::BadTag(other)),
        }
    }
}

/// Hex-armors a frame onto one line (lowercase, no newline).
pub fn to_hex_line(frame: &[u8]) -> String {
    let mut s = String::with_capacity(frame.len() * 2);
    for &b in frame {
        let hi = b >> 4;
        let lo = b & 0xf;
        s.push(char::from_digit(hi as u32, 16).unwrap_or('0'));
        s.push(char::from_digit(lo as u32, 16).unwrap_or('0'));
    }
    s
}

/// Decodes one hex-armored line back into frame bytes.
///
/// # Errors
/// [`crate::ServeError::BadLine`] on odd length or a non-hex character —
/// the transport-level counterpart of a checksum failure.
pub fn from_hex_line(line: &str) -> Result<Vec<u8>, crate::ServeError> {
    let line = line.trim();
    if !line.len().is_multiple_of(2) {
        return Err(crate::ServeError::BadLine {
            what: format!("odd hex length {}", line.len()),
        });
    }
    let mut out = Vec::with_capacity(line.len() / 2);
    let bytes = line.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let &[h, l] = pair else {
            continue;
        };
        let hi = hex_val(h).ok_or_else(|| crate::ServeError::BadLine {
            what: format!("non-hex byte {h:#04x}"),
        })?;
        let lo = hex_val(l).ok_or_else(|| crate::ServeError::BadLine {
            what: format!("non-hex byte {l:#04x}"),
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = req.encode();
        assert_eq!(Request::decode(&frame).unwrap(), req);
        let line = to_hex_line(&frame);
        assert!(!line.contains('\n'));
        assert_eq!(from_hex_line(&line).unwrap(), frame);
    }

    fn roundtrip_rsp(rsp: Response) {
        let frame = rsp.encode();
        assert_eq!(Response::decode(&frame).unwrap(), rsp);
        assert_eq!(from_hex_line(&to_hex_line(&frame)).unwrap(), frame);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            client: "alice".into(),
            weight: 3,
        });
        roundtrip_req(Request::Search {
            id: 42,
            top_k: 5,
            queries: vec![b"ACGT".to_vec(), b"".to_vec(), b"GATTACA".to_vec()],
            scoring: None,
        });
        roundtrip_req(Request::Reload {
            path: "/tmp/db.fa".into(),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_rsp(Response::Welcome {
            epoch: 1,
            records: 9,
        });
        roundtrip_rsp(Response::Hits {
            id: 7,
            query: 2,
            cached: true,
            epoch: 3,
            hits: vec![
                Hit {
                    score: 11,
                    target: 4,
                    end: (5, 6),
                },
                Hit {
                    score: 3,
                    target: 0,
                    end: (0, 1),
                },
            ],
        });
        roundtrip_rsp(Response::Done { id: 7, queries: 3 });
        roundtrip_rsp(Response::Overloaded {
            id: 9,
            depth: 16,
            limit: 16,
        });
        roundtrip_rsp(Response::Reloaded {
            epoch: 2,
            records: 12,
            purged: 5,
        });
        roundtrip_rsp(Response::StatsReply(ServiceStats {
            epoch: 2,
            records: 10,
            depth: 1,
            high_water: 4,
            capacity: 16,
            submitted: 20,
            rejected: 2,
            dispatched: 19,
            cache_hits: 7,
            cache_misses: 12,
            cache_inserts: 12,
            cache_evicted: 1,
            cache_stale_purged: 3,
            protocol_errors: 0,
            clients: vec![ClientLedger {
                client: "bob".into(),
                weight: 2,
                submitted: 10,
                rejected: 1,
                dispatched: 9,
                served_units: 40,
            }],
        }));
        roundtrip_rsp(Response::Error {
            id: 0,
            message: "no such file".into(),
        });
    }

    #[test]
    fn protein_scoring_params_roundtrip_in_full() {
        // A named matrix with non-default gaps...
        roundtrip_req(Request::Search {
            id: 9,
            top_k: 3,
            queries: vec![b"WQHKRWCEW".to_vec()],
            scoring: Some(MatrixScoring::new(SubstMatrix::pam250(), -10, -2)),
        });
        // ...and a fully custom table: every cell must survive the wire.
        let mut scores = [[0i16; AA_N]; AA_N];
        for (i, row) in scores.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i as i16 * 24 + j as i16) - 288;
            }
        }
        let ms = MatrixScoring::new(SubstMatrix::from_scores(scores), -7, -1);
        let req = Request::Search {
            id: 10,
            top_k: 1,
            queries: vec![b"ARND".to_vec()],
            scoring: Some(ms),
        };
        roundtrip_req(req.clone());
        match Request::decode(&req.encode()).unwrap() {
            Request::Search {
                scoring: Some(got), ..
            } => {
                assert_eq!(got, ms);
                assert_eq!(got.fingerprint(), ms.fingerprint());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn truncated_matrix_payload_is_a_typed_error() {
        // Hand-build a Search frame whose matrix blob is one byte short:
        // the decoder must refuse with a typed error, never panic.
        let mut w = FrameWriter::new(REQ_SEARCH);
        w.u64(1);
        w.u32(1);
        w.u64(0);
        w.u32(1);
        w.bytes(&vec![0u8; MATRIX_BYTES - 1]);
        w.u32(0);
        w.u32(0);
        assert!(Request::decode(&w.finish()).is_err());
        // And a presence flag outside {0, 1} is malformed too.
        let mut w = FrameWriter::new(REQ_SEARCH);
        w.u64(1);
        w.u32(1);
        w.u64(0);
        w.u32(7);
        assert!(Request::decode(&w.finish()).is_err());
    }

    #[test]
    fn corrupted_line_is_a_typed_error_never_a_panic() {
        let frame = Request::Stats.encode();
        let mut line = to_hex_line(&frame);
        // Flip one hex digit: the checksum catches it.
        let flipped = if line.ends_with('0') { '1' } else { '0' };
        line.pop();
        line.push(flipped);
        let bytes = from_hex_line(&line).unwrap();
        assert!(Request::decode(&bytes).is_err());
        // Structural junk.
        assert!(from_hex_line("zz").is_err());
        assert!(from_hex_line("abc").is_err());
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[1, 2, 3]).is_err());
        // Wrong-family tag.
        let rsp_frame = Response::Done { id: 1, queries: 1 }.encode();
        assert!(Request::decode(&rsp_frame).is_err());
    }

    #[test]
    fn negative_scores_survive_the_u32_cast() {
        // Hits always have score > 0 in practice, but the codec must not
        // corrupt values regardless.
        roundtrip_rsp(Response::Hits {
            id: 1,
            query: 0,
            cached: false,
            epoch: 1,
            hits: vec![Hit {
                score: -5,
                target: 1,
                end: (2, 3),
            }],
        });
    }
}
