//! Admission control: a bounded queue with weighted fair dispatch.
//!
//! The service must degrade by **refusing**, never by hanging or by
//! silently dropping: when the queue is at capacity, `submit` returns a
//! typed [`Overloaded`] immediately (the caller turns it into an
//! `Overloaded` response), and once a request is accepted it is
//! dispatched exactly once — the `genomedsm-verify` admission model
//! proves *accepted ⇒ eventually dispatched, exactly once* and catches
//! the known-bad variant that drops a request on reject.
//!
//! Dispatch order is **weighted fair** across clients: among clients
//! with pending requests, pick the one with the smallest
//! `served_units / weight` ratio (compared exactly via cross
//! multiplication — no floats), FIFO within a client, lexicographic
//! client name as the deterministic tie-break. A client that floods the
//! queue can exhaust *its own* patience, not other clients' throughput:
//! the ratio ledger keeps light clients ahead of heavy ones at every
//! pick, which is the fairness the e2e test reads out of
//! [`AdmissionStats`].
//!
//! This sits *above* the batch scheduler's windowed backpressure: this
//! queue decides **which request** runs next; the scheduler's window
//! bounds in-flight jobs **within** the request that is running.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex, PoisonError};

/// Typed rejection: the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Queue depth at the moment of rejection (== `limit`).
    pub depth: usize,
    /// The queue's capacity.
    pub limit: usize,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full: depth {} of {}", self.depth, self.limit)
    }
}

impl std::error::Error for Overloaded {}

/// One client's ledger row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientStats {
    /// Client name.
    pub client: String,
    /// Scheduling weight (≥ 1).
    pub weight: u64,
    /// Requests accepted from this client.
    pub submitted: u64,
    /// Requests refused with [`Overloaded`].
    pub rejected: u64,
    /// Requests dispatched to a worker.
    pub dispatched: u64,
    /// Work units (query count) dispatched for this client.
    pub served_units: u64,
}

/// Queue-level counters plus the per-client ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests currently queued.
    pub depth: u64,
    /// Highest depth ever observed (the watermark).
    pub high_water: u64,
    /// The admission limit.
    pub capacity: u64,
    /// Total requests accepted.
    pub submitted: u64,
    /// Total requests refused.
    pub rejected: u64,
    /// Total requests dispatched.
    pub dispatched: u64,
    /// Per-client rows, sorted by client name.
    pub clients: Vec<ClientStats>,
}

struct ClientState<T> {
    weight: u64,
    pending: VecDeque<(u64, T)>,
    submitted: u64,
    rejected: u64,
    dispatched: u64,
    served_units: u64,
}

struct QueueInner<T> {
    clients: HashMap<String, ClientState<T>>,
    depth: usize,
    high_water: usize,
    submitted: u64,
    rejected: u64,
    dispatched: u64,
    closed: bool,
}

/// The bounded, weighted-fair request queue.
///
/// `T` is the request payload; each entry also carries a work-unit count
/// used for the fairness ledger (the service uses the request's query
/// count).
pub struct AdmissionQueue<T> {
    capacity: usize,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` requests (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                clients: HashMap::new(),
                depth: 0,
                high_water: 0,
                submitted: 0,
                rejected: 0,
                dispatched: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a request from `client` (with scheduling `weight`, clamped
    /// to ≥ 1, and `units` of work for the fairness ledger).
    ///
    /// # Errors
    /// [`Overloaded`] when the queue is at capacity — recorded in the
    /// client's ledger; the request is **not** enqueued. Also refused
    /// (as `Overloaded` at zero capacity) after [`close`](Self::close).
    pub fn submit(&self, client: &str, weight: u64, units: u64, item: T) -> Result<(), Overloaded> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let state = inner
            .clients
            .entry(client.to_string())
            .or_insert_with(|| ClientState {
                weight: weight.max(1),
                pending: VecDeque::new(),
                submitted: 0,
                rejected: 0,
                dispatched: 0,
                served_units: 0,
            });
        state.weight = weight.max(1);
        if inner.closed {
            inner.rejected += 1;
            if let Some(s) = inner.clients.get_mut(client) {
                s.rejected += 1;
            }
            return Err(Overloaded { depth: 0, limit: 0 });
        }
        if inner.depth >= self.capacity {
            let depth = inner.depth;
            inner.rejected += 1;
            if let Some(s) = inner.clients.get_mut(client) {
                s.rejected += 1;
            }
            return Err(Overloaded {
                depth,
                limit: self.capacity,
            });
        }
        if let Some(s) = inner.clients.get_mut(client) {
            s.pending.push_back((units, item));
            s.submitted += 1;
        }
        inner.depth += 1;
        inner.high_water = inner.high_water.max(inner.depth);
        inner.submitted += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next request under the weighted fair policy.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn next(&self) -> Option<(String, T)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(pick) = fair_pick(&inner.clients) {
                if let Some(s) = inner.clients.get_mut(&pick) {
                    if let Some((units, item)) = s.pending.pop_front() {
                        s.dispatched += 1;
                        s.served_units += units;
                        inner.depth -= 1;
                        inner.dispatched += 1;
                        return Some((pick, item));
                    }
                }
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending requests still drain through
    /// [`next`](Self::next); new submissions are refused; blocked workers
    /// wake up.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// A snapshot of the counters and the per-client ledger.
    pub fn stats(&self) -> AdmissionStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut clients: Vec<ClientStats> = inner
            .clients
            .iter()
            .map(|(name, s)| ClientStats {
                client: name.clone(),
                weight: s.weight,
                submitted: s.submitted,
                rejected: s.rejected,
                dispatched: s.dispatched,
                served_units: s.served_units,
            })
            .collect();
        clients.sort_by(|a, b| a.client.cmp(&b.client));
        AdmissionStats {
            depth: inner.depth as u64,
            high_water: inner.high_water as u64,
            capacity: self.capacity as u64,
            submitted: inner.submitted,
            rejected: inner.rejected,
            dispatched: inner.dispatched,
            clients,
        }
    }
}

/// The weighted fair pick: among clients with pending work, minimize
/// `served_units / weight` (exact integer cross-multiplication), breaking
/// ties by lexicographic client name. Deterministic given the ledger.
fn fair_pick<T>(clients: &HashMap<String, ClientState<T>>) -> Option<String> {
    let mut best: Option<(&String, &ClientState<T>)> = None;
    for (name, s) in clients {
        if s.pending.is_empty() {
            continue;
        }
        best = Some(match best {
            None => (name, s),
            Some((bn, bs)) => {
                // s.served/s.weight < bs.served/bs.weight, exactly.
                let lhs = s.served_units as u128 * bs.weight as u128;
                let rhs = bs.served_units as u128 * s.weight as u128;
                if lhs < rhs || (lhs == rhs && name < bn) {
                    (name, s)
                } else {
                    (bn, bs)
                }
            }
        });
    }
    best.map(|(name, _)| name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_typed_when_full_and_never_hangs() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2);
        q.submit("a", 1, 1, 1).unwrap();
        q.submit("a", 1, 1, 2).unwrap();
        let err = q.submit("a", 1, 1, 3).unwrap_err();
        assert_eq!(err, Overloaded { depth: 2, limit: 2 });
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected, s.depth), (2, 1, 2));
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn fair_pick_follows_served_over_weight() {
        let q: AdmissionQueue<&'static str> = AdmissionQueue::new(16);
        // heavy has weight 2, light weight 1; heavy floods first.
        for i in 0..4 {
            q.submit("heavy", 2, 10, ["h0", "h1", "h2", "h3"][i])
                .unwrap();
        }
        q.submit("light", 1, 10, "l0").unwrap();
        // First pick: both ledgers at 0, tie broken by name → heavy.
        assert_eq!(q.next(), Some(("heavy".into(), "h0")));
        // heavy now at 10/2 = 5, light at 0/1 = 0 → light.
        assert_eq!(q.next(), Some(("light".into(), "l0")));
        // light at 10/1, heavy at 10/2 → heavy drains.
        assert_eq!(q.next(), Some(("heavy".into(), "h1")));
        assert_eq!(q.next(), Some(("heavy".into(), "h2")));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(4));
        q.submit("a", 1, 1, 7).unwrap();
        q.close();
        assert!(q.submit("a", 1, 1, 8).is_err(), "closed queue refuses");
        assert_eq!(q.next(), Some(("a".into(), 7)));
        assert_eq!(q.next(), None);
        // A blocked worker on an empty closed queue also gets None.
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.next());
        assert_eq!(h.join().ok().flatten(), None);
    }

    #[test]
    fn fifo_within_a_client() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8);
        for i in 0..5 {
            q.submit("only", 1, 1, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.next(), Some(("only".into(), i)));
        }
    }
}
