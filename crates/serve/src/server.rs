//! The Unix-socket alignment server.
//!
//! Thread layout (see DESIGN.md §5.11):
//!
//! ```text
//! listener ──accept──▶ per-connection reader ──Search──▶ admission queue
//!                          │ (Hello/Reload/Stats/                │ fair pick
//!                          │  Shutdown handled inline)           ▼
//!                          │                               worker pool
//!                          ▼                                     │
//!                    per-connection writer ◀──mpsc──────────────┘
//! ```
//!
//! * The **reader** thread parses hex lines into [`Request`]s. Admin
//!   requests (`Hello`, `Reload`, `Stats`, `Shutdown`) are answered
//!   inline — they must not sit behind queued searches. `Search` goes
//!   through [`AdmissionQueue::submit`]; a full queue answers
//!   [`Response::Overloaded`] immediately (refuse, never hang).
//! * **Workers** pull requests under the weighted fair policy, snapshot
//!   the database epoch once ([`EpochDb::current`] — held for the whole
//!   request, so a concurrent hot-reload cannot fail it), consult the
//!   result cache per query, batch the misses through the shared
//!   engine-core path, and stream each query's final top-k in ascending
//!   query order.
//! * The **writer** thread serializes responses from an unbounded mpsc
//!   channel, so a slow client blocks only its own writer — never a
//!   worker, never another client (the chaos e2e test injects exactly
//!   this).
//!
//! Shutdown never sleeps or spins: a flag plus a self-connection to the
//! listener plus socket read timeouts wake every blocked thread.

use crate::admission::AdmissionQueue;
use crate::cache::{QueryKey, ResultCache};
use crate::epoch::EpochDb;
use crate::proto::{from_hex_line, to_hex_line, ClientLedger, Request, Response, ServiceStats};
use crate::ServeError;
use genomedsm_batch::{run, BatchConfig, BatchEngine, Hit, ScoreMode};
use genomedsm_core::submat::MatrixScoring;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads re-check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);
/// Bound on a writer blocked against a dead-but-open client socket.
const WRITE_LIMIT: Duration = Duration::from_secs(10);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (created at start, removed at stop).
    pub socket: PathBuf,
    /// FASTA file holding the initial database.
    pub db_path: PathBuf,
    /// Admission limit: queued requests beyond this are refused.
    pub queue_capacity: usize,
    /// Result-cache capacity in answers (0 disables caching).
    pub cache_capacity: usize,
    /// Service worker threads (each runs one request at a time).
    pub workers: usize,
    /// Engine configuration; `top_k` is the default when a request asks
    /// for 0.
    pub engine: BatchConfig,
}

impl ServerConfig {
    /// A config with serving defaults: queue of 16, cache of 1024,
    /// 2 workers.
    pub fn new(socket: impl Into<PathBuf>, db_path: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            db_path: db_path.into(),
            queue_capacity: 16,
            cache_capacity: 1024,
            workers: 2,
            engine: BatchConfig::default(),
        }
    }
}

/// One queued search, carrying its response channel.
struct SearchJob {
    id: u64,
    top_k: usize,
    queries: Vec<Vec<u8>>,
    scoring: Option<MatrixScoring>,
    reply: Sender<Response>,
}

/// Cache-key fingerprint of a scoring mode. DNA linear-gap scoring is a
/// fixed sentinel (the config's `Scoring` never varies per request);
/// protein schemes hash the full matrix plus both gap penalties, so two
/// requests share a cache line only when every scoring parameter agrees.
fn mode_fingerprint(mode: &ScoreMode) -> u64 {
    match mode {
        ScoreMode::Dna => 0x646e_615f_6d6f_6465, // "dna_mode"
        ScoreMode::Protein(ms) => ms.fingerprint(),
    }
}

struct Shared {
    config: ServerConfig,
    queue: AdmissionQueue<SearchJob>,
    cache: ResultCache,
    db: EpochDb,
    shutdown: AtomicBool,
    protocol_errors: AtomicU64,
    anon: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn stats(&self) -> ServiceStats {
        let snap = self.db.current();
        let q = self.queue.stats();
        let c = self.cache.stats();
        ServiceStats {
            epoch: snap.epoch,
            records: snap.db.len() as u64,
            depth: q.depth,
            high_water: q.high_water,
            capacity: q.capacity,
            submitted: q.submitted,
            rejected: q.rejected,
            dispatched: q.dispatched,
            cache_hits: c.hits,
            cache_misses: c.misses,
            cache_inserts: c.inserts,
            cache_evicted: c.evicted,
            cache_stale_purged: c.stale_purged,
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            clients: q
                .clients
                .into_iter()
                .map(|s| ClientLedger {
                    client: s.client,
                    weight: s.weight,
                    submitted: s.submitted,
                    rejected: s.rejected,
                    dispatched: s.dispatched,
                    served_units: s.served_units,
                })
                .collect(),
        }
    }

    /// Wakes everything that could be blocked: workers (queue close),
    /// the listener (self-connect), readers (their read timeouts see the
    /// flag).
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        if let Ok(stream) = UnixStream::connect(&self.config.socket) {
            drop(stream);
        }
    }
}

/// A running alignment server; dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads the database from `config.db_path` and starts serving.
    ///
    /// # Errors
    /// [`ServeError`] if the database fails to load or the socket cannot
    /// be bound.
    pub fn start(config: ServerConfig) -> Result<Self, ServeError> {
        // A protein-mode engine gets a protein-alphabet database (and
        // protein-alphabet hot reloads); DNA otherwise.
        let db = match config.engine.mode {
            ScoreMode::Protein(_) => EpochDb::load_protein(&config.db_path)?,
            ScoreMode::Dna => EpochDb::load(&config.db_path)?,
        };
        Self::start_with(config, db)
    }

    /// Starts serving an already-loaded database.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the socket cannot be bound.
    pub fn start_with(config: ServerConfig, db: EpochDb) -> Result<Self, ServeError> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)
                .map_err(|e| ServeError::io(format!("remove stale {:?}", config.socket), e))?;
        }
        let listener = UnixListener::bind(&config.socket)
            .map_err(|e| ServeError::io(format!("bind {:?}", config.socket), e))?;
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            db,
            shutdown: AtomicBool::new(false),
            protocol_errors: AtomicU64::new(0),
            anon: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            config,
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let listener_handle = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Self {
            shared,
            listener: Some(listener_handle),
            workers,
        })
    }

    /// The socket clients connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.config.socket
    }

    /// A live statistics snapshot (same data as the `Stats` request).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Blocks until a client sends `Shutdown`, then tears down and
    /// returns the final statistics. This is what `genomedsm serve`
    /// parks on.
    pub fn wait(mut self) -> ServiceStats {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        self.teardown()
    }

    /// Initiates shutdown and tears down: pending accepted requests are
    /// drained (never dropped), threads are joined, the socket file is
    /// removed. Returns the final statistics.
    pub fn stop(mut self) -> ServiceStats {
        self.shared.initiate_shutdown();
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        self.teardown()
    }

    fn teardown(&mut self) -> ServiceStats {
        self.shared.initiate_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let conns = {
            let mut guard = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for h in conns {
            let _ = h.join();
        }
        std::fs::remove_file(&self.shared.config.socket).ok();
        self.shared.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.listener.is_some() || !self.workers.is_empty() {
            self.shared.initiate_shutdown();
            if let Some(h) = self.listener.take() {
                let _ = h.join();
            }
            self.teardown();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(&conn_shared, stream));
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(_) => break,
        }
    }
}

/// Reads newline-delimited hex frames with a periodic shutdown check.
struct LineReader {
    stream: UnixStream,
    buf: Vec<u8>,
    pos: usize,
}

impl LineReader {
    fn new(stream: UnixStream) -> Self {
        stream.set_read_timeout(Some(READ_TICK)).ok();
        Self {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next complete line, or `None` on EOF / error / shutdown.
    fn next_line(&mut self, shutdown: &AtomicBool) -> Option<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.buf[self.pos..self.pos + nl]).into_owned();
                self.pos += nl + 1;
                if self.pos > 1 << 16 {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                return Some(line);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return None,
            }
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: UnixStream) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || writer_loop(writer_stream, &rx));

    let mut reader = LineReader::new(stream);
    let anon = shared.anon.fetch_add(1, Ordering::SeqCst);
    let mut client = format!("anon-{anon}");
    let mut weight: u64 = 1;

    while let Some(line) = reader.next_line(&shared.shutdown) {
        if line.trim().is_empty() {
            continue;
        }
        let req = match from_hex_line(&line).and_then(|f| Request::decode(&f).map_err(Into::into)) {
            Ok(req) => req,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                tx.send(Response::Error {
                    id: 0,
                    message: e.to_string(),
                })
                .ok();
                continue;
            }
        };
        match req {
            Request::Hello {
                client: name,
                weight: w,
            } => {
                client = name;
                weight = u64::from(w.max(1));
                let snap = shared.db.current();
                tx.send(Response::Welcome {
                    epoch: snap.epoch,
                    records: snap.db.len() as u64,
                })
                .ok();
            }
            Request::Search {
                id,
                top_k,
                queries,
                scoring,
            } => {
                let units = queries.len().max(1) as u64;
                let job = SearchJob {
                    id,
                    top_k: top_k as usize,
                    queries,
                    scoring,
                    reply: tx.clone(),
                };
                if let Err(over) = shared.queue.submit(&client, weight, units, job) {
                    tx.send(Response::Overloaded {
                        id,
                        depth: over.depth as u64,
                        limit: over.limit as u64,
                    })
                    .ok();
                }
            }
            Request::Reload { path } => match shared.db.reload(&path) {
                Ok(snap) => {
                    let purged = shared.cache.purge_epoch(snap.epoch);
                    tx.send(Response::Reloaded {
                        epoch: snap.epoch,
                        records: snap.db.len() as u64,
                        purged,
                    })
                    .ok();
                }
                Err(e) => {
                    tx.send(Response::Error {
                        id: 0,
                        message: e.to_string(),
                    })
                    .ok();
                }
            },
            Request::Stats => {
                tx.send(Response::StatsReply(shared.stats())).ok();
            }
            Request::Shutdown => {
                tx.send(Response::Done { id: 0, queries: 0 }).ok();
                shared.initiate_shutdown();
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn writer_loop(stream: UnixStream, rx: &mpsc::Receiver<Response>) {
    stream.set_write_timeout(Some(WRITE_LIMIT)).ok();
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(resp) = rx.recv() {
        let line = to_hex_line(&resp.encode());
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            break;
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((_client, job)) = shared.queue.next() {
        serve_job(shared, job);
    }
}

/// Serves one search: cache consults per query, one batch over the
/// misses, responses streamed in ascending query order, every computed
/// answer cached under the epoch it was computed against.
fn serve_job(shared: &Arc<Shared>, job: SearchJob) {
    let snap = shared.db.current();
    let epoch = snap.epoch;
    let top_k = if job.top_k == 0 {
        shared.config.engine.top_k
    } else {
        job.top_k
    };
    // A request-level scoring override switches this job to protein mode
    // under its own matrix; otherwise the server's configured mode runs.
    let mode = match job.scoring {
        Some(ms) => ScoreMode::Protein(ms),
        None => shared.config.engine.mode,
    };
    let params = mode_fingerprint(&mode);
    let keys: Vec<QueryKey> = job.queries.iter().map(|q| QueryKey::of(q)).collect();
    let cached: Vec<Option<Arc<Vec<Hit>>>> = keys
        .iter()
        .map(|&k| shared.cache.get(k, top_k, epoch, params))
        .collect();
    let missed: Vec<usize> = (0..job.queries.len())
        .filter(|&q| cached[q].is_none())
        .collect();

    let send_hits = |q: usize, cached_hit: bool, hits: &[Hit]| {
        job.reply
            .send(Response::Hits {
                id: job.id,
                query: q as u32,
                cached: cached_hit,
                epoch,
                hits: hits.to_vec(),
            })
            .ok();
    };

    // Stream in ascending query order: computed answers arrive in
    // ascending (sub-)index order from the engine; cached answers are
    // interleaved ahead of each one, and flushed at the end.
    let mut next_to_send = 0usize;
    let flush_cached_below = |bound: usize, next_to_send: &mut usize| {
        while *next_to_send < bound {
            if let Some(hits) = &cached[*next_to_send] {
                send_hits(*next_to_send, true, hits);
            }
            *next_to_send += 1;
        }
    };

    if !missed.is_empty() {
        let engine = BatchEngine::new(BatchConfig {
            top_k,
            mode,
            ..shared.config.engine
        });
        let refs: Vec<&[u8]> = missed.iter().map(|&q| job.queries[q].as_slice()).collect();
        run::execute(&engine, &snap.db, &refs, |sub, hits| {
            let orig = missed[sub];
            flush_cached_below(orig, &mut next_to_send);
            send_hits(orig, false, hits);
            next_to_send = orig + 1;
            shared
                .cache
                .insert(keys[orig], top_k, epoch, params, Arc::new(hits.to_vec()));
        });
    }
    flush_cached_below(job.queries.len(), &mut next_to_send);
    job.reply
        .send(Response::Done {
            id: job.id,
            queries: job.queries.len() as u32,
        })
        .ok();
}
