//! The epoch-keyed result cache.
//!
//! An alignment answer is a pure function of *(query bytes, top-k,
//! database contents, scoring parameters)* — the engine is deterministic
//! for every kernel choice and worker count — so the service may reuse
//! answers exactly (the ALAE discipline, see PAPERS.md). The database is
//! identified by its **epoch** (bumped atomically on hot-reload,
//! [`crate::epoch`]), and the scoring scheme by a 64-bit **params
//! fingerprint** (a fixed constant for the DNA linear-gap mode,
//! `MatrixScoring::fingerprint()` for a protein scheme), so the cache key
//! is *(query digest, query length, top-k, epoch, params)*: a reload or a
//! different substitution matrix can never serve a stale answer because
//! stale entries simply have a key no new request asks for — and
//! [`ResultCache::purge_epoch`] reclaims superseded epochs eagerly.
//!
//! The digest is a 128-bit FNV-1a pair (two independent offset bases).
//! Collisions would need two queries agreeing on both 64-bit streams
//! *and* on length; the property tests in `tests/cache_props.rs` verify
//! hit-equals-recompute byte for byte regardless.
//!
//! Capacity is bounded; eviction is insertion-order FIFO (oldest entry
//! first), which is epoch-friendly: old-epoch entries are by construction
//! the oldest and drain out first under pressure.

use genomedsm_batch::Hit;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Content digest of one query: two independent 64-bit FNV-1a streams
/// plus the exact length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    digest: (u64, u64),
    len: u64,
}

impl QueryKey {
    /// Digests the query bytes.
    pub fn of(query: &[u8]) -> Self {
        Self {
            digest: (fnv1a(FNV_OFFSET_A, query), fnv1a(FNV_OFFSET_B, query)),
            len: query.len() as u64,
        }
    }
}

/// Full cache key: what the answer is a pure function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    query: QueryKey,
    top_k: u64,
    epoch: u64,
    params: u64,
}

/// Cache traffic counters (monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a stored answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Answers stored.
    pub inserts: u64,
    /// Entries evicted by the capacity bound.
    pub evicted: u64,
    /// Entries purged because their epoch was superseded.
    pub stale_purged: u64,
    /// Entries currently resident.
    pub resident: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<Vec<Hit>>>,
    order: VecDeque<CacheKey>,
    stats: CacheStats,
}

/// A bounded, epoch-keyed map from query digests to final hit lists.
///
/// Thread-safe behind one mutex; entries are `Arc`ed so a hit costs a
/// pointer clone, not a hit-list copy.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// A cache holding at most `capacity` answers (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Looks up the answer for `query` at `top_k` under `epoch`,
    /// computed with the scoring scheme fingerprinted by `params`.
    pub fn get(
        &self,
        query: QueryKey,
        top_k: usize,
        epoch: u64,
        params: u64,
    ) -> Option<Arc<Vec<Hit>>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let key = CacheKey {
            query,
            top_k: top_k as u64,
            epoch,
            params,
        };
        match inner.map.get(&key).cloned() {
            Some(v) => {
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores an answer, evicting the oldest entry when full.
    pub fn insert(
        &self,
        query: QueryKey,
        top_k: usize,
        epoch: u64,
        params: u64,
        hits: Arc<Vec<Hit>>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let key = CacheKey {
            query,
            top_k: top_k as u64,
            epoch,
            params,
        };
        if inner.map.insert(key, hits).is_none() {
            inner.order.push_back(key);
            inner.stats.inserts += 1;
            while inner.map.len() > self.capacity {
                // Entries enter `order` exactly once, so the front is
                // resident unless purge_epoch removed it already.
                if let Some(old) = inner.order.pop_front() {
                    if inner.map.remove(&old).is_some() {
                        inner.stats.evicted += 1;
                    }
                }
            }
        } else {
            inner.stats.inserts += 1;
        }
    }

    /// Drops every entry whose epoch is **older than** `live_epoch`,
    /// returning how many were purged. Called on hot-reload so stale
    /// answers are reclaimed eagerly (they would never be served anyway:
    /// lookups carry the current epoch).
    pub fn purge_epoch(&self, live_epoch: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let before = inner.map.len();
        inner.map.retain(|k, _| k.epoch >= live_epoch);
        let purged = (before - inner.map.len()) as u64;
        inner.stats.stale_purged += purged;
        let map = std::mem::take(&mut inner.map);
        inner.order.retain(|k| map.contains_key(k));
        inner.map = map;
        purged
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            resident: inner.map.len() as u64,
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(n: usize) -> Arc<Vec<Hit>> {
        Arc::new(
            (0..n)
                .map(|i| Hit {
                    score: (n - i) as i32,
                    target: i,
                    end: (i, i),
                })
                .collect(),
        )
    }

    #[test]
    fn hit_returns_the_stored_answer() {
        let cache = ResultCache::new(8);
        let k = QueryKey::of(b"ACGTACGT");
        assert!(cache.get(k, 5, 1, 0).is_none());
        cache.insert(k, 5, 1, 0, hits(3));
        assert_eq!(cache.get(k, 5, 1, 0).as_deref(), Some(&*hits(3)));
        // Different top_k, epoch, or scoring params: a different answer
        // space.
        assert!(cache.get(k, 4, 1, 0).is_none());
        assert!(cache.get(k, 5, 2, 0).is_none());
        assert!(cache.get(k, 5, 1, 0xb105).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 4, 1));
    }

    #[test]
    fn scoring_params_partition_the_key_space() {
        // The same query under two substitution schemes holds two
        // independent answers; neither lookup can see the other's entry.
        let cache = ResultCache::new(8);
        let k = QueryKey::of(b"WQHKRWCEW");
        cache.insert(k, 3, 1, 0xaaaa, hits(1));
        cache.insert(k, 3, 1, 0xbbbb, hits(2));
        assert_eq!(cache.get(k, 3, 1, 0xaaaa).as_deref(), Some(&*hits(1)));
        assert_eq!(cache.get(k, 3, 1, 0xbbbb).as_deref(), Some(&*hits(2)));
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        assert_ne!(QueryKey::of(b"ACGT"), QueryKey::of(b"ACGA"));
        assert_ne!(QueryKey::of(b""), QueryKey::of(b"A"));
        assert_eq!(QueryKey::of(b"ACGT"), QueryKey::of(b"ACGT"));
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = ResultCache::new(2);
        let keys: Vec<QueryKey> = (0..3)
            .map(|i| QueryKey::of(format!("Q{i}").as_bytes()))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            cache.insert(*k, 1, 1, 0, hits(i + 1));
        }
        assert!(cache.get(keys[0], 1, 1, 0).is_none(), "oldest evicted");
        assert!(cache.get(keys[1], 1, 1, 0).is_some());
        assert!(cache.get(keys[2], 1, 1, 0).is_some());
        assert_eq!(cache.stats().evicted, 1);
        assert_eq!(cache.stats().resident, 2);
    }

    #[test]
    fn purge_drops_exactly_older_epochs() {
        let cache = ResultCache::new(16);
        let k1 = QueryKey::of(b"one");
        let k2 = QueryKey::of(b"two");
        cache.insert(k1, 3, 1, 0, hits(1));
        cache.insert(k2, 3, 2, 0, hits(2));
        assert_eq!(cache.purge_epoch(2), 1);
        assert!(cache.get(k1, 3, 1, 0).is_none(), "epoch-1 entry purged");
        assert!(cache.get(k2, 3, 2, 0).is_some(), "epoch-2 entry survives");
        assert_eq!(cache.stats().stale_purged, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        let k = QueryKey::of(b"x");
        cache.insert(k, 1, 1, 0, hits(1));
        assert!(cache.get(k, 1, 1, 0).is_none());
    }
}
