//! The batch scheduler: work stealing with a deterministic, bounded merge.
//!
//! [`run_jobs`] executes a fixed list of jobs on a small thread pool and
//! delivers results to a single merge callback **strictly in job-index
//! order**, regardless of which worker ran what when. Three mechanisms
//! combine:
//!
//! * **FIFO work stealing.** Jobs are dealt round-robin into per-worker
//!   deques; a worker pops its own *front*, and an idle worker steals the
//!   globally lowest-indexed front. Every deque therefore stays in
//!   ascending index order, and the oldest outstanding job is always at
//!   some deque's front — reachable by its owner and by every thief.
//! * **Windowed backpressure.** A worker may only *start* job `i` once
//!   `i < merged + window`, where `merged` is the count of results already
//!   handed to the merge callback. At most `window` results can ever be
//!   in flight or buffered, bounding memory no matter how lopsided job
//!   costs are. (A permit-counting design deadlocks here: a permit pinned
//!   under an out-of-order buffered result starves the job the merger
//!   actually waits for. Windowing cannot: the job the merger waits for
//!   has index `merged`, which is *always* inside the window.)
//! * **In-order merge.** Workers send `(index, result)` over a channel;
//!   the caller's thread buffers out-of-order arrivals and fires the
//!   callback at the exact cursor, then publishes the new `merged` count
//!   to wake window-blocked workers.
//!
//! Liveness argument: let `e` be the lowest unmerged index. `e` is inside
//! the window by construction. If `e` is running, its worker finishes and
//! sends. Otherwise `e` is the minimum of the remaining jobs; deques are
//! ascending, so `e` sits at a front. Its owner pops fronts in order, so
//! the owner is either computing (finishes, then reaches `e`) or blocked
//! on the window holding a job `y` popped *before* `e` from its own front
//! — impossible, since `y < e` would make `y` the lower unmerged index.
//! A thief blocked on the window holds the lowest front it could see, and
//! after `e`'s predecessors merge, `e = merged` unblocks whoever holds it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{mpsc, Condvar, Mutex};

/// How work is spread and how far execution may run ahead of the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerConfig {
    /// Worker threads. `0` means one per available CPU.
    pub workers: usize,
    /// Bounded in-flight batches: jobs whose index is at least this far
    /// past the merge cursor are not started. `0` means `2 × workers`.
    pub window: usize,
}

impl SchedulerConfig {
    /// Resolves the `0` placeholders against the host.
    pub fn resolved(&self, jobs: usize) -> (usize, usize) {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        let workers = workers.min(jobs.max(1));
        let window = if self.window == 0 {
            2 * workers
        } else {
            self.window
        };
        (workers, window.max(1))
    }
}

/// The merge cursor workers gate on, advanced only by the merger.
struct MergeFront {
    merged: Mutex<usize>,
    advanced: Condvar,
}

/// Pops the worker's own front, else steals the lowest-indexed front.
fn pop_or_steal<J>(deques: &[Mutex<VecDeque<(usize, J)>>], me: usize) -> Option<(usize, J)> {
    if let Some(job) = deques[me]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop_front()
    {
        return Some(job);
    }
    loop {
        // Scan for the victim whose front carries the lowest index: that
        // is the job the merge is (or will soonest be) waiting on.
        let mut best: Option<(usize, usize)> = None;
        for (v, d) in deques.iter().enumerate() {
            if v == me {
                continue;
            }
            if let Some(&(idx, _)) = d
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .front()
            {
                if best.is_none_or(|(_, b)| idx < b) {
                    best = Some((v, idx));
                }
            }
        }
        let (victim, want) = best?;
        let mut d = deques[victim]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // The front may have been taken between scan and steal; re-check
        // and re-scan on a mismatch rather than stealing blind.
        match d.front() {
            Some(&(idx, _)) if idx == want => return d.pop_front(),
            _ => continue,
        }
    }
}

/// Runs `jobs` across worker threads, delivering `merge(index, result)`
/// strictly in ascending index order on the calling thread.
///
/// `exec` must be pure with respect to ordering: the *values* it returns
/// may not depend on scheduling (it receives only its own job), which is
/// what makes the merged output deterministic for any worker count.
pub fn run_jobs<J, R, E, M>(jobs: Vec<J>, config: &SchedulerConfig, exec: E, mut merge: M)
where
    J: Send,
    R: Send,
    E: Fn(usize, J) -> R + Sync,
    M: FnMut(usize, R),
{
    let total = jobs.len();
    if total == 0 {
        return;
    }
    let (workers, window) = config.resolved(total);
    if workers == 1 {
        // Inline fast path: no threads, trivially ordered.
        for (idx, job) in jobs.into_iter().enumerate() {
            let r = exec(idx, job);
            merge(idx, r);
        }
        return;
    }
    let mut deques: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, job) in jobs.into_iter().enumerate() {
        deques[idx % workers]
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back((idx, job));
    }
    let front = MergeFront {
        merged: Mutex::new(0),
        advanced: Condvar::new(),
    };
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let front = &front;
            let exec = &exec;
            scope.spawn(move || {
                while let Some((idx, job)) = pop_or_steal(deques, me) {
                    {
                        let mut merged = front
                            .merged
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        while idx >= *merged + window {
                            merged = front
                                .advanced
                                .wait(merged)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    }
                    let result = exec(idx, job);
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut cursor = 0usize;
        while cursor < total {
            let (idx, result) = match rx.recv() {
                Ok(pair) => pair,
                // Workers only drop their senders after draining the
                // deques, so a closed channel with jobs outstanding means
                // a worker panicked mid-job.
                Err(_) => panic!("a worker exited before its jobs completed"),
            };
            pending.insert(idx, result);
            let mut moved = false;
            while let Some(result) = pending.remove(&cursor) {
                merge(cursor, result);
                cursor += 1;
                moved = true;
            }
            if moved {
                *front
                    .merged
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = cursor;
                front.advanced.notify_all();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(workers: usize, window: usize) -> SchedulerConfig {
        SchedulerConfig { workers, window }
    }

    #[test]
    fn merges_in_order_for_every_worker_count() {
        for workers in [1, 2, 3, 8, 16] {
            for window in [1, 2, 7, 0] {
                let jobs: Vec<usize> = (0..100).collect();
                let mut seen = Vec::new();
                run_jobs(
                    jobs,
                    &cfg(workers, window),
                    |idx, j| {
                        assert_eq!(idx, j);
                        j * 3
                    },
                    |idx, r| {
                        assert_eq!(r, idx * 3);
                        seen.push(idx);
                    },
                );
                assert_eq!(
                    seen,
                    (0..100).collect::<Vec<_>>(),
                    "w={workers} win={window}"
                );
            }
        }
    }

    #[test]
    fn window_bounds_in_flight_jobs() {
        // With window w, no job may start before job (its index - w) has
        // merged; track the high-water mark of started-but-unmerged work.
        let window = 3;
        let started = AtomicUsize::new(0);
        let merged = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_jobs(
            (0..200).collect(),
            &cfg(4, window),
            |_, j: usize| {
                let inflight =
                    started.fetch_add(1, Ordering::SeqCst) + 1 - merged.load(Ordering::SeqCst);
                peak.fetch_max(inflight, Ordering::SeqCst);
                std::thread::yield_now();
                j
            },
            |_, _| {
                merged.fetch_add(1, Ordering::SeqCst);
            },
        );
        // `merged` may lag the real cursor (relaxed ordering of reads), so
        // allow a small slack over the strict bound of `window`.
        assert!(
            peak.load(Ordering::SeqCst) <= window + 4,
            "peak {} >> window {}",
            peak.load(Ordering::SeqCst),
            window
        );
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        // Early jobs are the slow ones: stealing must keep everyone busy
        // while the window keeps the merge from racing ahead.
        let mut out = Vec::new();
        run_jobs(
            (0..40).collect(),
            &cfg(8, 2),
            |_, j: usize| {
                if j.is_multiple_of(7) {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                j
            },
            |idx, r| {
                assert_eq!(idx, r);
                out.push(r);
            },
        );
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        run_jobs(
            Vec::<u8>::new(),
            &cfg(4, 1),
            |_, _| 0,
            |_, _: i32| panic!("no merge expected"),
        );
    }

    #[test]
    fn single_job_many_workers() {
        let mut hits = 0;
        run_jobs(
            vec![41],
            &cfg(8, 0),
            |_, j| j + 1,
            |_, r| {
                assert_eq!(r, 42);
                hits += 1;
            },
        );
        assert_eq!(hits, 1);
    }
}
